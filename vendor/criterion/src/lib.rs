//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of `criterion` its bench targets use:
//! [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: a short warm-up, then
//! `sample_size` timed batches whose per-iteration mean/min are
//! printed. No statistical analysis, HTML reports, or baselines —
//! enough to compare hot paths between commits by eye.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter label.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

/// Anything acceptable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display name of this benchmark.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times closures handed to it by benchmark functions.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-sample wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for samples of >= ~1 ms, capped
        // so cheap closures don't spin forever.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<60} mean {:>12}  min {:>12}  ({} samples x {} iters)",
            fmt_secs(mean),
            fmt_secs(min),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&name);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (upstream flushes reports here; a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut count = 0_u64;
        g.bench_function("counter", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0, "closure executed");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").into_id(), "f/p");
    }
}
