//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of `proptest` its test suites use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range / tuple /
//! [`collection::vec`] / [`any`] strategies, the `prop_assert*` family
//! and [`prop_assume!`].
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its deterministic case
//!   index and input seed; re-running reproduces it exactly.
//! - **Deterministic by default.** Case `i` of test `t` draws from an
//!   RNG seeded by `hash(module_path::t, i)`, so failures are stable
//!   across runs and machines without a persistence file.
//! - `PROPTEST_CASES` overrides the per-test case count, like upstream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Resolves the effective case count, honouring `PROPTEST_CASES`.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// FNV-1a over a label, used to give every test its own seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic RNG for case `case` of the test named `label`.
pub fn case_rng(label: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(fnv1a(label.as_bytes()) ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A generator of random test inputs.
///
/// Unlike upstream there is no value tree: `generate` draws a value
/// directly and failures are replayed by case index instead of shrunk.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    /// Finite values only (upstream's `any::<f64>()` includes NaN and
    /// infinities behind flags; the workspace only uses finite draws).
    fn arbitrary(rng: &mut StdRng) -> Self {
        (rng.gen::<f64>() - 0.5) * 2e9
    }
}

/// A compiled regex-subset pattern used by the `&str` strategy.
///
/// Supports the constructs the workspace's tests rely on: literals,
/// `.`, character classes `[a-z_]` (ranges and singletons), and the
/// postfix repetitions `*`, `+`, `?` and `{m,n}`. Unbounded
/// repetitions draw lengths from `0..=32` (`*`) or `1..=32` (`+`).
#[derive(Clone, Debug)]
struct Pattern {
    atoms: Vec<(CharSet, u32, u32)>,
}

#[derive(Clone, Debug)]
enum CharSet {
    /// `.`: any printable char plus a few awkward ones (tab, unicode).
    Dot,
    /// A literal character.
    Lit(char),
    /// Inclusive ranges from a `[...]` class.
    Ranges(Vec<(char, char)>),
}

impl CharSet {
    fn draw(&self, rng: &mut StdRng) -> char {
        match self {
            CharSet::Lit(c) => *c,
            CharSet::Dot => {
                // Mostly printable ASCII, with occasional tabs and
                // non-ASCII to stress lexers.
                match rng.gen_range(0..20_u32) {
                    0 => '\t',
                    1 => 'λ',
                    2 => '→',
                    _ => char::from(rng.gen_range(0x20_u8..0x7F)),
                }
            }
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                let mut k = rng.gen_range(0..total);
                for &(a, b) in ranges {
                    let n = b as u32 - a as u32 + 1;
                    if k < n {
                        return char::from_u32(a as u32 + k).expect("range stays in scalar values");
                    }
                    k -= n;
                }
                unreachable!("k < total")
            }
        }
    }
}

impl Pattern {
    fn parse(pat: &str) -> Pattern {
        let mut chars = pat.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '.' => CharSet::Dot,
                '[' => {
                    let mut ranges = Vec::new();
                    let mut members = Vec::new();
                    while let Some(&c2) = chars.peek() {
                        if c2 == ']' {
                            chars.next();
                            break;
                        }
                        chars.next();
                        let lo = if c2 == '\\' {
                            chars.next().expect("escape inside class")
                        } else {
                            c2
                        };
                        if chars.peek() == Some(&'-')
                            && chars.clone().nth(1).is_some_and(|c3| c3 != ']')
                        {
                            chars.next();
                            let hi = chars.next().expect("range upper bound");
                            ranges.push((lo, hi));
                        } else {
                            members.push(lo);
                        }
                    }
                    ranges.extend(members.into_iter().map(|m| (m, m)));
                    CharSet::Ranges(ranges)
                }
                '\\' => CharSet::Lit(chars.next().expect("trailing escape")),
                other => CharSet::Lit(other),
            };
            let (lo, hi) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, 32)
                }
                Some('+') => {
                    chars.next();
                    (1, 32)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&c2| c2 != '}').collect();
                    let (m, n) = match spec.split_once(',') {
                        Some((m, n)) => (
                            m.parse().expect("repetition lower bound"),
                            n.parse().expect("repetition upper bound"),
                        ),
                        None => {
                            let k = spec.parse().expect("repetition count");
                            (k, k)
                        }
                    };
                    (m, n)
                }
                _ => (1, 1),
            };
            atoms.push((set, lo, hi));
        }
        Pattern { atoms }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for (set, lo, hi) in &Pattern::parse(self).atoms {
            let count = if lo == hi {
                *lo
            } else {
                rng.gen_range(*lo..=*hi)
            };
            for _ in 0..count {
                out.push(set.draw(rng));
            }
        }
        out
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for vectors with element strategy `S` and a length
    /// drawn from `size` (exclusive upper bound, like upstream).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {:?} != {:?}", a, b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                a, b, format!($($fmt)*)
            );
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!("prop_assert_ne failed: both sides are {:?}", a);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!(
                "prop_assert_ne failed: both sides are {:?}: {}",
                a, format!($($fmt)*)
            );
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Upstream rejects-and-retries; this shim simply skips the case, which
/// keeps the runner trivial at a small cost in effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn` runs `cases` times with inputs
/// drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($argpat:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = $crate::resolve_cases(config.cases);
                let label = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut rng = $crate::case_rng(label, case);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(let $argpat = $crate::Strategy::generate(&($strat), &mut rng);)*
                            $body
                        }),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (deterministic; rerun reproduces)",
                            label,
                            case + 1,
                            cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = collection::vec(0_u32..10, 2..5);
        let mut rng = crate::case_rng("vec_bounds", 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn map_applies() {
        let s = (0_u32..5).prop_map(|x| x * 2);
        let mut rng = crate::case_rng("map", 0);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (0.0_f64..1.0, any::<u64>());
        let a = s.generate(&mut crate::case_rng("det", 3));
        let b = s.generate(&mut crate::case_rng("det", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, assume and asserts.
        #[test]
        fn macro_smoke(mut xs in collection::vec(0_u64..100, 1..10), flip in any::<bool>()) {
            prop_assume!(!xs.is_empty());
            xs.sort_unstable();
            if flip {
                xs.reverse();
            }
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(xs.len(), xs.capacity().min(xs.len()));
            prop_assert_ne!(xs.len(), 0, "assume filtered empties");
        }
    }
}
