//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12),
//! but the workspace only relies on determinism and statistical
//! quality, never on the exact upstream byte stream.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words. Object-safe.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`]
/// (the shim's stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches the
    /// upstream `Standard` distribution's construction).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniform ranges can be sampled over.
pub trait UniformInt: Copy + PartialOrd {
    /// Offset of `self` from `base` as an unsigned 64-bit span.
    fn span_from(self, base: Self) -> u64;
    /// `base` advanced by `offset` (which is `< span`).
    fn offset_by(base: Self, offset: u64) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn span_from(self, base: Self) -> u64 {
                (self as u64).wrapping_sub(base as u64)
            }
            fn offset_by(base: Self, offset: u64) -> Self {
                (base as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn span_from(self, base: Self) -> u64 {
                (self as i64 as u64).wrapping_sub(base as i64 as u64)
            }
            fn offset_by(base: Self, offset: u64) -> Self {
                (base as i64 as u64).wrapping_add(offset) as i64 as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);
impl_uniform_int!(i8, i16, i32, i64, isize);

/// Draws uniformly from `[0, span)` by rejection sampling (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject the final partial block so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty integer range");
        let span = self.end.span_from(self.start);
        T::offset_by(self.start, uniform_u64(rng, span))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty inclusive range");
        let span = end.span_from(start);
        if span == u64::MAX {
            return T::offset_by(start, rng.next_u64());
        }
        T::offset_by(start, uniform_u64(rng, span + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty inclusive float range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used to expand a 64-bit seed into a full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Fast, passes BigCrush, and fully deterministic from a 64-bit
    /// seed. Not reproducible against upstream `rand`'s `StdRng` — the
    /// workspace never depends on that stream.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_exclusive_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = r.gen_range(0..5_usize);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        let mut hit_hi = false;
        for _ in 0..2_000 {
            let v = r.gen_range(1..=6);
            assert!((1..=6).contains(&v));
            hit_hi |= v == 6;
        }
        assert!(hit_hi, "inclusive upper bound reachable");
    }

    #[test]
    fn gen_range_negative_ints() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = r.gen_range(-5_i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_works_through_dyn_rngcore() {
        let mut r = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(13);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / f64::from(n);
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
