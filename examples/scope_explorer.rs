//! Explore the mini-SCOPE compiler: parse a script, print the
//! execution-plan graph the way §2.1 describes it, and emit the Fig. 3
//! style Graphviz rendering.
//!
//! Run with: `cargo run --example scope_explorer`

use jockey::jobgraph::dot::to_dot;
use jockey::scope::compile_script;

fn main() {
    let script = r#"
        // A two-source analytics pipeline with a self-join.
        impressions = EXTRACT FROM "impressions.log" PARTITIONS 96 COST 1.5;
        clicks      = EXTRACT FROM "clicks.log" PARTITIONS 48 COST 1.0;
        valid       = SELECT FROM impressions WHERE "user_agent NOT LIKE bot" COST 0.4;
        sessions    = REDUCE valid ON "session_id" PARTITIONS 24 COST 2.5;
        attributed  = JOIN sessions, clicks ON "session_id" PARTITIONS 32 COST 3.0;
        byadvert    = AGGREGATE attributed ON "advertiser" PARTITIONS 6 COST 1.0;
        everything  = UNION byadvert, sessions PARTITIONS 24;
        OUTPUT everything TO "spend_report.tsv" SINGLE;
    "#;

    let compiled = compile_script(script).expect("script compiles");
    let g = &compiled.graph;

    println!("execution plan for `{}`:", g.name());
    println!(
        "  {} stages, {} barrier stages, {} tasks total\n",
        g.num_stages(),
        g.num_barrier_stages(),
        g.total_tasks()
    );
    println!(
        "  {:<4}{:<26}{:>7}{:>9}  inputs",
        "id", "stage", "tasks", "cost"
    );
    for s in g.stage_ids() {
        let parents: Vec<String> = g
            .parents(s)
            .iter()
            .map(|&(p, kind)| format!("{p}({kind:?})"))
            .collect();
        println!(
            "  {:<4}{:<26}{:>7}{:>9.1}  {}",
            s.index(),
            g.stage(s).name,
            g.tasks_in(s),
            compiled.stage_costs[s.index()],
            if parents.is_empty() {
                "-".to_string()
            } else {
                parents.join(", ")
            }
        );
    }

    let costs = &compiled.stage_costs;
    println!(
        "\n  critical path (cost-weighted): {:.1} units",
        g.critical_path(costs)
    );
    println!("\nGraphviz rendering (Fig. 3 style):\n");
    println!("{}", to_dot(g));
}
