//! Mid-run deadline changes (§5.2, Fig. 7).
//!
//! A future multi-job scheduler trades resources between SLO jobs by
//! tightening or relaxing their deadlines; this example shows Jockey
//! absorbing both directions. The same job runs three times: deadline
//! kept, halved at the one-quarter mark, and tripled at the
//! one-quarter mark — printing the allocation trace around the change.
//!
//! Run with: `cargo run --release --example deadline_change`

use jockey::cluster::{ClusterConfig, ClusterSim, JobSpec};
use jockey::core::control::ControlParams;
use jockey::core::cpa::TrainConfig;
use jockey::core::policy::{JockeySetup, Policy};
use jockey::core::progress::ProgressIndicator;
use jockey::simrt::time::{SimDuration, SimTime};
use jockey::workloads::jobs::paper_job;
use jockey::workloads::recurring::training_profile;

fn main() {
    // Job D from the paper's Table 2 (24 stages, ~3.9k tasks).
    let job = paper_job(3, 11);
    let profile = training_profile(&job.spec, 60, 11);
    let setup = JockeySetup::train(
        job.graph.clone(),
        profile,
        ProgressIndicator::TotalWorkWithQ,
        &TrainConfig::default(),
        11,
    );
    let deadline = SimDuration::from_secs_f64(setup.cpa.fresh_latency(100) * 2.5);
    println!(
        "job {}: base deadline {:.0} min",
        job.graph.name(),
        deadline.as_minutes_f64()
    );

    for (label, multiplier) in [
        ("unchanged", None),
        ("halved", Some(0.5)),
        ("tripled", Some(3.0)),
    ] {
        let controller = setup.controller(Policy::Jockey, deadline, ControlParams::default());
        let mut cluster = ClusterConfig::production();
        cluster.background.mean_util = 0.9;
        let mut sim = ClusterSim::new(cluster, 5);
        let idx = sim.add_job(
            JobSpec::from_profile(job.graph.clone(), &setup.profile),
            controller,
        );

        let change_at = SimTime::ZERO + deadline.scale(0.25);
        let effective = match multiplier {
            Some(m) => {
                let new_deadline = deadline.scale(m);
                sim.schedule_deadline_change(idx, change_at, new_deadline);
                new_deadline
            }
            None => deadline,
        };

        let result = sim.run_single();
        let latency = result.duration().expect("job finished");
        println!(
            "\n=== deadline {label}: effective {:.0} min -> finished in {:.1} min ({}) ===",
            effective.as_minutes_f64(),
            latency.as_minutes_f64(),
            if latency <= effective {
                "met"
            } else {
                "MISSED"
            },
        );
        // Show the allocation trace around the change point.
        println!("  minute  guarantee");
        for &(t, v) in result.trace.guarantee.points() {
            let m = t.as_minutes_f64();
            if (m - change_at.as_minutes_f64()).abs() <= 6.0 || t == SimTime::ZERO {
                println!("  {m:>6.1}  {v:>9.0}");
            }
        }
    }
}
