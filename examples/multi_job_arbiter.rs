//! The §4.4 future-work prototype: an inter-job arbiter that splits a
//! token budget across concurrent SLO jobs by expected marginal
//! utility.
//!
//! Two jobs share an 80-token budget. One is far behind (tight
//! deadline), the other comfortably ahead; the arbiter shifts tokens
//! from low to high marginal utility, re-evaluated as progress evolves.
//!
//! Run with: `cargo run --release --example multi_job_arbiter`

use std::sync::Arc;

use jockey::core::arbiter::{arbitrate, ArbiterJob};
use jockey::core::cpa::TrainConfig;
use jockey::core::policy::JockeySetup;
use jockey::core::progress::ProgressIndicator;
use jockey::core::utility::UtilityFunction;
use jockey::simrt::time::SimDuration;
use jockey::workloads::jobs::paper_job;
use jockey::workloads::recurring::training_profile;

fn main() {
    // Two of the paper's jobs: C (short tasks, wide) and E (outliers).
    let specs = [paper_job(2, 5), paper_job(4, 5)];
    let setups: Vec<JockeySetup> = specs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            let profile = training_profile(&j.spec, 60, i as u64 ^ 0xab);
            JockeySetup::train(
                j.graph.clone(),
                profile,
                ProgressIndicator::TotalWorkWithQ,
                &TrainConfig::default(),
                i as u64 ^ 0xab,
            )
        })
        .collect();

    // Job C gets a tight deadline (1.6x its 100-token latency), job E a
    // loose one (4x).
    let deadlines = [
        SimDuration::from_secs_f64(setups[0].cpa.fresh_latency(100) * 1.6),
        SimDuration::from_secs_f64(setups[1].cpa.fresh_latency(100) * 4.0),
    ];
    for (s, d) in setups.iter().zip(&deadlines) {
        println!(
            "{}: deadline {:.0} min (latency at 100 tokens ~{:.0} min)",
            s.graph.name(),
            d.as_minutes_f64(),
            s.cpa.fresh_latency(100) / 60.0
        );
    }

    // Arbitrate an 80-token budget at several points in (virtual)
    // time, with job C stalled at low progress and job E coasting.
    println!("\nbudget: 80 tokens");
    println!(
        "{:<28}{:>12}{:>12}",
        "situation",
        setups[0].graph.name(),
        setups[1].graph.name()
    );
    for (label, p0, p1, elapsed_frac) in [
        ("start of both jobs", 0.0, 0.0, 0.0),
        ("C behind, E ahead", 0.2, 0.7, 0.5),
        ("C very behind, E ahead", 0.3, 0.9, 0.75),
        ("both nearly done", 0.95, 0.95, 0.9),
    ] {
        let jobs: Vec<ArbiterJob> = setups
            .iter()
            .zip(&deadlines)
            .zip([p0, p1])
            .map(|((setup, &deadline), progress)| ArbiterJob {
                model: setup.cpa.clone() as Arc<dyn jockey::core::predict::CompletionModel>,
                utility: UtilityFunction::deadline(deadline),
                progress,
                stage_fraction: vec![progress; setup.graph.num_stages()],
                elapsed_secs: deadline.as_secs_f64() * elapsed_frac,
                slack: 1.2,
            })
            .collect();
        let alloc = arbitrate(&jobs, 80);
        println!("{label:<28}{:>12}{:>12}", alloc[0], alloc[1]);
    }
    println!(
        "\nTokens follow marginal utility: the behind-schedule job with the\n\
         tight deadline receives the bulk of the budget until it recovers,\n\
         after which both release capacity back to the cluster."
    );

    // ---- Live version: both jobs run concurrently in one cluster,
    // coordinated through a SharedArbiter.
    use jockey::cluster::{ClusterConfig, ClusterSim, JobSpec};
    use jockey::core::arbiter::SharedArbiter;
    use jockey::core::predict::CompletionModel;

    println!("\nlive run: both jobs concurrently under an 80-token shared budget");
    let arbiter = SharedArbiter::new(80);
    let mut cluster = ClusterConfig::production();
    cluster.total_tokens = 300;
    cluster.background.mean_util = 0.7;
    let mut sim = ClusterSim::new(cluster, 21);
    let mut indices = Vec::new();
    for (setup, &deadline) in setups.iter().zip(&deadlines) {
        let controller = arbiter.register(
            setup.cpa.clone() as Arc<dyn CompletionModel>,
            setup.indicator_context(),
            UtilityFunction::deadline(deadline),
            1.2,
        );
        indices.push(sim.add_job(
            JobSpec::from_profile(setup.graph.clone(), &setup.profile),
            Box::new(controller),
        ));
    }
    let results = sim.run();
    for ((setup, &deadline), &i) in setups.iter().zip(&deadlines).zip(&indices) {
        let r = &results[i];
        let latency = r.duration().expect("finished");
        println!(
            "  {}: {:.1} / {:.0} min ({}), median {:.0} tokens",
            setup.graph.name(),
            latency.as_minutes_f64(),
            deadline.as_minutes_f64(),
            if latency <= deadline { "met" } else { "MISSED" },
            r.trace.median_guarantee(),
        );
    }
}
