//! SLO admission control (§1): check that newly submitted SLO jobs
//! "fit" — that every admitted job can still meet its deadline — before
//! letting them run, then actually run the admitted set concurrently
//! and verify every deadline is met.
//!
//! Run with: `cargo run --release --example admission_control`

use jockey::cluster::{ClusterConfig, ClusterSim, JobSpec};
use jockey::core::admission::{AdmissionController, AdmissionError};
use jockey::core::control::ControlParams;
use jockey::core::cpa::TrainConfig;
use jockey::core::policy::{JockeySetup, Policy};
use jockey::core::progress::ProgressIndicator;
use jockey::simrt::time::SimDuration;
use jockey::workloads::jobs::synthetic_recurring_jobs;
use jockey::workloads::recurring::training_profile;

fn main() {
    // Train five recurring jobs offline.
    let jobs = synthetic_recurring_jobs(5, 3);
    let setups: Vec<JockeySetup> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            let profile = training_profile(&j.spec, 60, i as u64);
            JockeySetup::train(
                j.graph.clone(),
                profile,
                ProgressIndicator::TotalWorkWithQ,
                &TrainConfig::default(),
                i as u64,
            )
        })
        .collect();

    // SLO capacity: 120 guaranteed tokens for deadline-bound jobs.
    let mut ac = AdmissionController::new(120);
    let slack = 1.2;
    let mut admitted = Vec::new();

    println!("submitting 5 SLO jobs against a 120-token guarantee pool:\n");
    for (i, setup) in setups.iter().enumerate() {
        let deadline = SimDuration::from_secs_f64(setup.cpa.fresh_latency(100) * 2.0);
        let name = setup.graph.name().to_string();
        let fresh = vec![0.0; setup.graph.num_stages()];
        match ac.try_admit(&name, setup.cpa.as_ref(), &fresh, deadline, slack) {
            Ok(tokens) => {
                println!(
                    "  ADMIT  {name}: deadline {:.0} min, reserved {tokens} tokens ({} / {} used)",
                    deadline.as_minutes_f64(),
                    ac.reserved(),
                    ac.capacity()
                );
                admitted.push((i, deadline));
            }
            Err(AdmissionError::InsufficientCapacity {
                required,
                available,
            }) => {
                println!(
                    "  REJECT {name}: needs {required} guaranteed tokens, only {available} free"
                );
            }
            Err(e) => println!("  REJECT {name}: {e}"),
        }
    }

    // Run the admitted jobs concurrently in one shared cluster and
    // check every SLO holds.
    println!("\nrunning the admitted set concurrently...");
    let mut cluster = ClusterConfig::production();
    cluster.total_tokens = 400;
    cluster.background.mean_util = 0.6; // Background beyond the SLO pool.
    let mut sim = ClusterSim::new(cluster, 77);
    for &(i, deadline) in &admitted {
        let setup = &setups[i];
        let spec = JobSpec::from_profile(setup.graph.clone(), &setup.profile);
        let controller = setup.controller(Policy::Jockey, deadline, ControlParams::default());
        sim.add_job(spec, controller);
    }
    let results = sim.run();

    let mut all_met = true;
    for (k, &(i, deadline)) in admitted.iter().enumerate() {
        let r = &results[k];
        let latency = r.duration().expect("admitted job finished");
        let met = latency <= deadline;
        all_met &= met;
        println!(
            "  {}: {:.1} / {:.0} min -> {}",
            setups[i].graph.name(),
            latency.as_minutes_f64(),
            deadline.as_minutes_f64(),
            if met { "met" } else { "MISSED" }
        );
    }
    println!(
        "\n{}",
        if all_met {
            "all admitted SLOs met — the reservation check was sound"
        } else {
            "an admitted SLO was missed — reservations were too optimistic"
        }
    );
}
