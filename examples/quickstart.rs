//! Quickstart: guarantee a deadline for a recurring SCOPE job.
//!
//! The end-to-end Jockey workflow on a small clickstream job:
//!
//! 1. write the job in the mini-SCOPE language and compile it to an
//!    execution-plan graph;
//! 2. run it once on a dedicated cluster slice to collect a training
//!    profile (recurring jobs make this data freely available);
//! 3. train the `C(p, a)` completion-time model offline;
//! 4. run the job in a busy shared cluster under Jockey's control loop
//!    and watch it hit the deadline with far less than the full token
//!    budget.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use jockey::cluster::{ClusterConfig, ClusterSim, JobSpec};
use jockey::core::control::ControlParams;
use jockey::core::cpa::TrainConfig;
use jockey::core::oracle::oracle_allocation;
use jockey::core::policy::{JockeySetup, Policy};
use jockey::core::progress::ProgressIndicator;
use jockey::scope::compile_script;
use jockey::simrt::dist::{Dist, LogNormal};
use jockey::simrt::time::SimDuration;
use jockey::workloads::recurring::training_profile;

fn main() {
    // 1. A SCOPE-like script: extract, filter, aggregate, join, output.
    let script = r#"
        clicks  = EXTRACT FROM "clicks.log" PARTITIONS 120 COST 2.0;
        good    = SELECT FROM clicks WHERE "NOT spam" COST 0.5;
        byuser  = REDUCE good ON "user_id" PARTITIONS 24 COST 3.0;
        joined  = JOIN good, byuser ON "user_id" PARTITIONS 40 COST 2.0;
        top     = AGGREGATE joined ON "url" PARTITIONS 8 COST 1.5;
        OUTPUT top TO "top_urls.tsv" SINGLE;
    "#;
    let compiled = compile_script(script).expect("script compiles");
    let graph = Arc::new(compiled.graph);
    println!(
        "compiled `{}`: {} stages ({} barriers), {} tasks",
        graph.name(),
        graph.num_stages(),
        graph.num_barrier_stages(),
        graph.total_tasks()
    );

    // Task runtimes follow the compiler's per-stage cost hints.
    let runtimes: Vec<Dist> = compiled
        .stage_costs
        .iter()
        .map(|&c| LogNormal::from_median_p90(4.0 * c, 12.0 * c).into())
        .collect();
    let queues: Vec<Dist> = (0..graph.num_stages())
        .map(|_| LogNormal::from_median_p90(3.0, 8.0).into())
        .collect();
    let spec = JobSpec::new(graph.clone(), runtimes, queues, 0.01, 42.0);

    // 2. One profiling run on a dedicated slice.
    let profile = training_profile(&spec, 40, 7);
    println!(
        "training run: {:.1} min latency, {:.1} CPU-hours of work",
        profile.duration / 60.0,
        profile.total_work() / 3600.0
    );

    // 3. Train the C(p, a) model offline.
    let setup = JockeySetup::train(
        graph.clone(),
        profile,
        ProgressIndicator::TotalWorkWithQ,
        &TrainConfig::default(),
        7,
    );
    let deadline = SimDuration::from_secs_f64(setup.cpa.fresh_latency(100) * 2.5);
    println!(
        "deadline: {:.1} min (predicted latency at 100 tokens: {:.1} min)",
        deadline.as_minutes_f64(),
        setup.cpa.fresh_latency(100) / 60.0
    );

    // 4. Run under Jockey in a busy shared cluster.
    let controller = setup.controller(Policy::Jockey, deadline, ControlParams::default());
    let mut cluster = ClusterConfig::production();
    cluster.background.mean_util = 0.95;
    let mut sim = ClusterSim::new(cluster, 99);
    sim.add_job(spec, controller);
    let result = sim.run_single();

    let latency = result.duration().expect("job finished");
    let oracle = oracle_allocation(result.work_done_secs, deadline);
    println!(
        "shared-cluster run: {:.1} min ({}; {:.0}% of deadline)",
        latency.as_minutes_f64(),
        if latency <= deadline {
            "SLO MET"
        } else {
            "SLO MISSED"
        },
        100.0 * latency.as_secs_f64() / deadline.as_secs_f64()
    );
    println!(
        "allocation: median {:.0} tokens, max {:.0}, oracle bound {} -> {:.0}% above oracle",
        result.trace.median_guarantee(),
        result.trace.max_guarantee(),
        oracle,
        100.0
            * result
                .trace
                .fraction_above_oracle(result.completed_at.unwrap(), oracle)
    );
    println!(
        "{} tasks on guaranteed tokens, {} on spare",
        result.guaranteed_task_count, result.spare_task_count
    );
}
