//! The oracle allocation baseline (§5.1).
//!
//! For a deadline of `d` and a job requiring aggregate CPU time `T`,
//! the oracle allocation is `O(T, d) = ceil(T / d)` tokens: the
//! theoretical minimum constant allocation that could finish the job on
//! time, assuming perfect knowledge of `T` and a job that can always
//! use exactly that parallelism. Jockey's cluster impact is measured as
//! the fraction of its allocation above this bound.

use jockey_simrt::time::SimDuration;

/// `O(T, d) = ceil(T / d)`, in tokens, never less than 1.
///
/// # Panics
///
/// Panics if `deadline` is zero or `total_work_secs` is negative.
pub fn oracle_allocation(total_work_secs: f64, deadline: SimDuration) -> u32 {
    assert!(!deadline.is_zero(), "deadline must be positive");
    assert!(total_work_secs >= 0.0, "work must be non-negative");
    ((total_work_secs / deadline.as_secs_f64()).ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_formula() {
        // 100 minutes of work, 50-minute deadline: 2 tokens.
        assert_eq!(oracle_allocation(6_000.0, SimDuration::from_mins(50)), 2);
        // Non-integral ratios round up.
        assert_eq!(oracle_allocation(6_100.0, SimDuration::from_mins(50)), 3);
    }

    #[test]
    fn tiny_jobs_still_need_one_token() {
        assert_eq!(oracle_allocation(1.0, SimDuration::from_mins(60)), 1);
        assert_eq!(oracle_allocation(0.0, SimDuration::from_mins(60)), 1);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn zero_deadline_panics() {
        oracle_allocation(10.0, SimDuration::ZERO);
    }
}
