//! Completion-time prediction: the [`CompletionModel`] trait and the
//! modified Amdahl's-Law model (§4.1).
//!
//! §4.1 derives the Amdahl model as follows: let `S` be the critical
//! path length and `P` the aggregate CPU time off the critical path;
//! with `N` processors the job takes `S + P/N`. At runtime, across
//! stages with unfinished tasks,
//!
//! ```text
//! S_t = max_{s: f_s<1} (1 − f_s)·l_s + L_s
//! P_t = Σ_{s: f_s<1} (1 − f_s)·T_s
//! remaining(a) = S_t + P_t / a
//! ```
//!
//! where `l_s` is the longest task runtime in stage `s`, `L_s` the
//! longest path from `s` to the end of the job, and `T_s` the stage's
//! total CPU time — all estimable from a prior run.

use jockey_jobgraph::graph::JobGraph;
use jockey_jobgraph::profile::JobProfile;
use jockey_simrt::time::SimDuration;

/// Predicts the remaining completion time of a job.
///
/// Implementations receive both the raw per-stage completion fractions
/// `fs` and the scalar `progress` (from a [`crate::progress::IndicatorContext`]):
/// the Amdahl model uses `fs`, the `C(p, a)` model uses `progress`.
pub trait CompletionModel: Send + Sync {
    /// Estimated remaining seconds until completion given per-stage
    /// fractions `fs`, scalar progress `progress`, and token
    /// allocation `allocation`.
    fn remaining_secs(&self, fs: &[f64], progress: f64, allocation: u32) -> f64;

    /// The largest allocation worth considering (the search upper
    /// bound for the control loop).
    fn max_allocation(&self) -> u32;

    /// The smallest allocation whose slack-inflated fresh prediction
    /// (progress 0, per-stage fractions `fs`) meets `deadline`, if any
    /// does — the a-priori sizing used by admission control.
    ///
    /// The default cannot assume the prediction is monotone in the
    /// allocation, so it uses [`min_feasible_allocation`]'s exhaustive
    /// scan; models that *know* their fresh-latency curve is monotone
    /// (e.g. [`crate::cpa::CpaModel`]'s checked grid column) call the
    /// same helper with the binary-search fast path enabled.
    fn size_for_deadline(&self, fs: &[f64], deadline: SimDuration, slack: f64) -> Option<u32> {
        let d = deadline.as_secs_f64();
        min_feasible_allocation(self.max_allocation(), false, |a| {
            self.remaining_secs(fs, 0.0, a) * slack <= d
        })
    }
}

/// The smallest allocation in `1..=max` satisfying `fits`, or `None`.
///
/// This is the single deadline-sizing search shared by every model:
/// with `monotone` the predicate is trusted to be non-decreasing in the
/// allocation (`false…false true…true`) and the answer is found by
/// binary search after one feasibility probe at `max`; without it, an
/// exhaustive ascending scan runs. Both paths return identical answers
/// whenever the predicate really is monotone — the equivalence test
/// below sweeps randomized grids to hold them to that.
pub fn min_feasible_allocation(
    max: u32,
    monotone: bool,
    fits: impl Fn(u32) -> bool,
) -> Option<u32> {
    if max == 0 {
        return None;
    }
    if !monotone {
        return (1..=max).find(|&a| fits(a));
    }
    if !fits(max) {
        return None;
    }
    // Invariant: fits(hi); find the first fitting allocation.
    let (mut lo, mut hi) = (1_u32, max);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi)
}

/// The modified Amdahl's-Law model, used by "Jockey w/o simulator".
#[derive(Clone, Debug)]
pub struct AmdahlModel {
    /// `l_s` per stage.
    max_runtime: Vec<f64>,
    /// `L_s` per stage.
    longest_path: Vec<f64>,
    /// `T_s` per stage.
    total_exec: Vec<f64>,
    /// Search upper bound for allocations.
    max_allocation: u32,
}

impl AmdahlModel {
    /// Builds the model from a training profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile and graph disagree on stage count, or
    /// `max_allocation` is zero.
    pub fn new(graph: &JobGraph, profile: &JobProfile, max_allocation: u32) -> Self {
        assert!(max_allocation > 0);
        assert_eq!(graph.num_stages(), profile.stages.len());
        AmdahlModel {
            max_runtime: profile.max_runtimes(),
            longest_path: profile.longest_paths(graph),
            total_exec: profile.stages.iter().map(|s| s.total_exec()).collect(),
            max_allocation,
        }
    }

    /// `S_t`: remaining critical path at fractions `fs`.
    pub fn remaining_critical_path(&self, fs: &[f64]) -> f64 {
        let mut st: f64 = 0.0;
        for (s, &f) in fs.iter().enumerate() {
            if f < 1.0 {
                st = st.max((1.0 - f) * self.max_runtime[s] + self.longest_path[s]);
            }
        }
        st
    }

    /// `P_t`: total remaining CPU seconds at fractions `fs`.
    pub fn remaining_work(&self, fs: &[f64]) -> f64 {
        fs.iter()
            .enumerate()
            .filter(|&(_, &f)| f < 1.0)
            .map(|(s, &f)| (1.0 - f) * self.total_exec[s])
            .sum()
    }
}

impl CompletionModel for AmdahlModel {
    fn remaining_secs(&self, fs: &[f64], _progress: f64, allocation: u32) -> f64 {
        assert_eq!(fs.len(), self.max_runtime.len(), "fs length mismatch");
        let a = allocation.max(1);
        // §4.1: `P` is the aggregate CPU time *minus the time on the
        // critical path* — work on the critical path is already
        // accounted for by the serial term `S_t`.
        let st = self.remaining_critical_path(fs);
        let pt = (self.remaining_work(fs) - st).max(0.0);
        st + pt / f64::from(a)
    }

    fn max_allocation(&self) -> u32 {
        self.max_allocation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_jobgraph::profile::ProfileBuilder;
    use jockey_jobgraph::StageId;

    /// map(4 tasks x 10 s) --barrier--> reduce(2 tasks x 30 s).
    fn fixture() -> (JobGraph, JobProfile) {
        let mut b = JobGraphBuilder::new("f");
        let m = b.stage("map", 4);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let g = b.build().unwrap();
        let mut pb = ProfileBuilder::new(&g);
        for _ in 0..4 {
            pb.record_task(StageId(0), 0.0, 10.0, false);
        }
        for _ in 0..2 {
            pb.record_task(StageId(1), 0.0, 30.0, false);
        }
        let p = pb.finish(70.0, 1.0);
        (g, p)
    }

    #[test]
    fn full_job_prediction_matches_formula() {
        let (g, p) = fixture();
        let m = AmdahlModel::new(&g, &p, 100);
        // S_0 = 10 + 30 = 40; total work 100, so P_0 = 100 - 40 = 60
        // (§4.1 subtracts the critical-path time from the parallel
        // term).
        let fs = [0.0, 0.0];
        assert_eq!(m.remaining_critical_path(&fs), 40.0);
        assert_eq!(m.remaining_work(&fs), 100.0);
        assert_eq!(m.remaining_secs(&fs, 0.0, 10), 40.0 + 6.0);
        assert_eq!(m.remaining_secs(&fs, 0.0, 1), 100.0);
        assert_eq!(m.max_allocation(), 100);
    }

    #[test]
    fn partial_progress_shrinks_both_terms() {
        let (g, p) = fixture();
        let m = AmdahlModel::new(&g, &p, 100);
        // Map half done: S_t = max(0.5*10 + 30, 30 + 0) = 35;
        // P_t = 0.5*40 + 60 = 80.
        let fs = [0.5, 0.0];
        assert_eq!(m.remaining_critical_path(&fs), 35.0);
        assert_eq!(m.remaining_work(&fs), 80.0);
        // Map fully done: S_t = 30, work 60, parallel term 30.
        let fs = [1.0, 0.0];
        assert_eq!(m.remaining_secs(&fs, 0.0, 60), 30.5);
    }

    #[test]
    fn finished_job_has_zero_remaining() {
        let (g, p) = fixture();
        let m = AmdahlModel::new(&g, &p, 100);
        assert_eq!(m.remaining_secs(&[1.0, 1.0], 1.0, 50), 0.0);
    }

    #[test]
    fn more_allocation_never_slower() {
        let (g, p) = fixture();
        let m = AmdahlModel::new(&g, &p, 100);
        let fs = [0.25, 0.0];
        let mut prev = f64::INFINITY;
        for a in 1..=100 {
            let r = m.remaining_secs(&fs, 0.0, a);
            assert!(r <= prev);
            prev = r;
        }
        // Asymptotically bounded below by the critical path.
        assert!(prev >= m.remaining_critical_path(&fs));
    }

    #[test]
    fn zero_allocation_is_treated_as_one() {
        let (g, p) = fixture();
        let m = AmdahlModel::new(&g, &p, 100);
        assert_eq!(
            m.remaining_secs(&[0.0, 0.0], 0.0, 0),
            m.remaining_secs(&[0.0, 0.0], 0.0, 1)
        );
    }

    /// Satellite: the consolidated sizing search. Over randomized
    /// monotone latency grids, the binary-search fast path and the
    /// exhaustive scan must agree on every deadline — including
    /// never-feasible and always-feasible ones — and the scan remains
    /// the reference on non-monotone grids.
    #[test]
    fn min_feasible_allocation_fast_path_matches_scan_on_random_grids() {
        use jockey_simrt::rng::SeedDeriver;
        use rand::Rng;

        let mut rng = SeedDeriver::new(99).rng("sizing-grids");
        for trial in 0..200 {
            let max: u32 = rng.gen_range(1..=64);
            // A non-increasing latency curve with random plateaus.
            let mut latency = vec![0.0_f64; (max + 1) as usize];
            let mut cur: f64 = rng.gen_range(10.0..1000.0);
            for a in (1..=max).rev() {
                latency[a as usize] = cur;
                if rng.gen_bool(0.7) {
                    cur += rng.gen_range(0.0..50.0);
                }
            }
            let deadline: f64 = rng.gen_range(0.0..1200.0);
            let fits = |a: u32| latency[a as usize] <= deadline;
            let fast = min_feasible_allocation(max, true, fits);
            let slow = min_feasible_allocation(max, false, fits);
            assert_eq!(fast, slow, "trial {trial}: max {max} deadline {deadline}");
        }
        // Degenerate inputs.
        assert_eq!(min_feasible_allocation(0, true, |_| true), None);
        assert_eq!(min_feasible_allocation(5, true, |_| false), None);
        assert_eq!(min_feasible_allocation(5, false, |_| false), None);
        assert_eq!(min_feasible_allocation(5, true, |_| true), Some(1));
    }
}
