//! The four resource-allocation policies of §5.2, packaged for the
//! evaluation harness.
//!
//! - **Jockey** — `C(p, a)` model + dynamic adaptation (the paper's
//!   system);
//! - **Jockey w/o adaptation** — the `C(p, a)` model picks one a-priori
//!   allocation that maximizes utility, never changed at runtime;
//! - **Jockey w/o simulator** — dynamic adaptation driven by the
//!   Amdahl's-Law model;
//! - **Max allocation** — guarantee the full token budget.
//!
//! [`JockeySetup`] bundles the per-job artifacts (training profile,
//! trained `C(p, a)` table, indicator context) so a policy can be
//! instantiated per run with one call.

use std::sync::Arc;

use jockey_cluster::{FixedAllocation, JobController};
use jockey_jobgraph::graph::JobGraph;
use jockey_jobgraph::profile::JobProfile;
use jockey_simrt::time::SimDuration;

use crate::control::{ControlParams, JockeyController};
use crate::cpa::{unconstrained_rel_windows, CpaModel, TrainConfig};
use crate::predict::AmdahlModel;
use crate::progress::{IndicatorContext, ProgressIndicator};
use crate::utility::UtilityFunction;

/// The §5.2 policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Simulator model + dynamic adaptation.
    Jockey,
    /// Simulator model, static a-priori allocation.
    JockeyNoAdapt,
    /// Amdahl model + dynamic adaptation.
    JockeyNoSim,
    /// Guarantee the full budget.
    MaxAllocation,
}

impl Policy {
    /// All four policies in the paper's presentation order.
    pub const ALL: [Policy; 4] = [
        Policy::Jockey,
        Policy::JockeyNoAdapt,
        Policy::JockeyNoSim,
        Policy::MaxAllocation,
    ];

    /// The label used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Jockey => "Jockey",
            Policy::JockeyNoAdapt => "Jockey w/o adaptation",
            Policy::JockeyNoSim => "Jockey w/o simulator",
            Policy::MaxAllocation => "max allocation",
        }
    }
}

/// Per-job trained artifacts, built once offline and reused across
/// experiment runs (the paper trains from a single production run of
/// each job, §5.1).
#[derive(Clone)]
pub struct JockeySetup {
    /// The job's plan graph.
    pub graph: Arc<JobGraph>,
    /// The training profile (one prior execution).
    pub profile: JobProfile,
    /// The trained `C(p, a)` table.
    pub cpa: Arc<CpaModel>,
    /// Which progress indicator the setup was trained with.
    pub indicator: ProgressIndicator,
    /// Unconstrained-run stage windows (for `minstage-inf`).
    pub rel_inf: Vec<(f64, f64)>,
    /// The token budget (max guarantee) policies may use.
    pub max_tokens: u32,
}

impl JockeySetup {
    /// Trains all artifacts for one job: the unconstrained stage
    /// windows, the indicator context, and the `C(p, a)` table.
    pub fn train(
        graph: Arc<JobGraph>,
        profile: JobProfile,
        indicator: ProgressIndicator,
        train_cfg: &TrainConfig,
        seed: u64,
    ) -> Self {
        let rel_inf = unconstrained_rel_windows(&graph, &profile, seed ^ 0x5eed);
        let ctx = IndicatorContext::new(indicator, &graph, &profile, Some(rel_inf.clone()));
        let cpa = Arc::new(CpaModel::train(&graph, &profile, &ctx, train_cfg, seed));
        let max_tokens = *train_cfg.allocations.last().expect("non-empty grid");
        JockeySetup {
            graph,
            profile,
            cpa,
            indicator,
            rel_inf,
            max_tokens,
        }
    }

    /// Feasibility check (§2.2): a deadline is feasible only if it is
    /// at least the job's critical path — and practically, only if the
    /// model's median prediction at the full token budget fits within
    /// it.
    pub fn feasible(&self, deadline: SimDuration) -> bool {
        let cp = self.profile.critical_path(&self.graph);
        if deadline.as_secs_f64() < cp {
            return false;
        }
        self.cpa.remaining_percentile(0.0, self.max_tokens, 50.0) <= deadline.as_secs_f64()
    }

    /// A fresh indicator context of the configured kind (contexts are
    /// cheap; controllers own one each).
    pub fn indicator_context(&self) -> IndicatorContext {
        self.indicator_context_of(self.indicator)
    }

    /// A fresh indicator context of an explicit kind (for the §5.5
    /// indicator ablations).
    pub fn indicator_context_of(&self, kind: ProgressIndicator) -> IndicatorContext {
        IndicatorContext::new(kind, &self.graph, &self.profile, Some(self.rel_inf.clone()))
    }

    /// Instantiates a controller for `policy` against `deadline`.
    ///
    /// For [`Policy::JockeyNoAdapt`], the static allocation is the
    /// minimum whose slack-inflated fresh prediction meets the deadline
    /// (falling back to the full budget for infeasible deadlines).
    pub fn controller(
        &self,
        policy: Policy,
        deadline: SimDuration,
        params: ControlParams,
    ) -> Box<dyn JobController> {
        self.controller_with_indicator(policy, deadline, params, self.indicator)
    }

    /// Like [`JockeySetup::controller`] but overriding the progress
    /// indicator (the §5.5 `minstage`/`CP` ablations).
    pub fn controller_with_indicator(
        &self,
        policy: Policy,
        deadline: SimDuration,
        params: ControlParams,
        indicator: ProgressIndicator,
    ) -> Box<dyn JobController> {
        let utility = UtilityFunction::deadline(deadline);
        match policy {
            Policy::Jockey => Box::new(JockeyController::new(
                self.cpa.clone(),
                self.indicator_context_of(indicator),
                utility,
                params,
            )),
            Policy::JockeyNoAdapt => {
                let a = self
                    .cpa
                    .min_allocation_for_deadline(deadline, params.slack)
                    .unwrap_or(self.max_tokens);
                Box::new(FixedAllocation(a))
            }
            Policy::JockeyNoSim => {
                let model = Arc::new(AmdahlModel::new(
                    &self.graph,
                    &self.profile,
                    self.max_tokens,
                ));
                Box::new(JockeyController::new(
                    model,
                    self.indicator_context_of(indicator),
                    utility,
                    params,
                ))
            }
            Policy::MaxAllocation => Box::new(FixedAllocation(self.max_tokens)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_cluster::{ClusterConfig, ClusterSim, JobSpec};
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use jockey_simrt::time::SimTime;

    fn setup() -> JockeySetup {
        let mut b = JobGraphBuilder::new("policy-job");
        let m = b.stage("map", 12);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(10.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), 3);
        sim.add_job(spec, Box::new(FixedAllocation(6)));
        let profile = sim.run_single().profile;
        JockeySetup::train(
            graph,
            profile,
            ProgressIndicator::TotalWorkWithQ,
            &TrainConfig::fast(vec![2, 4, 8]),
            42,
        )
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Policy::Jockey.name(), "Jockey");
        assert_eq!(Policy::JockeyNoAdapt.name(), "Jockey w/o adaptation");
        assert_eq!(Policy::ALL.len(), 4);
    }

    #[test]
    fn all_policies_complete_a_job() {
        let s = setup();
        for policy in Policy::ALL {
            let spec = JobSpec::from_profile(s.graph.clone(), &s.profile);
            let controller = s.controller(
                policy,
                SimDuration::from_secs(120),
                ControlParams::default(),
            );
            let mut cfg = ClusterConfig::dedicated(8);
            cfg.control_period = jockey_simrt::time::SimDuration::from_secs(15);
            let mut sim = ClusterSim::new(cfg, 9);
            sim.add_job(spec, controller);
            let r = sim.run_single();
            assert!(
                r.completed_at.is_some(),
                "{} failed to finish",
                policy.name()
            );
        }
    }

    #[test]
    fn no_adapt_sizes_to_deadline() {
        let s = setup();
        // Loose deadline: the static allocation should be small.
        let loose = s
            .cpa
            .min_allocation_for_deadline(SimDuration::from_secs(300), 1.2)
            .unwrap();
        let tight = s
            .cpa
            .min_allocation_for_deadline(SimDuration::from_secs(70), 1.2)
            .unwrap_or(s.max_tokens);
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn max_allocation_uses_full_budget() {
        let s = setup();
        let mut c = s.controller(
            Policy::MaxAllocation,
            SimDuration::from_secs(60),
            ControlParams::default(),
        );
        let status = jockey_cluster::JobStatus {
            now: SimTime::ZERO,
            elapsed: SimDuration::ZERO,
            stage_fraction: vec![0.0, 0.0],
            stage_completed: vec![0, 0],
            running: 0,
            running_guaranteed: 0,
            guarantee: 0,
            work_done: 0.0,
            finished: false,
        };
        assert_eq!(c.tick(&status).guarantee, 8);
    }

    #[test]
    fn indicator_override_builds() {
        let s = setup();
        for kind in ProgressIndicator::ALL {
            let _ = s.controller_with_indicator(
                Policy::Jockey,
                SimDuration::from_secs(120),
                ControlParams::default(),
                kind,
            );
        }
    }
}

#[cfg(test)]
mod feasibility_tests {
    use super::*;
    use jockey_cluster::{ClusterConfig, ClusterSim, FixedAllocation, JobSpec};
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use std::sync::Arc;

    #[test]
    fn feasibility_brackets_the_critical_path() {
        let mut b = JobGraphBuilder::new("feas");
        let m = b.stage("map", 8);
        let r = b.stage("reduce", 1);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(30.0), Constant(0.0), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(8), 1);
        sim.add_job(spec, Box::new(FixedAllocation(8)));
        let profile = sim.run_single().profile;
        let setup = JockeySetup::train(
            graph,
            profile,
            ProgressIndicator::TotalWorkWithQ,
            &crate::cpa::TrainConfig::fast(vec![2, 4, 8]),
            3,
        );
        // Critical path = 60 s; anything below is infeasible.
        assert!(!setup.feasible(SimDuration::from_secs(59)));
        // A generous deadline is feasible.
        assert!(setup.feasible(SimDuration::from_secs(300)));
    }
}
