//! A prototype multi-job arbiter (§4.4's future work).
//!
//! "We plan to extend Jockey to reach globally optimal allocations when
//! managing multiple SLO-bound jobs. Doing so requires an additional
//! inter-job arbiter that dynamically shifts resources from jobs with
//! low expected marginal utility to those with high expected marginal
//! utility." This module implements the natural greedy version: starting
//! from each job's minimum, repeatedly grant one token to the job whose
//! expected utility improves the most, until the budget is exhausted or
//! no job benefits.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::predict::CompletionModel;
use crate::utility::UtilityFunction;

/// One job's state as seen by the arbiter.
#[derive(Clone)]
pub struct ArbiterJob {
    /// Completion model (typically a trained [`crate::cpa::CpaModel`]).
    pub model: Arc<dyn CompletionModel>,
    /// The job's utility function.
    pub utility: UtilityFunction,
    /// Current progress (from the job's indicator).
    pub progress: f64,
    /// Per-stage completion fractions (for Amdahl-style models).
    pub stage_fraction: Vec<f64>,
    /// Seconds since the job started.
    pub elapsed_secs: f64,
    /// Prediction slack multiplier.
    pub slack: f64,
}

impl ArbiterJob {
    fn utility_at(&self, allocation: u32) -> f64 {
        let remaining = self.slack
            * self
                .model
                .remaining_secs(&self.stage_fraction, self.progress, allocation);
        self.utility.eval(self.elapsed_secs + remaining)
    }
}

/// Greedily splits `budget` tokens across `jobs` by marginal utility.
///
/// Every job receives at least one token — the **1-token floor**: a
/// running job stripped to zero guaranteed tokens would be evicted
/// wholesale, so the floor is the smallest allocation that keeps it
/// schedulable. The floor is why callers managing a fixed budget must
/// either keep `jobs.len() <= budget` (admission control) or account
/// the difference as over-commit ([`SharedArbiter::over_committed_rounds`],
/// [`crate::plane::PlaneStats::over_committed_rounds`]). Remaining
/// tokens go one at a time to the job with the highest marginal utility
/// gain; allocation stops early when no job's utility improves by more
/// than `1e-12` (granting tokens that help nobody would only hurt the
/// rest of the cluster). Each job is also capped at its model's
/// [`CompletionModel::max_allocation`].
///
/// Returns the per-job allocations, in input order.
///
/// Tokens are granted in **jumps** along each job's concave utility
/// envelope: a job's candidate is the jump size maximizing average
/// utility gain per token, not just the next single token. On concave
/// curves (closed-form models) the best jump is always one token and
/// the loop matches the classic single-token greedy exactly. The jump
/// matters for *learned* models ([`crate::online::ModelHandle`]): a
/// pessimistic learned row sitting below optimistic unexplored rows
/// makes utility non-concave in allocation, and a single-token scan
/// stalls in the zero-or-negative-gain valley right below a large
/// improvement — exactly the shape a drifted `C(p, a)` produces, where
/// it starves jobs below the allocation admission reserved for them.
///
/// A job's candidate jump changes only when *it* is granted tokens, so
/// the grant loop keeps one candidate per job in a max-heap and
/// re-inserts only the winner's next jump: O((jobs + budget) × (log
/// jobs + cap)) per split, where cap is the model allocation grid —
/// still far below the naive O(budget × jobs × cap) full rescan at a
/// 10k-job fleet. Ties are broken by the lowest job index, then the
/// smallest jump, matching the single-token rescan on concave inputs.
/// Allocation stops early when no job's average gain per token exceeds
/// `1e-12` (granting tokens that help nobody would only hurt the rest
/// of the cluster). Each job is capped at its model's
/// [`CompletionModel::max_allocation`].
///
/// # Panics
///
/// Panics if `budget < jobs.len()` (cannot give everyone a token) and
/// `jobs` is non-empty.
pub fn arbitrate(jobs: &[ArbiterJob], budget: u32) -> Vec<u32> {
    if jobs.is_empty() {
        return Vec::new();
    }
    assert!(
        budget as usize >= jobs.len(),
        "budget {budget} below job count {}",
        jobs.len()
    );
    let mut alloc: Vec<u32> = vec![1; jobs.len()];
    let mut remaining = budget - jobs.len() as u32;

    // Best jump from allocation `a`, scanning at most `limit` tokens
    // ahead: the (average gain per token, jump size) pair with the
    // highest rate. Non-finite gains are floored to -inf so a NaN
    // utility can never win tokens. Ties keep the smallest jump so
    // concave curves degrade to the single-token greedy.
    let best_jump = |job: &ArbiterJob, a: u32, limit: u32| -> Option<(f64, u32)> {
        let cap = job.model.max_allocation();
        if a >= cap || limit == 0 {
            return None; // At cap (or dry pool): no further candidate.
        }
        let base = job.utility_at(a);
        let mut best: Option<(f64, u32)> = None;
        for k in 1..=limit.min(cap - a) {
            let g = job.utility_at(a + k) - base;
            let rate = if g.is_finite() {
                g / f64::from(k)
            } else {
                f64::NEG_INFINITY
            };
            if best.is_none_or(|(r, _)| rate > r) {
                best = Some((rate, k));
            }
        }
        best
    };

    // (rate, Reverse(job), jump): pops the highest average gain, lowest
    // index first. One live entry per job; granting pushes the job's
    // next jump, so no entry ever goes stale — though a jump sized
    // before other grants shrank the pool may no longer fit and is
    // re-scanned under the tighter limit when popped.
    let mut heap: BinaryHeap<(OrderedGain, Reverse<usize>, u32)> =
        BinaryHeap::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        if let Some((rate, k)) = best_jump(job, 1, remaining) {
            heap.push((OrderedGain(rate), Reverse(i), k));
        }
    }
    while remaining > 0 {
        let Some((OrderedGain(rate), Reverse(i), k)) = heap.pop() else {
            break; // Every job is at its cap.
        };
        if rate <= 1e-12 {
            break; // Granting tokens that help nobody hurts the cluster.
        }
        if k > remaining {
            // Sized against a larger pool: re-scan within what's left.
            if let Some((r, k2)) = best_jump(&jobs[i], alloc[i], remaining) {
                heap.push((OrderedGain(r), Reverse(i), k2));
            }
            continue;
        }
        alloc[i] += k;
        remaining -= k;
        if let Some((r, k2)) = best_jump(&jobs[i], alloc[i], remaining) {
            heap.push((OrderedGain(r), Reverse(i), k2));
        }
    }
    alloc
}

/// A totally ordered f64 wrapper for the arbitration heap (inputs are
/// NaN-free by construction — `arbitrate` floors non-finite gains).
#[derive(PartialEq)]
struct OrderedGain(f64);

impl Eq for OrderedGain {}

impl PartialOrd for OrderedGain {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedGain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::time::SimDuration;

    /// remaining = work * (1 - progress) / a.
    struct Toy {
        work: f64,
    }

    impl CompletionModel for Toy {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            self.work * (1.0 - progress) / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            100
        }
    }

    fn job(work: f64, deadline_mins: u64, progress: f64, elapsed_secs: f64) -> ArbiterJob {
        ArbiterJob {
            model: Arc::new(Toy { work }),
            utility: UtilityFunction::deadline(SimDuration::from_mins(deadline_mins)),
            progress,
            stage_fraction: vec![],
            elapsed_secs,
            slack: 1.0,
        }
    }

    #[test]
    fn tight_deadline_wins_tokens() {
        // Same work; one job has half the time left.
        let jobs = [job(36_000.0, 60, 0.0, 0.0), job(36_000.0, 120, 0.0, 0.0)];
        let alloc = arbitrate(&jobs, 20);
        assert!(alloc.iter().sum::<u32>() <= 20);
        assert!(alloc[0] > alloc[1], "{alloc:?}");
        // The tight job needs 10 tokens (36000/3600) to be on time.
        assert!(alloc[0] >= 10, "{alloc:?}");
    }

    #[test]
    fn stops_when_no_marginal_gain() {
        // Tiny jobs: one token each already maximizes utility.
        let jobs = [job(60.0, 60, 0.0, 0.0), job(60.0, 60, 0.0, 0.0)];
        let alloc = arbitrate(&jobs, 50);
        assert_eq!(alloc, vec![1, 1]);
    }

    #[test]
    fn budget_is_respected() {
        let jobs = [
            job(100_000.0, 30, 0.0, 0.0),
            job(100_000.0, 30, 0.0, 0.0),
            job(100_000.0, 30, 0.0, 0.0),
        ];
        let alloc = arbitrate(&jobs, 10);
        assert_eq!(alloc.iter().sum::<u32>(), 10);
    }

    #[test]
    fn progressed_jobs_release_demand() {
        let jobs = [job(36_000.0, 60, 0.9, 600.0), job(36_000.0, 60, 0.0, 600.0)];
        let alloc = arbitrate(&jobs, 20);
        assert!(alloc[1] > alloc[0], "{alloc:?}");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(arbitrate(&[], 10).is_empty());
    }

    /// remaining = table[a - 1]: arbitrary per-allocation curves, the
    /// shape a learned-with-floor model produces.
    struct Table {
        remaining: Vec<f64>,
    }

    impl CompletionModel for Table {
        fn remaining_secs(&self, _fs: &[f64], _progress: f64, allocation: u32) -> f64 {
            self.remaining[(allocation as usize - 1).min(self.remaining.len() - 1)]
        }
        fn max_allocation(&self) -> u32 {
            self.remaining.len() as u32
        }
    }

    #[test]
    fn jump_grants_escape_a_non_concave_valley() {
        // A drifted learned model blended with an optimistic floor: the
        // learned row at 2 tokens is *slower* than the floor's answer at
        // 1, so the single-token marginal gain at the floor is negative
        // — but three tokens meet the deadline outright. The jump grant
        // must climb out of the valley instead of stranding the job at
        // its 1-token floor.
        let jobs = [ArbiterJob {
            model: Arc::new(Table {
                remaining: vec![3_600.0, 5_460.0, 1_200.0, 900.0, 720.0],
            }),
            utility: UtilityFunction::deadline(SimDuration::from_secs_f64(3_000.0)),
            progress: 0.0,
            stage_fraction: vec![],
            elapsed_secs: 0.0,
            slack: 1.0,
        }];
        let alloc = arbitrate(&jobs, 12);
        assert_eq!(alloc, vec![3], "stranded below the valley");
    }

    #[test]
    fn oversized_jumps_rescan_within_the_shrunken_pool() {
        // Accelerating gains: both jobs' best jump is 2 tokens straight
        // to the 600-second rung, but after the first job takes it only
        // one token is left. The second job's stale 2-token candidate
        // must be re-scanned under the tighter limit and settle for the
        // single useful step to 8 000 s instead of stalling at the
        // floor.
        let table = || Table {
            remaining: vec![9_000.0, 8_000.0, 600.0, 300.0],
        };
        let mk = || ArbiterJob {
            model: Arc::new(table()),
            utility: UtilityFunction::deadline(SimDuration::from_secs_f64(1_000.0)),
            progress: 0.0,
            stage_fraction: vec![],
            elapsed_secs: 0.0,
            slack: 1.0,
        };
        let jobs = [mk(), mk()];
        let alloc = arbitrate(&jobs, 5);
        assert_eq!(alloc, vec![3, 2], "jump then clamped rescan");
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn budget_below_job_count_panics() {
        let jobs = [job(1.0, 60, 0.0, 0.0), job(1.0, 60, 0.0, 0.0)];
        arbitrate(&jobs, 1);
    }

    /// The naive O(budget × jobs) rescan the heap version replaced:
    /// re-evaluates every job's marginal gain on every grant, taking the
    /// first index among ties.
    fn arbitrate_rescan(jobs: &[ArbiterJob], budget: u32) -> Vec<u32> {
        let mut alloc: Vec<u32> = vec![1; jobs.len()];
        let mut remaining = budget - jobs.len() as u32;
        let mut current_u: Vec<f64> = jobs.iter().map(|j| j.utility_at(1)).collect();
        while remaining > 0 {
            let mut best: Option<(usize, f64, f64)> = None;
            for (i, job) in jobs.iter().enumerate() {
                if alloc[i] >= job.model.max_allocation() {
                    continue;
                }
                let u_next = job.utility_at(alloc[i] + 1);
                let gain = u_next - current_u[i];
                if best.is_none_or(|(_, g, _)| gain > g) {
                    best = Some((i, gain, u_next));
                }
            }
            match best {
                Some((i, gain, u_next)) if gain > 1e-12 => {
                    alloc[i] += 1;
                    current_u[i] = u_next;
                    remaining -= 1;
                }
                _ => break,
            }
        }
        alloc
    }

    #[test]
    fn heap_grant_loop_matches_the_full_rescan() {
        // Pseudo-random fleets: mixed works, deadlines, progress and
        // elapsed times, across budgets from the floor to saturation.
        let mut state = 0x9e37_79b9_u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for trial in 0..40 {
            let n = 1 + next(12) as usize;
            let jobs: Vec<ArbiterJob> = (0..n)
                .map(|_| {
                    job(
                        1_000.0 + next(50_000) as f64,
                        10 + next(110),
                        next(90) as f64 / 100.0,
                        next(3_600) as f64,
                    )
                })
                .collect();
            let budget = n as u32 + next(60) as u32;
            assert_eq!(
                arbitrate(&jobs, budget),
                arbitrate_rescan(&jobs, budget),
                "trial {trial}: {n} jobs, budget {budget}"
            );
        }
    }
}

use jockey_cluster::{ControlDecision, FixedAllocation, JobStatus};
use jockey_simrt::time::SimDuration;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::layer::{ControlLayer, Layered};
use crate::progress::IndicatorContext;

/// Per-job state tracked by a [`SharedArbiter`].
struct Slot {
    model: Arc<dyn CompletionModel>,
    utility: UtilityFunction,
    slack: f64,
    progress: f64,
    stage_fraction: Vec<f64>,
    elapsed_secs: f64,
    finished: bool,
}

/// A live inter-job arbiter (§4.4): concurrent SLO jobs register
/// against one token budget; each control tick, the ticking job
/// refreshes its state and the greedy marginal-utility split
/// ([`arbitrate`]) decides its guarantee from the latest view of every
/// job. Decentralized — each job's controller runs independently but
/// shares the arbiter — so no global scheduler loop is needed.
pub struct SharedArbiter {
    budget: u32,
    slots: Mutex<Vec<Slot>>,
    /// Ticks whose active fleet outnumbered the budget, forcing the
    /// 1-token floor to hand out more tokens than the arbiter owns.
    over_commits: AtomicU64,
}

impl SharedArbiter {
    /// Creates an arbiter managing `budget` guaranteed tokens.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(budget: u32) -> Arc<Self> {
        assert!(budget > 0);
        Arc::new(SharedArbiter {
            budget,
            slots: Mutex::new(Vec::new()),
            over_commits: AtomicU64::new(0),
        })
    }

    /// How many arbitration rounds handed out more tokens than the
    /// budget because the active fleet outnumbered it (the 1-token
    /// floor). Zero for fleets kept within budget by admission control.
    pub fn over_committed_rounds(&self) -> u64 {
        self.over_commits.load(Ordering::Relaxed)
    }

    /// Locks the slot table, recovering it if a previous holder
    /// panicked. Slot entries are plain state snapshots overwritten on
    /// every tick (no multi-step invariants span the lock), so the
    /// table is always usable; propagating the poison would instead
    /// cascade one job's panic into every other job's control thread.
    fn lock_slots(&self) -> MutexGuard<'_, Vec<Slot>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a job, returning its controller. `slack` is the
    /// prediction multiplier applied inside the arbitration.
    pub fn register(
        self: &Arc<Self>,
        model: Arc<dyn CompletionModel>,
        indicator: IndicatorContext,
        utility: UtilityFunction,
        slack: f64,
    ) -> ArbitratedController {
        let slot = self.register_slot(model, utility, slack, indicator.stage_count());
        Layered::new(FixedAllocation(1)).with(Box::new(ArbitrationLayer {
            arbiter: self.clone(),
            slot,
            indicator,
            smoothed: None,
        }))
    }

    /// Registers a bare slot (no controller wiring) and returns its
    /// index.
    pub(crate) fn register_slot(
        &self,
        model: Arc<dyn CompletionModel>,
        utility: UtilityFunction,
        slack: f64,
        stage_count: usize,
    ) -> usize {
        let mut slots = self.lock_slots();
        slots.push(Slot {
            model,
            utility,
            slack,
            progress: 0.0,
            stage_fraction: vec![0.0; stage_count],
            elapsed_secs: 0.0,
            finished: false,
        });
        slots.len() - 1
    }

    /// Updates one slot and recomputes the ticking job's share.
    fn tick_slot(&self, slot: usize, progress: f64, status: &JobStatus) -> u32 {
        let mut slots = self.lock_slots();
        {
            let s = &mut slots[slot];
            s.progress = progress;
            s.stage_fraction = status.stage_fraction.clone();
            s.elapsed_secs = status.elapsed.as_secs_f64();
            s.finished = status.finished;
        }
        // Arbitrate across unfinished jobs with the latest view.
        let active: Vec<usize> = (0..slots.len()).filter(|&i| !slots[i].finished).collect();
        if active.is_empty() || !active.contains(&slot) {
            return 1;
        }
        let jobs: Vec<ArbiterJob> = active
            .iter()
            .map(|&i| {
                let s = &slots[i];
                ArbiterJob {
                    model: s.model.clone(),
                    utility: s.utility.clone(),
                    progress: s.progress,
                    stage_fraction: s.stage_fraction.clone(),
                    elapsed_secs: s.elapsed_secs,
                    slack: s.slack,
                }
            })
            .collect();
        // The 1-token floor can exceed the configured budget when the
        // active fleet outgrows it; count such rounds instead of
        // absorbing the inflation silently.
        if active.len() as u32 > self.budget {
            self.over_commits.fetch_add(1, Ordering::Relaxed);
        }
        let budget = self.budget.max(active.len() as u32);
        let alloc = arbitrate(&jobs, budget);
        let pos = active.iter().position(|&i| i == slot).expect("slot active");
        alloc[pos]
    }

    fn set_deadline(&self, slot: usize, new_deadline: SimDuration) {
        let mut slots = self.lock_slots();
        slots[slot].utility = slots[slot].utility.with_deadline(new_deadline);
    }
}

/// A per-job controller backed by a [`SharedArbiter`]: a passive
/// 1-token inner controller whose decision the [`ArbitrationLayer`]
/// replaces wholesale every tick.
pub type ArbitratedController = Layered<FixedAllocation>;

/// Hysteresis coefficient applied to the arbiter's raw shares.
const ARBITER_HYSTERESIS: f64 = 0.3;

/// Arbitration as a stackable [`ControlLayer`].
///
/// The raw greedy split is smoothed with the same hysteresis the §4.3
/// control loop uses (α = 0.3 here): without it, jobs with near-equal
/// marginal utilities would swap tokens every tick, and each swing
/// demotes or evicts running tasks in the cluster.
pub struct ArbitrationLayer {
    arbiter: Arc<SharedArbiter>,
    slot: usize,
    indicator: IndicatorContext,
    smoothed: Option<f64>,
}

impl ArbitrationLayer {
    fn arbitrated(&mut self, status: &JobStatus) -> ControlDecision {
        let p = self.indicator.progress(&status.stage_fraction);
        let raw = self.arbiter.tick_slot(self.slot, p, status);
        let next = match self.smoothed {
            None => f64::from(raw),
            Some(cur) => cur + ARBITER_HYSTERESIS * (f64::from(raw) - cur),
        };
        self.smoothed = Some(next);
        ControlDecision {
            guarantee: (next.ceil() as u32).max(1),
            raw: Some(f64::from(raw)),
            progress: Some(p),
            predicted_completion: None,
        }
    }
}

impl ControlLayer for ArbitrationLayer {
    fn name(&self) -> &'static str {
        "arbitration"
    }

    fn after_tick(&mut self, status: &JobStatus, _decision: ControlDecision) -> ControlDecision {
        self.arbitrated(status)
    }

    fn after_initial(&mut self, status: &JobStatus, _decision: ControlDecision) -> ControlDecision {
        // Admission behaves like any other tick: the arbiter sizes the
        // job from the budget's current marginal utilities.
        self.arbitrated(status)
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        self.arbiter.set_deadline(self.slot, new_deadline);
        // A new SLO is a fresh sizing problem (same as JockeyController).
        self.smoothed = None;
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use crate::cpa::{CpaModel, TrainConfig};
    use crate::progress::{IndicatorContext, ProgressIndicator};
    use jockey_cluster::{ClusterConfig, ClusterSim, FixedAllocation, JobController, JobSpec};
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use jockey_simrt::time::SimDuration;

    fn trained_job(seed: u64) -> (Arc<jockey_jobgraph::JobGraph>, jockey_jobgraph::JobProfile) {
        let mut b = JobGraphBuilder::new(format!("arb-{seed}"));
        let m = b.stage("map", 24);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(20.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), seed);
        sim.add_job(spec, Box::new(FixedAllocation(6)));
        (graph.clone(), sim.run_single().profile)
    }

    #[test]
    fn two_arbitrated_jobs_share_a_budget_and_meet_deadlines() {
        let (g1, p1) = trained_job(1);
        let (g2, p2) = trained_job(2);
        let ctx1 = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &g1, &p1, None);
        let ctx2 = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &g2, &p2, None);
        let cfg = TrainConfig::fast(vec![1, 2, 4, 8, 12]);
        let m1 = Arc::new(CpaModel::train(&g1, &p1, &ctx1, &cfg, 3));
        let m2 = Arc::new(CpaModel::train(&g2, &p2, &ctx2, &cfg, 4));

        // Tight deadline for job 1, loose for job 2.
        let d1 = SimDuration::from_secs_f64(m1.fresh_latency(12) * 1.6);
        let d2 = SimDuration::from_secs_f64(m2.fresh_latency(12) * 5.0);

        let arbiter = SharedArbiter::new(12);
        let c1 = arbiter.register(
            m1.clone() as Arc<dyn CompletionModel>,
            ctx1,
            UtilityFunction::deadline(d1),
            1.2,
        );
        let c2 = arbiter.register(
            m2.clone() as Arc<dyn CompletionModel>,
            ctx2,
            UtilityFunction::deadline(d2),
            1.2,
        );

        let mut cluster = ClusterConfig::dedicated(12);
        cluster.max_guarantee = 12;
        cluster.control_period = SimDuration::from_secs(15);
        let mut sim = ClusterSim::new(cluster, 9);
        let i1 = sim.add_job(JobSpec::from_profile(g1.clone(), &p1), Box::new(c1));
        let i2 = sim.add_job(JobSpec::from_profile(g2.clone(), &p2), Box::new(c2));
        let results = sim.run();
        let l1 = results[i1].duration().expect("job 1 finished");
        let l2 = results[i2].duration().expect("job 2 finished");
        assert!(l1 <= d1, "tight job missed: {l1:?} vs {d1:?}");
        assert!(l2 <= d2, "loose job missed: {l2:?} vs {d2:?}");
        // The tight job got the larger share while both ran.
        assert!(
            results[i1].trace.median_guarantee() >= results[i2].trace.median_guarantee(),
            "tight {} vs loose {}",
            results[i1].trace.median_guarantee(),
            results[i2].trace.median_guarantee()
        );
        // Combined medians stay within the arbiter's budget.
        assert!(
            results[i1].trace.median_guarantee() + results[i2].trace.median_guarantee()
                <= 12.0 + 1e-9
        );
    }

    #[test]
    fn over_commit_rounds_are_counted() {
        let (g, p) = trained_job(7);
        let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &g, &p, None);
        let cfg = TrainConfig::fast(vec![1, 2, 4]);
        let m = Arc::new(CpaModel::train(&g, &p, &ctx, &cfg, 8));
        // Three jobs on a 2-token arbiter: every arbitration round
        // exceeds the budget via the 1-token floor.
        let arbiter = SharedArbiter::new(2);
        let mut handles: Vec<_> = (0..3)
            .map(|_| {
                arbiter.register(
                    m.clone() as Arc<dyn CompletionModel>,
                    ctx.clone(),
                    UtilityFunction::deadline(SimDuration::from_mins(10)),
                    1.0,
                )
            })
            .collect();
        assert_eq!(arbiter.over_committed_rounds(), 0);
        let status = jockey_cluster::JobStatus {
            now: jockey_simrt::time::SimTime::from_mins(1),
            elapsed: SimDuration::from_mins(1),
            stage_fraction: vec![0.2, 0.0],
            stage_completed: vec![5, 0],
            running: 1,
            running_guaranteed: 1,
            guarantee: 1,
            work_done: 10.0,
            finished: false,
        };
        for h in &mut handles {
            h.tick(&status);
        }
        assert_eq!(arbiter.over_committed_rounds(), 3);
    }

    #[test]
    fn finished_jobs_release_their_share() {
        let (g, p) = trained_job(5);
        let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &g, &p, None);
        let cfg = TrainConfig::fast(vec![1, 2, 4, 8]);
        let m = Arc::new(CpaModel::train(&g, &p, &ctx, &cfg, 6));
        let arbiter = SharedArbiter::new(8);
        let mut a = arbiter.register(
            m.clone() as Arc<dyn CompletionModel>,
            ctx.clone(),
            UtilityFunction::deadline(SimDuration::from_mins(10)),
            1.2,
        );
        let _b = arbiter.register(
            m as Arc<dyn CompletionModel>,
            ctx,
            UtilityFunction::deadline(SimDuration::from_mins(10)),
            1.2,
        );
        // Drive job A to "finished" and check its share collapses.
        let status = jockey_cluster::JobStatus {
            now: jockey_simrt::time::SimTime::from_mins(5),
            elapsed: SimDuration::from_mins(5),
            stage_fraction: vec![1.0, 1.0],
            stage_completed: vec![24, 2],
            running: 0,
            running_guaranteed: 0,
            guarantee: 4,
            work_done: 0.0,
            finished: true,
        };
        let d = a.tick(&status);
        assert_eq!(d.guarantee, 1, "finished job should hold no budget");
    }
}
