//! Stackable control-layer middleware over any [`JobController`].
//!
//! The §4.4/§5.6 runtime extensions — fair-share fallback, online
//! recalibration, inter-job arbitration — used to be three bespoke
//! `JobController` wrapper types, each re-implementing delegation by
//! hand. They are now [`ControlLayer`]s: small decorators with hooks
//! before and after the inner controller's tick, stacked in any
//! combination by [`Layered`]:
//!
//! ```text
//! ┌─ Layered ───────────────────────────────────────────────┐
//! │  before hooks: outermost → … → innermost                │
//! │           ┌───────────────────────────┐                 │
//! │           │ inner JobController       │                 │
//! │           └───────────────────────────┘                 │
//! │  after hooks:  innermost → … → outermost (final say)    │
//! └─────────────────────────────────────────────────────────┘
//! ```
//!
//! **Precedence.** Layers are pushed innermost-first with
//! [`Layered::with`]; the *last* pushed layer is outermost. Before
//! hooks run outermost→innermost, after hooks innermost→outermost, so
//! the outermost layer observes every inner transformation and has
//! final say on the guarantee. Layers that only act *before* the tick
//! (e.g. recalibration, which rescales the shared model) and layers
//! that only act *after* it (e.g. fallback, which overrides the
//! decision) commute: stacking fallback-over-recalibration or
//! recalibration-over-fallback yields identical decisions.

use std::any::Any;

use jockey_cluster::{ControlDecision, JobController, JobStatus};
use jockey_simrt::time::SimDuration;

/// One stackable control middleware.
///
/// All hooks default to pass-through, so a layer implements only the
/// seams it needs. `Any` is a supertrait so stacked layers can be
/// recovered by type via [`Layered::layer`] (e.g. to read a fallback
/// flag after a run).
pub trait ControlLayer: Any + Send {
    /// Short stable name for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs before the inner controller's periodic tick.
    fn before_tick(&mut self, _status: &JobStatus) {}

    /// Transforms the decision after the inner controller's periodic
    /// tick.
    fn after_tick(&mut self, _status: &JobStatus, decision: ControlDecision) -> ControlDecision {
        decision
    }

    /// Runs before the admission-time initial decision. Unlike
    /// periodic ticks, this defaults to a no-op: wrappers historically
    /// let the first decision through untouched.
    fn before_initial(&mut self, _status: &JobStatus) {}

    /// Transforms the admission-time initial decision (default:
    /// pass-through).
    fn after_initial(&mut self, _status: &JobStatus, decision: ControlDecision) -> ControlDecision {
        decision
    }

    /// Notifies the layer of a runtime deadline change (after the
    /// inner controller has been notified).
    fn deadline_changed(&mut self, _new_deadline: SimDuration) {}
}

/// A [`JobController`] decorated with a stack of [`ControlLayer`]s.
pub struct Layered<C> {
    inner: C,
    /// Innermost first; the last layer is outermost.
    layers: Vec<Box<dyn ControlLayer>>,
}

impl<C: JobController> Layered<C> {
    /// Wraps `inner` with no layers (a transparent pass-through).
    pub fn new(inner: C) -> Self {
        Layered {
            inner,
            layers: Vec::new(),
        }
    }

    /// Pushes `layer` as the new outermost layer.
    pub fn with(mut self, layer: Box<dyn ControlLayer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mutable access to the wrapped controller.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// The innermost-first layer stack.
    pub fn layers(&self) -> &[Box<dyn ControlLayer>] {
        &self.layers
    }

    /// Finds the first layer of concrete type `T` (innermost first).
    pub fn layer<T: ControlLayer>(&self) -> Option<&T> {
        self.layers
            .iter()
            .find_map(|l| (l.as_ref() as &dyn Any).downcast_ref::<T>())
    }

    /// Mutable variant of [`Layered::layer`].
    pub fn layer_mut<T: ControlLayer>(&mut self) -> Option<&mut T> {
        self.layers
            .iter_mut()
            .find_map(|l| (l.as_mut() as &mut dyn Any).downcast_mut::<T>())
    }
}

impl<C: JobController> JobController for Layered<C> {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        for layer in self.layers.iter_mut().rev() {
            layer.before_tick(status);
        }
        let mut decision = self.inner.tick(status);
        for layer in &mut self.layers {
            decision = layer.after_tick(status, decision);
        }
        decision
    }

    fn initial(&mut self, status: &JobStatus) -> ControlDecision {
        for layer in self.layers.iter_mut().rev() {
            layer.before_initial(status);
        }
        let mut decision = self.inner.initial(status);
        for layer in &mut self.layers {
            decision = layer.after_initial(status, decision);
        }
        decision
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        self.inner.deadline_changed(new_deadline);
        for layer in &mut self.layers {
            layer.deadline_changed(new_deadline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_cluster::FixedAllocation;
    use jockey_simrt::time::SimTime;

    fn status() -> JobStatus {
        JobStatus {
            now: SimTime::from_mins(1),
            elapsed: SimDuration::from_mins(1),
            stage_fraction: vec![0.5],
            stage_completed: vec![5],
            running: 2,
            running_guaranteed: 2,
            guarantee: 4,
            work_done: 10.0,
            finished: false,
        }
    }

    /// Appends a tag to a shared log and adds `delta` to the guarantee.
    struct Tagger {
        tag: &'static str,
        delta: u32,
        log: std::sync::Arc<std::sync::Mutex<Vec<String>>>,
    }

    impl ControlLayer for Tagger {
        fn name(&self) -> &'static str {
            self.tag
        }
        fn before_tick(&mut self, _status: &JobStatus) {
            self.log
                .lock()
                .unwrap()
                .push(format!("before:{}", self.tag));
        }
        fn after_tick(&mut self, _status: &JobStatus, mut d: ControlDecision) -> ControlDecision {
            self.log.lock().unwrap().push(format!("after:{}", self.tag));
            d.guarantee += self.delta;
            d
        }
    }

    #[test]
    fn hooks_run_outside_in_then_inside_out() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut c = Layered::new(FixedAllocation(10))
            .with(Box::new(Tagger {
                tag: "inner",
                delta: 1,
                log: log.clone(),
            }))
            .with(Box::new(Tagger {
                tag: "outer",
                delta: 10,
                log: log.clone(),
            }));
        let d = c.tick(&status());
        assert_eq!(d.guarantee, 21);
        assert_eq!(
            *log.lock().unwrap(),
            ["before:outer", "before:inner", "after:inner", "after:outer"]
        );
    }

    /// A layer that pins the guarantee — whoever runs last wins.
    struct Pin(u32);

    impl ControlLayer for Pin {
        fn name(&self) -> &'static str {
            "pin"
        }
        fn after_tick(&mut self, _status: &JobStatus, mut d: ControlDecision) -> ControlDecision {
            d.guarantee = self.0;
            d
        }
    }

    #[test]
    fn outermost_layer_has_final_say() {
        let mut a = Layered::new(FixedAllocation(10))
            .with(Box::new(Pin(3)))
            .with(Box::new(Pin(7)));
        assert_eq!(a.tick(&status()).guarantee, 7);
        let mut b = Layered::new(FixedAllocation(10))
            .with(Box::new(Pin(7)))
            .with(Box::new(Pin(3)));
        assert_eq!(b.tick(&status()).guarantee, 3);
    }

    #[test]
    fn layers_default_to_pass_through_on_initial() {
        let mut c = Layered::new(FixedAllocation(10)).with(Box::new(Pin(3)));
        // `Pin` only implements after_tick; initial stays untouched.
        assert_eq!(c.initial(&status()).guarantee, 10);
        assert_eq!(c.tick(&status()).guarantee, 3);
    }

    #[test]
    fn layer_lookup_by_type() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let c = Layered::new(FixedAllocation(10))
            .with(Box::new(Pin(3)))
            .with(Box::new(Tagger {
                tag: "t",
                delta: 0,
                log,
            }));
        assert_eq!(c.layer::<Pin>().unwrap().0, 3);
        assert_eq!(c.layer::<Tagger>().unwrap().tag, "t");
        struct Absent;
        impl ControlLayer for Absent {
            fn name(&self) -> &'static str {
                "absent"
            }
        }
        assert!(c.layer::<Absent>().is_none());
    }

    #[test]
    fn empty_stack_is_transparent() {
        let mut c = Layered::new(FixedAllocation(25));
        assert_eq!(c.tick(&status()), ControlDecision::simple(25));
        assert_eq!(c.initial(&status()), ControlDecision::simple(25));
        c.deadline_changed(SimDuration::from_mins(9)); // No-op, no panic.
    }
}
