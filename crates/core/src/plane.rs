//! A multi-job control plane: N concurrent SLO jobs against one shared
//! token budget, without a global lock.
//!
//! The live [`SharedArbiter`](crate::arbiter::SharedArbiter) keeps all
//! job state behind one `Mutex<Vec<Slot>>` and re-runs the greedy
//! marginal-utility split *inside that lock on every tick* — at N jobs
//! that is O(N · budget) model evaluations serialized N times per
//! control period. [`ControlPlane`] restructures the same decision
//! into a scalable runtime:
//!
//! - **Sharded per-job slots.** Each job's state snapshot lives behind
//!   its own small `Mutex`; a tick touches only its own slot, so jobs
//!   never contend with each other on the hot path.
//! - **Atomic budget snapshot.** The per-job allocation vector is an
//!   immutable [`Arc`] swapped behind an `RwLock`; readers clone the
//!   `Arc` (no waiting on the arbitration computation).
//! - **Batched tick scheduling.** The expensive greedy split runs once
//!   per *refresh epoch* (about once per control period across the
//!   whole fleet, i.e. every ~N ticks) instead of once per tick. A
//!   single ticking job wins a `try_lock` election, gathers the slot
//!   snapshots, computes the split off every job lock, and publishes a
//!   new snapshot; everyone else reads the current snapshot and moves
//!   on.
//!
//! Each job still observes the same cadence as under the per-tick
//! arbiter: its share is recomputed from a fleet-wide view about once
//! per control period. [`JobHandle`] implements `JobController` (with
//! the same hysteresis smoothing as the arbitrated controller), so
//! plane-managed jobs drop into `ClusterSim` or a real scheduler
//! unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use jockey_cluster::{ControlDecision, JobController, JobStatus};
use jockey_simrt::time::SimDuration;

use crate::arbiter::{arbitrate, ArbiterJob};
use crate::predict::CompletionModel;
use crate::progress::IndicatorContext;
use crate::utility::UtilityFunction;

/// One job's latest state snapshot, sharded behind its own lock.
struct SlotState {
    progress: f64,
    stage_fraction: Vec<f64>,
    elapsed_secs: f64,
    finished: bool,
    utility: UtilityFunction,
}

struct JobSlot {
    model: Arc<dyn CompletionModel>,
    slack: f64,
    state: Mutex<SlotState>,
}

impl JobSlot {
    /// Per-slot poison recovery: a snapshot is overwritten wholesale on
    /// every tick, so a panicking holder cannot leave it half-updated.
    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// An immutable per-epoch allocation snapshot, swapped atomically.
struct Snapshot {
    /// Guaranteed tokens per job id; jobs admitted after this snapshot
    /// was computed fall back to 1 until the next refresh.
    alloc: Vec<u32>,
}

/// Counters describing how much arbitration work the plane performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Total job ticks served.
    pub ticks: u64,
    /// Budget-split recomputations (refresh epochs).
    pub refreshes: u64,
}

/// The sharded multi-job control runtime.
pub struct ControlPlane {
    budget: u32,
    /// Slot list: grows on admission, never shrinks. The outer lock is
    /// held only to push or to iterate shared references — never while
    /// evaluating models.
    slots: RwLock<Vec<Arc<JobSlot>>>,
    /// The published allocation snapshot.
    snapshot: RwLock<Arc<Snapshot>>,
    /// Refresh election: the ticking job that wins this `try_lock`
    /// recomputes the split; losers use the current snapshot.
    refresh_gate: Mutex<()>,
    /// Ticks since the last completed refresh.
    ticks_since_refresh: AtomicU64,
    ticks: AtomicU64,
    refreshes: AtomicU64,
}

impl ControlPlane {
    /// Creates a plane managing `budget` guaranteed tokens.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(budget: u32) -> Arc<Self> {
        assert!(budget > 0);
        Arc::new(ControlPlane {
            budget,
            slots: RwLock::new(Vec::new()),
            snapshot: RwLock::new(Arc::new(Snapshot { alloc: Vec::new() })),
            refresh_gate: Mutex::new(()),
            ticks_since_refresh: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        })
    }

    /// Admits a job, returning its [`JobHandle`] controller. `slack`
    /// is the prediction multiplier applied inside the arbitration.
    pub fn add_job(
        self: &Arc<Self>,
        model: Arc<dyn CompletionModel>,
        indicator: IndicatorContext,
        utility: UtilityFunction,
        slack: f64,
    ) -> JobHandle {
        let slot = Arc::new(JobSlot {
            model,
            slack,
            state: Mutex::new(SlotState {
                progress: 0.0,
                stage_fraction: vec![0.0; indicator.stage_count()],
                elapsed_secs: 0.0,
                finished: false,
                utility,
            }),
        });
        let id = {
            let mut slots = self.slots.write().unwrap_or_else(PoisonError::into_inner);
            slots.push(slot);
            slots.len() - 1
        };
        // A fresh fleet view: admission changes every job's marginal
        // standing, so the next tick recomputes immediately.
        self.ticks_since_refresh.store(u64::MAX, Ordering::Relaxed);
        JobHandle {
            plane: self.clone(),
            id,
            indicator,
            smoothed: None,
        }
    }

    /// The plane's work counters.
    pub fn stats(&self) -> PlaneStats {
        PlaneStats {
            ticks: self.ticks.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
        }
    }

    /// Serves one job tick: updates the job's own slot, opportunistically
    /// refreshes the fleet snapshot when an epoch has elapsed, and
    /// returns the job's share from the published snapshot.
    fn tick_job(&self, id: usize, progress: f64, status: &JobStatus) -> u32 {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let slots = self.slots.read().unwrap_or_else(PoisonError::into_inner);
        {
            let mut s = slots[id].lock();
            s.progress = progress;
            s.stage_fraction.clear();
            s.stage_fraction.extend_from_slice(&status.stage_fraction);
            s.elapsed_secs = status.elapsed.as_secs_f64();
            s.finished = status.finished;
        }

        // One refresh per epoch: an epoch is one tick per admitted job,
        // so each job sees a fleet-fresh split about once per control
        // period — the same cadence the per-tick arbiter provides, at
        // 1/N of the arbitration cost.
        let epoch = slots.len() as u64;
        if self.ticks_since_refresh.fetch_add(1, Ordering::AcqRel) >= epoch.saturating_sub(1) {
            if let Ok(_gate) = self.refresh_gate.try_lock() {
                self.ticks_since_refresh.store(0, Ordering::Release);
                self.refresh(&slots);
            }
        }

        if status.finished {
            return 1;
        }
        let snapshot = {
            let guard = self.snapshot.read().unwrap_or_else(PoisonError::into_inner);
            guard.clone()
        };
        snapshot.alloc.get(id).copied().unwrap_or(1).max(1)
    }

    /// Recomputes the greedy split from the current slot snapshots and
    /// publishes it. Runs while holding only the refresh gate: slot
    /// locks are taken one at a time to copy state out, and the
    /// expensive marginal-utility scan touches no lock at all.
    fn refresh(&self, slots: &[Arc<JobSlot>]) {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        let mut active = Vec::with_capacity(slots.len());
        let mut jobs = Vec::with_capacity(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            let s = slot.lock();
            if s.finished {
                continue;
            }
            active.push(i);
            jobs.push(ArbiterJob {
                model: slot.model.clone(),
                utility: s.utility.clone(),
                progress: s.progress,
                stage_fraction: s.stage_fraction.clone(),
                elapsed_secs: s.elapsed_secs,
                slack: slot.slack,
            });
        }
        let mut alloc = vec![1_u32; slots.len()];
        if !jobs.is_empty() {
            let budget = self.budget.max(jobs.len() as u32);
            for (pos, share) in arbitrate(&jobs, budget).into_iter().enumerate() {
                alloc[active[pos]] = share;
            }
        }
        let mut guard = self
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *guard = Arc::new(Snapshot { alloc });
    }

    fn set_deadline(&self, id: usize, new_deadline: SimDuration) {
        let slots = self.slots.read().unwrap_or_else(PoisonError::into_inner);
        let mut s = slots[id].lock();
        s.utility = s.utility.with_deadline(new_deadline);
        drop(s);
        drop(slots);
        // Force a fleet-wide recomputation on the next tick.
        self.ticks_since_refresh.store(u64::MAX, Ordering::Relaxed);
    }
}

/// Hysteresis coefficient applied to the plane's raw shares (same as
/// the per-tick arbitrated controller).
const PLANE_HYSTERESIS: f64 = 0.3;

/// A per-job `JobController` served by a [`ControlPlane`].
pub struct JobHandle {
    plane: Arc<ControlPlane>,
    id: usize,
    indicator: IndicatorContext,
    smoothed: Option<f64>,
}

impl JobHandle {
    /// The plane this handle belongs to.
    pub fn plane(&self) -> &Arc<ControlPlane> {
        &self.plane
    }

    /// The job's slot id within the plane.
    pub fn id(&self) -> usize {
        self.id
    }
}

impl JobController for JobHandle {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        let p = self.indicator.progress(&status.stage_fraction);
        let raw = self.plane.tick_job(self.id, p, status);
        if status.finished {
            // Release immediately: pacing a finished job's give-back
            // through hysteresis would hold budget nobody can use.
            self.smoothed = Some(1.0);
            return ControlDecision {
                guarantee: 1,
                raw: Some(f64::from(raw)),
                progress: Some(p),
                predicted_completion: None,
            };
        }
        let next = match self.smoothed {
            None => f64::from(raw),
            Some(cur) => cur + PLANE_HYSTERESIS * (f64::from(raw) - cur),
        };
        self.smoothed = Some(next);
        ControlDecision {
            guarantee: (next.ceil() as u32).max(1),
            raw: Some(f64::from(raw)),
            progress: Some(p),
            predicted_completion: None,
        }
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        self.plane.set_deadline(self.id, new_deadline);
        // A new SLO is a fresh sizing problem (same as JockeyController).
        self.smoothed = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpa::{CpaModel, TrainConfig};
    use crate::progress::ProgressIndicator;
    use jockey_cluster::{ClusterConfig, ClusterSim, FixedAllocation, JobSpec};
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use jockey_simrt::time::SimTime;

    /// remaining = work * (1 - progress) / a.
    struct Toy {
        work: f64,
    }

    impl CompletionModel for Toy {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            self.work * (1.0 - progress) / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            100
        }
    }

    fn toy_indicator() -> IndicatorContext {
        let mut b = JobGraphBuilder::new("plane-toy");
        b.stage("only", 10);
        let g = b.build().unwrap();
        let mut pb = jockey_jobgraph::profile::ProfileBuilder::new(&g);
        for _ in 0..10 {
            pb.record_task(jockey_jobgraph::StageId(0), 1.0, 10.0, false);
        }
        let p = pb.finish(100.0, 1.0);
        IndicatorContext::new(ProgressIndicator::VertexFrac, &g, &p, None)
    }

    fn status(minute: u64, frac: f64, guarantee: u32) -> JobStatus {
        JobStatus {
            now: SimTime::from_mins(minute),
            elapsed: SimDuration::from_mins(minute),
            stage_fraction: vec![frac],
            stage_completed: vec![(frac * 10.0) as u32],
            running: guarantee,
            running_guaranteed: guarantee,
            guarantee,
            work_done: frac * 100.0,
            finished: frac >= 1.0,
        }
    }

    #[test]
    fn tight_deadline_wins_the_budget() {
        let plane = ControlPlane::new(20);
        let mut tight = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            1.0,
        );
        let mut loose = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(120)),
            1.0,
        );
        let dt = tight.tick(&status(0, 0.0, 0));
        let dl = loose.tick(&status(0, 0.0, 0));
        assert!(dt.guarantee > dl.guarantee, "tight {dt:?} vs loose {dl:?}");
        // The tight job needs 10 tokens (36000/3600) to be on time.
        assert!(dt.guarantee >= 10, "{dt:?}");
    }

    #[test]
    fn refreshes_are_amortized_across_ticks() {
        let plane = ControlPlane::new(64);
        let n = 16;
        let mut handles: Vec<JobHandle> = (0..n)
            .map(|_| {
                plane.add_job(
                    Arc::new(Toy { work: 36_000.0 }),
                    toy_indicator(),
                    UtilityFunction::deadline(SimDuration::from_mins(60)),
                    1.0,
                )
            })
            .collect();
        // Drive 20 whole control rounds.
        for minute in 0..20 {
            for h in &mut handles {
                h.tick(&status(minute, 0.02 * minute as f64, 4));
            }
        }
        let stats = plane.stats();
        assert_eq!(stats.ticks, 20 * n as u64);
        // Roughly one refresh per round — far fewer than one per tick.
        assert!(stats.refreshes <= 25 && stats.refreshes >= 10, "{stats:?}");
    }

    #[test]
    fn finished_jobs_release_their_share() {
        let plane = ControlPlane::new(8);
        let mut a = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(10)),
            1.0,
        );
        let mut b = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(10)),
            1.0,
        );
        a.tick(&status(0, 0.0, 0));
        b.tick(&status(0, 0.0, 0));
        // Job A finishes; its share collapses and B inherits the budget
        // at the next refresh.
        let d = a.tick(&status(5, 1.0, 4));
        assert_eq!(d.guarantee, 1, "finished job should hold no budget");
        let before = b.tick(&status(5, 0.1, 4)).guarantee;
        let after = b.tick(&status(6, 0.1, before)).guarantee;
        assert!(after >= before, "survivor kept {after} vs {before}");
    }

    #[test]
    fn deadline_change_forces_a_fresh_split() {
        let plane = ControlPlane::new(20);
        let mut a = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(120)),
            1.0,
        );
        let mut b = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(120)),
            1.0,
        );
        let g0 = a.tick(&status(0, 0.0, 0)).guarantee;
        b.tick(&status(0, 0.0, 0));
        // Halve A's deadline: its share must grow at the next ticks.
        a.deadline_changed(SimDuration::from_mins(30));
        let mut g = g0;
        for minute in 1..=6 {
            g = a.tick(&status(minute, 0.01 * minute as f64, g)).guarantee;
        }
        assert!(g > g0, "tightened job stayed at {g} (was {g0})");
    }

    #[test]
    fn snapshot_is_recovered_after_a_panicking_reader() {
        // Poison one slot lock by panicking while holding it; the
        // plane must keep serving every job.
        let plane = ControlPlane::new(8);
        let mut a = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            1.0,
        );
        a.tick(&status(0, 0.0, 0));
        {
            let plane = plane.clone();
            let _ = std::thread::spawn(move || {
                let slots = plane.slots.read().unwrap();
                let _guard = slots[0].state.lock().unwrap();
                panic!("poison the slot");
            })
            .join();
        }
        let d = a.tick(&status(1, 0.05, 4));
        assert!(d.guarantee >= 1, "plane stopped serving after poison");
    }

    #[test]
    fn plane_managed_jobs_share_a_cluster_budget() {
        // End-to-end: two trained jobs run concurrently in ClusterSim
        // under one plane, as in the SharedArbiter test.
        let trained_job = |seed: u64| {
            let mut b = JobGraphBuilder::new(format!("plane-{seed}"));
            let m = b.stage("map", 24);
            let r = b.stage("reduce", 2);
            b.edge(m, r, EdgeKind::AllToAll);
            let graph = Arc::new(b.build().unwrap());
            let spec = JobSpec::uniform(graph.clone(), Constant(20.0), Constant(0.5), 0.0);
            let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), seed);
            sim.add_job(spec, Box::new(FixedAllocation(6)));
            (graph.clone(), sim.run_single().profile)
        };
        let (g1, p1) = trained_job(1);
        let (g2, p2) = trained_job(2);
        let ctx1 = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &g1, &p1, None);
        let ctx2 = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &g2, &p2, None);
        let cfg = TrainConfig::fast(vec![1, 2, 4, 8, 12]);
        let m1 = Arc::new(CpaModel::train(&g1, &p1, &ctx1, &cfg, 3));
        let m2 = Arc::new(CpaModel::train(&g2, &p2, &ctx2, &cfg, 4));
        let d1 = SimDuration::from_secs_f64(m1.fresh_latency(12) * 1.6);
        let d2 = SimDuration::from_secs_f64(m2.fresh_latency(12) * 5.0);

        let plane = ControlPlane::new(12);
        let c1 = plane.add_job(
            m1.clone() as Arc<dyn CompletionModel>,
            ctx1,
            UtilityFunction::deadline(d1),
            1.2,
        );
        let c2 = plane.add_job(
            m2.clone() as Arc<dyn CompletionModel>,
            ctx2,
            UtilityFunction::deadline(d2),
            1.2,
        );
        let mut cluster = ClusterConfig::dedicated(12);
        cluster.max_guarantee = 12;
        cluster.control_period = SimDuration::from_secs(15);
        let mut sim = ClusterSim::new(cluster, 9);
        let i1 = sim.add_job(JobSpec::from_profile(g1.clone(), &p1), Box::new(c1));
        let i2 = sim.add_job(JobSpec::from_profile(g2.clone(), &p2), Box::new(c2));
        let results = sim.run();
        let l1 = results[i1].duration().expect("job 1 finished");
        let l2 = results[i2].duration().expect("job 2 finished");
        assert!(l1 <= d1, "tight job missed: {l1:?} vs {d1:?}");
        assert!(l2 <= d2, "loose job missed: {l2:?} vs {d2:?}");
        // Combined medians stay within the plane's budget.
        assert!(
            results[i1].trace.median_guarantee() + results[i2].trace.median_guarantee()
                <= 12.0 + 1e-9
        );
    }
}
