//! A multi-job control plane: N concurrent SLO jobs against one shared
//! token budget, without a global lock.
//!
//! The live [`SharedArbiter`](crate::arbiter::SharedArbiter) keeps all
//! job state behind one `Mutex<Vec<Slot>>` and re-runs the greedy
//! marginal-utility split *inside that lock on every tick* — at N jobs
//! that is O(N · budget) model evaluations serialized N times per
//! control period. [`ControlPlane`] restructures the same decision
//! into a scalable runtime:
//!
//! - **Sharded per-job slots.** Each job's state snapshot lives behind
//!   its own small `Mutex`; a tick touches only its own slot, so jobs
//!   never contend with each other on the hot path.
//! - **Atomic budget snapshot.** The per-job allocation vector is an
//!   immutable [`Arc`] swapped behind an `RwLock`; readers clone the
//!   `Arc` (no waiting on the arbitration computation).
//! - **Batched tick scheduling.** The expensive greedy split runs once
//!   per *refresh epoch* (about once per control period across the
//!   whole fleet, i.e. every ~N ticks) instead of once per tick. A
//!   single ticking job wins a `try_lock` election, gathers the slot
//!   snapshots, computes the split off every job lock, and publishes a
//!   new snapshot; everyone else reads the current snapshot and moves
//!   on.
//!
//! Each job still observes the same cadence as under the per-tick
//! arbiter: its share is recomputed from a fleet-wide view about once
//! per control period. [`JobHandle`] implements `JobController` (with
//! the same hysteresis smoothing as the arbitrated controller), so
//! plane-managed jobs drop into `ClusterSim` or a real scheduler
//! unchanged.
//!
//! # Service lifecycle
//!
//! The plane is built to run *indefinitely* under churn:
//!
//! - **Slot recycling.** A job that finishes (or whose handle is
//!   dropped) releases its slot; released ids go through a free list
//!   and are reissued to later admissions, so a plane that has served
//!   100k recurring jobs costs the same per refresh as one serving its
//!   current live fleet. The refresh epoch counts *active* jobs, not
//!   the slot table's high-water mark.
//! - **Deadline-aware admission.** [`ControlPlane::try_add_job`] sizes
//!   a reservation from the job's completion model
//!   ([`CompletionModel::size_for_deadline`]) against a live
//!   [`AdmissionController`] ledger and rejects jobs whose SLO cannot
//!   fit the configured budget, instead of letting the arbitration's
//!   1-token floor silently over-commit it. Until the next periodic
//!   refresh folds a new SLO job into the fleet split, its ticks serve
//!   the *reservation* as the default share — safe (reservations sum
//!   within the budget) and refresh-free, so sustained admission churn
//!   cannot degenerate into per-tick re-arbitration.
//!   [`ControlPlane::add_job`] remains the unconditional path; jobs
//!   admitted that way bypass the ledger and request an opportunistic
//!   refresh (they have no reservation to fall back on).
//! - **Strict deadline-change visibility.** Deadline changes bump a
//!   *strict* generation counter after updating the slot; a tick that
//!   observes an unapplied strict generation refuses to serve the
//!   current snapshot and instead waits out (or performs) a refresh
//!   that includes the change. This closes the lost-force-refresh race
//!   where an in-flight refresher's counter reset could swallow a
//!   concurrent deadline change for a full epoch.
//! - **Serial-guarded snapshots.** Snapshot entries carry the slot
//!   occupant's serial; a recycled slot id never inherits the previous
//!   occupant's allocation from a stale snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use jockey_cluster::{ControlDecision, JobController, JobStatus};
use jockey_simrt::time::SimDuration;

use crate::admission::{AdmissionController, AdmissionError};
use crate::arbiter::{arbitrate, ArbiterJob};
use crate::online::ModelLifecycleStats;
use crate::predict::CompletionModel;
use crate::progress::IndicatorContext;
use crate::utility::UtilityFunction;

/// One job's latest state snapshot, sharded behind its own lock.
struct SlotState {
    progress: f64,
    stage_fraction: Vec<f64>,
    elapsed_secs: f64,
    finished: bool,
    utility: UtilityFunction,
}

struct JobSlot {
    model: Arc<dyn CompletionModel>,
    slack: f64,
    /// Unique occupant serial (never reused): distinguishes this job
    /// from earlier occupants of the same recycled slot id.
    serial: u64,
    /// Default share served before the first refresh that includes this
    /// job: the ledger reservation for SLO jobs, 1 otherwise.
    reserved: u32,
    state: Mutex<SlotState>,
}

impl JobSlot {
    /// Per-slot poison recovery: a snapshot is overwritten wholesale on
    /// every tick, so a panicking holder cannot leave it half-updated.
    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// An immutable per-epoch allocation snapshot, swapped atomically.
struct Snapshot {
    /// Guaranteed tokens per slot id.
    alloc: Vec<u32>,
    /// The occupant serial each entry was computed for (0 = vacant).
    /// A job admitted after this snapshot was gathered — including one
    /// reusing a recycled slot id — misses here and falls back to its
    /// reservation until the next refresh.
    serial: Vec<u64>,
}

impl Snapshot {
    fn share_for(&self, id: usize, serial: u64) -> Option<u32> {
        if self.serial.get(id).copied() == Some(serial) {
            Some(self.alloc[id])
        } else {
            None
        }
    }
}

/// Counters describing how much arbitration work the plane performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Total job ticks served.
    pub ticks: u64,
    /// Budget-split recomputations (refresh epochs).
    pub refreshes: u64,
    /// Refreshes in which the active fleet outnumbered the budget, so
    /// the 1-token-per-job floor handed out more tokens than the plane
    /// owns. Zero whenever every job enters through
    /// [`ControlPlane::try_add_job`].
    pub over_committed_rounds: u64,
    /// Model generations published by online model stores registered
    /// via [`ControlPlane::register_model_stats`] — one per absorbed
    /// completion or drift retrain.
    pub model_generations_swapped: u64,
    /// Drift-detector firings across registered model stores.
    pub drift_detections: u64,
    /// Cold-start prior-library hits across registered stores.
    pub prior_hits: u64,
    /// Cold-start prior-library misses across registered stores.
    pub prior_misses: u64,
    /// Jobs admitted through the 2D speculative path
    /// ([`ControlPlane::try_add_job_speculative`]) with a non-zero
    /// clone budget — i.e. admissions where speculation actually won
    /// the (allocation, level) search.
    pub speculative_admissions: u64,
    /// Cumulative clone-budget tokens priced into reservations by
    /// speculative admissions.
    pub clone_tokens_reserved: u64,
    /// Clone attempts launched by jobs reporting through
    /// [`ControlPlane::record_speculation`].
    pub clone_tasks_launched: u64,
    /// Straggler races won by a clone, reported through
    /// [`ControlPlane::record_speculation`].
    pub clone_wins: u64,
}

/// The sharded multi-job control runtime.
pub struct ControlPlane {
    budget: u32,
    /// Slot table: `None` entries are released slots awaiting reuse.
    /// The outer lock is held only to push/recycle or to iterate shared
    /// references — never while evaluating models.
    slots: RwLock<Vec<Option<Arc<JobSlot>>>>,
    /// Released slot ids, reissued to later admissions.
    free: Mutex<Vec<usize>>,
    /// Admitted-and-unreleased job count: the refresh epoch length.
    active: AtomicU64,
    /// SLO reservation ledger backing [`ControlPlane::try_add_job`].
    ledger: Mutex<AdmissionController>,
    /// The published allocation snapshot.
    snapshot: RwLock<Arc<Snapshot>>,
    /// Refresh election: the ticking job that wins this `try_lock`
    /// recomputes the split; losers use the current snapshot.
    refresh_gate: Mutex<()>,
    /// Ticks since the last completed refresh.
    ticks_since_refresh: AtomicU64,
    /// Bumped by every deadline change, *after* the slot update. A tick
    /// observing `applied_strict < strict_gen` refuses to serve the
    /// published snapshot (it may predate the change) and blocks on the
    /// gate until a post-change refresh publishes.
    strict_gen: AtomicU64,
    /// The `strict_gen` the last refresher loaded *before* gathering.
    applied_strict: AtomicU64,
    /// Bumped by unconditional [`ControlPlane::add_job`] admissions,
    /// which have no reservation to fall back on. The next tick
    /// opportunistically refreshes (try-lock, never blocking) even if
    /// the epoch has not elapsed. SLO admissions and releases do *not*
    /// bump this: under sustained churn they ride the periodic epoch
    /// refresh, keeping the arbitration cadence flat.
    forced_gen: AtomicU64,
    /// The `forced_gen` the last refresher loaded *before* gathering.
    applied_forced: AtomicU64,
    /// Occupant serial source; starts at 1 (0 marks vacancy).
    next_serial: AtomicU64,
    ticks: AtomicU64,
    refreshes: AtomicU64,
    over_committed_rounds: AtomicU64,
    speculative_admissions: AtomicU64,
    clone_tokens_reserved: AtomicU64,
    clone_tasks_launched: AtomicU64,
    clone_wins: AtomicU64,
    /// Lifecycle counters of the online model stores serving this
    /// plane's jobs, registered via
    /// [`ControlPlane::register_model_stats`] and summed into
    /// [`ControlPlane::stats`].
    model_stats: Mutex<Vec<Arc<ModelLifecycleStats>>>,
}

impl ControlPlane {
    /// Creates a plane managing `budget` guaranteed tokens.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(budget: u32) -> Arc<Self> {
        assert!(budget > 0);
        Arc::new(ControlPlane {
            budget,
            slots: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            active: AtomicU64::new(0),
            ledger: Mutex::new(AdmissionController::new(budget)),
            snapshot: RwLock::new(Arc::new(Snapshot {
                alloc: Vec::new(),
                serial: Vec::new(),
            })),
            refresh_gate: Mutex::new(()),
            ticks_since_refresh: AtomicU64::new(0),
            strict_gen: AtomicU64::new(0),
            applied_strict: AtomicU64::new(0),
            forced_gen: AtomicU64::new(0),
            applied_forced: AtomicU64::new(0),
            next_serial: AtomicU64::new(1),
            ticks: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            over_committed_rounds: AtomicU64::new(0),
            speculative_admissions: AtomicU64::new(0),
            clone_tokens_reserved: AtomicU64::new(0),
            clone_tasks_launched: AtomicU64::new(0),
            clone_wins: AtomicU64::new(0),
            model_stats: Mutex::new(Vec::new()),
        })
    }

    /// Admits a job unconditionally, returning its [`JobHandle`]
    /// controller. `slack` is the prediction multiplier applied inside
    /// the arbitration.
    ///
    /// No SLO reservation is made: enough unconditional admissions can
    /// push the active fleet past the budget, at which point refreshes
    /// fall back to the 1-token floor and count as over-committed in
    /// [`ControlPlane::stats`]. Use [`ControlPlane::try_add_job`] for
    /// the guarded path.
    pub fn add_job(
        self: &Arc<Self>,
        model: Arc<dyn CompletionModel>,
        indicator: IndicatorContext,
        utility: UtilityFunction,
        slack: f64,
    ) -> JobHandle {
        let stage_count = indicator.stage_count();
        let slot = self.new_slot(model, slack, stage_count, utility, 1);
        let handle = self.admit_slot(slot, indicator, None);
        // No reservation to serve before the first fleet refresh that
        // includes this job: request an opportunistic refresh instead.
        self.forced_gen.fetch_add(1, Ordering::Release);
        handle
    }

    /// Admits a job only if its SLO fits: sizes the minimum reservation
    /// meeting `deadline` from the model's fresh predictions, reserves
    /// it in the plane's ledger, and registers the job. The reservation
    /// is freed when the job finishes or its handle is dropped.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Infeasible`] when no allocation meets the
    /// deadline, [`AdmissionError::InsufficientCapacity`] when the
    /// unreserved budget cannot hold the reservation, and
    /// [`AdmissionError::DuplicateName`] while a live job already holds
    /// a reservation under `name`.
    pub fn try_add_job(
        self: &Arc<Self>,
        name: &str,
        model: Arc<dyn CompletionModel>,
        indicator: IndicatorContext,
        deadline: SimDuration,
        slack: f64,
    ) -> Result<JobHandle, AdmissionError> {
        let stage_count = indicator.stage_count();
        let fresh = vec![0.0; stage_count];
        let required = self
            .ledger
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .try_admit(name, model.as_ref(), &fresh, deadline, slack)?;
        let slot = self.new_slot(
            model,
            slack,
            stage_count,
            UtilityFunction::deadline(deadline),
            required,
        );
        Ok(self.admit_slot(slot, indicator, Some(name.to_string())))
    }

    /// Admits an SLO job through the 2D (allocation, speculation)
    /// search: sizes each level's minimum deadline-meeting allocation
    /// from its own `C(p, a, s)` surface, picks the level with the
    /// smallest *total* token cost `a + clone_budget(s)` (ties go to
    /// the lower level), and reserves the full total in the plane's
    /// ledger — a clone token held for straggler races is priced
    /// exactly like a guaranteed token. The job's ticks are served the
    /// guarantee part `a`; the clone budget stays idle headroom the
    /// cluster's clone-on-slow watcher can draw on.
    ///
    /// The chosen level is fixed for the job's lifetime (speculation is
    /// a cluster-level engine configuration, not a per-tick actuator);
    /// the per-tick allocation still floats with the fleet split, over
    /// the chosen level's surface.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Infeasible`] when no level has a
    /// deadline-meeting allocation, and the same capacity/duplicate
    /// errors as [`ControlPlane::try_add_job`] — capacity is judged
    /// against the chosen level's *total* cost.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn try_add_job_speculative(
        self: &Arc<Self>,
        name: &str,
        levels: &[crate::alloc::SpeculationLevel],
        indicator: IndicatorContext,
        deadline: SimDuration,
        slack: f64,
    ) -> Result<(JobHandle, crate::alloc::SpeculativeDecision), AdmissionError> {
        assert!(!levels.is_empty(), "need at least one speculation level");
        let stage_count = indicator.stage_count();
        let fresh = vec![0.0; stage_count];
        let mut best: Option<(crate::alloc::SpeculativeDecision, u32)> = None;
        for (s, level) in levels.iter().enumerate() {
            let Some(a) = level.model.size_for_deadline(&fresh, deadline, slack) else {
                continue;
            };
            let total = a + level.clone_budget;
            // Ascending level order: a tie on total cost keeps the
            // earlier (less speculative) level.
            if best.is_none_or(|(d, _)| total < d.total_tokens) {
                best = Some((
                    crate::alloc::SpeculativeDecision {
                        allocation: a,
                        level: s,
                        total_tokens: total,
                    },
                    level.clone_budget,
                ));
            }
        }
        let Some((decision, clone_budget)) = best else {
            return Err(AdmissionError::Infeasible);
        };
        self.ledger
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .try_reserve(name, decision.total_tokens)?;
        if clone_budget > 0 {
            self.speculative_admissions.fetch_add(1, Ordering::Relaxed);
            self.clone_tokens_reserved
                .fetch_add(u64::from(clone_budget), Ordering::Relaxed);
        }
        let slot = self.new_slot(
            levels[decision.level].model.clone(),
            slack,
            stage_count,
            UtilityFunction::deadline(deadline),
            decision.allocation,
        );
        Ok((
            self.admit_slot(slot, indicator, Some(name.to_string())),
            decision,
        ))
    }

    /// Folds one finished job's speculation counters (clone attempts
    /// launched, races won) into the plane's stats. The cluster engine
    /// owns these counts — callers report them from the run's
    /// `JobResult` when it completes.
    pub fn record_speculation(&self, clones_launched: u64, clone_wins: u64) {
        self.clone_tasks_launched
            .fetch_add(clones_launched, Ordering::Relaxed);
        self.clone_wins.fetch_add(clone_wins, Ordering::Relaxed);
    }

    fn new_slot(
        &self,
        model: Arc<dyn CompletionModel>,
        slack: f64,
        stage_count: usize,
        utility: UtilityFunction,
        reserved: u32,
    ) -> Arc<JobSlot> {
        Arc::new(JobSlot {
            model,
            slack,
            serial: self.next_serial.fetch_add(1, Ordering::Relaxed),
            reserved,
            state: Mutex::new(SlotState {
                progress: 0.0,
                stage_fraction: vec![0.0; stage_count],
                elapsed_secs: 0.0,
                finished: false,
                utility,
            }),
        })
    }

    /// Installs a slot, recycling a released id when one is free. The
    /// published snapshot cannot cover the newcomer (its serial is
    /// fresh), so its ticks serve the slot's reservation until the next
    /// refresh folds it in.
    fn admit_slot(
        self: &Arc<Self>,
        slot: Arc<JobSlot>,
        indicator: IndicatorContext,
        name: Option<String>,
    ) -> JobHandle {
        let id = {
            let mut slots = self.slots.write().unwrap_or_else(PoisonError::into_inner);
            let recycled = self
                .free
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            match recycled {
                Some(id) => {
                    slots[id] = Some(slot);
                    id
                }
                None => {
                    slots.push(Some(slot));
                    slots.len() - 1
                }
            }
        };
        self.active.fetch_add(1, Ordering::Relaxed);
        JobHandle {
            plane: self.clone(),
            id,
            indicator,
            smoothed: None,
            name,
            released: false,
        }
    }

    /// Returns a released job's slot to the free list and frees its
    /// ledger reservation, if it held one.
    fn release_job(&self, id: usize, name: Option<&str>) {
        {
            let mut slots = self.slots.write().unwrap_or_else(PoisonError::into_inner);
            if slots.get_mut(id).and_then(Option::take).is_some() {
                self.free
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(id);
                self.active.fetch_sub(1, Ordering::Relaxed);
            }
        }
        if let Some(name) = name {
            self.ledger
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .release(name);
        }
        // No generation bump: survivors converge on the freed tokens at
        // the next periodic refresh (bounded by one control period),
        // and the serial guard keeps the freed id's stale snapshot
        // entry from leaking to its next occupant.
    }

    /// Registers an online model store's lifecycle counters so
    /// [`ControlPlane::stats`] reports model generations, drift
    /// detections and prior-library traffic alongside the plane's own
    /// arbitration work. Stores serving several jobs register once.
    pub fn register_model_stats(&self, stats: Arc<ModelLifecycleStats>) {
        self.model_stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(stats);
    }

    /// The plane's work counters, including the summed lifecycle
    /// counters of every registered model store.
    pub fn stats(&self) -> PlaneStats {
        let mut stats = PlaneStats {
            ticks: self.ticks.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            over_committed_rounds: self.over_committed_rounds.load(Ordering::Relaxed),
            speculative_admissions: self.speculative_admissions.load(Ordering::Relaxed),
            clone_tokens_reserved: self.clone_tokens_reserved.load(Ordering::Relaxed),
            clone_tasks_launched: self.clone_tasks_launched.load(Ordering::Relaxed),
            clone_wins: self.clone_wins.load(Ordering::Relaxed),
            ..PlaneStats::default()
        };
        for m in self
            .model_stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            stats.model_generations_swapped += m.generations_swapped.load(Ordering::Relaxed);
            stats.drift_detections += m.drift_detections.load(Ordering::Relaxed);
            stats.prior_hits += m.prior_hits.load(Ordering::Relaxed);
            stats.prior_misses += m.prior_misses.load(Ordering::Relaxed);
        }
        stats
    }

    /// Guaranteed tokens under management.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Live (admitted, unreleased) jobs.
    pub fn active_jobs(&self) -> usize {
        self.active.load(Ordering::Relaxed) as usize
    }

    /// Slot-table length including free entries — the high-water mark
    /// of *concurrent* jobs, bounded under churn by slot recycling.
    pub fn slot_count(&self) -> usize {
        self.slots
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Tokens reserved by SLO jobs admitted via
    /// [`ControlPlane::try_add_job`].
    pub fn reserved(&self) -> u32 {
        self.ledger
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .reserved()
    }

    /// Tokens still unreserved for new SLO admissions.
    pub fn available(&self) -> u32 {
        self.ledger
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .available()
    }

    /// Serves one job tick: updates the job's own slot, opportunistically
    /// refreshes the fleet snapshot when an epoch has elapsed, and
    /// returns the job's share from the published snapshot.
    fn tick_job(&self, id: usize, progress: f64, status: &JobStatus) -> u32 {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let slots = self.slots.read().unwrap_or_else(PoisonError::into_inner);
        let Some(slot) = slots.get(id).and_then(Option::as_ref) else {
            return 1; // Released slot: nothing to arbitrate.
        };
        {
            let mut s = slot.lock();
            s.progress = progress;
            s.stage_fraction.clear();
            s.stage_fraction.extend_from_slice(&status.stage_fraction);
            s.elapsed_secs = status.elapsed.as_secs_f64();
            s.finished = status.finished;
        }

        // One refresh per epoch: an epoch is one tick per *active* job,
        // so each job sees a fleet-fresh split about once per control
        // period — the same cadence the per-tick arbiter provides, at
        // 1/N of the arbitration cost.
        let epoch = self.active.load(Ordering::Relaxed).max(1);
        let due = self.ticks_since_refresh.fetch_add(1, Ordering::AcqRel) >= epoch - 1;
        // `goal` is the newest deadline change this tick has observed;
        // a snapshot older than it must never be served.
        let goal = self.strict_gen.load(Ordering::Acquire);
        if self.applied_strict.load(Ordering::Acquire) < goal {
            // Unapplied deadline change: wait out (or perform) a
            // refresh at least as fresh as `goal`. The blocking lock —
            // rather than the opportunistic `try_lock` — is what closes
            // the lost-force-refresh race: an in-flight refresher may
            // have gathered pre-change state, but it cannot advance
            // `applied_strict` past `goal`, so we refresh again behind
            // it.
            while self.applied_strict.load(Ordering::Acquire) < goal {
                let _gate = self
                    .refresh_gate
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if self.applied_strict.load(Ordering::Acquire) < goal {
                    self.refresh_locked(&slots);
                }
            }
        } else if due
            || self.applied_forced.load(Ordering::Acquire) < self.forced_gen.load(Ordering::Acquire)
        {
            if let Ok(_gate) = self.refresh_gate.try_lock() {
                self.refresh_locked(&slots);
            }
        }

        if status.finished {
            return 1;
        }
        let snapshot = {
            let guard = self.snapshot.read().unwrap_or_else(PoisonError::into_inner);
            guard.clone()
        };
        snapshot
            .share_for(id, slot.serial)
            .unwrap_or(slot.reserved)
            .max(1)
    }

    /// Runs one refresh while the caller holds the refresh gate,
    /// recording the generations observed *before* gathering so a
    /// change landing mid-refresh leaves `applied_* < *_gen` and forces
    /// a follow-up.
    fn refresh_locked(&self, slots: &[Option<Arc<JobSlot>>]) {
        let strict = self.strict_gen.load(Ordering::Acquire);
        let forced = self.forced_gen.load(Ordering::Acquire);
        self.ticks_since_refresh.store(0, Ordering::Release);
        self.refresh(slots);
        self.applied_strict.store(strict, Ordering::Release);
        self.applied_forced.store(forced, Ordering::Release);
    }

    /// Recomputes the greedy split from the current slot snapshots and
    /// publishes it. Runs while holding only the refresh gate: slot
    /// locks are taken one at a time to copy state out, and the
    /// expensive marginal-utility scan touches no lock at all.
    fn refresh(&self, slots: &[Option<Arc<JobSlot>>]) {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        let mut active = Vec::with_capacity(slots.len());
        let mut jobs = Vec::with_capacity(slots.len());
        let mut serial = vec![0_u64; slots.len()];
        for (i, slot) in slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            serial[i] = slot.serial;
            let s = slot.lock();
            if s.finished {
                continue;
            }
            active.push(i);
            jobs.push(ArbiterJob {
                model: slot.model.clone(),
                utility: s.utility.clone(),
                progress: s.progress,
                stage_fraction: s.stage_fraction.clone(),
                elapsed_secs: s.elapsed_secs,
                slack: slot.slack,
            });
        }
        let mut alloc = vec![1_u32; slots.len()];
        if !jobs.is_empty() {
            // `arbitrate` needs at least one token per job; when the
            // active fleet outgrows the budget (possible only through
            // unconditional `add_job`), the floor over-commits — count
            // it instead of absorbing it silently.
            if jobs.len() as u32 > self.budget {
                self.over_committed_rounds.fetch_add(1, Ordering::Relaxed);
            }
            let budget = self.budget.max(jobs.len() as u32);
            for (pos, share) in arbitrate(&jobs, budget).into_iter().enumerate() {
                alloc[active[pos]] = share;
            }
        }
        let mut guard = self
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *guard = Arc::new(Snapshot { alloc, serial });
    }

    fn set_deadline(&self, id: usize, new_deadline: SimDuration) {
        {
            let slots = self.slots.read().unwrap_or_else(PoisonError::into_inner);
            let Some(slot) = slots.get(id).and_then(Option::as_ref) else {
                return; // Released slot: nothing to retarget.
            };
            let mut s = slot.lock();
            s.utility = s.utility.with_deadline(new_deadline);
        }
        // Publish the change *after* the slot update: any tick that
        // observes the new generation is guaranteed a post-change
        // gather (the slot mutex orders the two writes).
        self.strict_gen.fetch_add(1, Ordering::Release);
    }
}

/// Hysteresis coefficient applied to the plane's raw shares (same as
/// the per-tick arbitrated controller).
const PLANE_HYSTERESIS: f64 = 0.3;

/// A per-job `JobController` served by a [`ControlPlane`].
///
/// The handle owns the job's slot: when the job finishes (first tick
/// with `finished`) or the handle is dropped, the slot is released back
/// to the plane's free list and any SLO reservation is freed.
pub struct JobHandle {
    plane: Arc<ControlPlane>,
    id: usize,
    indicator: IndicatorContext,
    smoothed: Option<f64>,
    /// Ledger reservation name, for jobs admitted via
    /// [`ControlPlane::try_add_job`].
    name: Option<String>,
    released: bool,
}

impl JobHandle {
    /// The plane this handle belongs to.
    pub fn plane(&self) -> &Arc<ControlPlane> {
        &self.plane
    }

    /// The job's slot id within the plane. Slot ids are recycled: a
    /// released id may be reissued to a later admission.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the job's slot has been released (on finish or by
    /// [`JobHandle::release`]).
    pub fn is_released(&self) -> bool {
        self.released
    }

    /// Releases the job's slot and reservation early (cancellation).
    /// Subsequent ticks return the 1-token floor without touching the
    /// plane. Idempotent.
    pub fn release(&mut self) {
        if !self.released {
            self.released = true;
            self.plane.release_job(self.id, self.name.as_deref());
        }
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        self.release();
    }
}

impl JobController for JobHandle {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        if self.released {
            return ControlDecision {
                guarantee: 1,
                raw: Some(1.0),
                progress: None,
                predicted_completion: None,
            };
        }
        let p = self.indicator.progress(&status.stage_fraction);
        let raw = self.plane.tick_job(self.id, p, status);
        if status.finished {
            // Release immediately: pacing a finished job's give-back
            // through hysteresis would hold budget nobody can use, and
            // a finished slot scanned forever would leak refresh work.
            self.smoothed = Some(1.0);
            self.release();
            return ControlDecision {
                guarantee: 1,
                raw: Some(f64::from(raw)),
                progress: Some(p),
                predicted_completion: None,
            };
        }
        let next = match self.smoothed {
            None => f64::from(raw),
            Some(cur) => cur + PLANE_HYSTERESIS * (f64::from(raw) - cur),
        };
        self.smoothed = Some(next);
        ControlDecision {
            guarantee: (next.ceil() as u32).max(1),
            raw: Some(f64::from(raw)),
            progress: Some(p),
            predicted_completion: None,
        }
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        if self.released {
            return;
        }
        self.plane.set_deadline(self.id, new_deadline);
        // A new SLO is a fresh sizing problem (same as JockeyController).
        self.smoothed = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpa::{CpaModel, TrainConfig};
    use crate::progress::ProgressIndicator;
    use jockey_cluster::{ClusterConfig, ClusterSim, FixedAllocation, JobSpec};
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use jockey_simrt::time::SimTime;

    /// remaining = work * (1 - progress) / a.
    struct Toy {
        work: f64,
    }

    impl CompletionModel for Toy {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            self.work * (1.0 - progress) / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            100
        }
    }

    fn toy_indicator() -> IndicatorContext {
        let mut b = JobGraphBuilder::new("plane-toy");
        b.stage("only", 10);
        let g = b.build().unwrap();
        let mut pb = jockey_jobgraph::profile::ProfileBuilder::new(&g);
        for _ in 0..10 {
            pb.record_task(jockey_jobgraph::StageId(0), 1.0, 10.0, false);
        }
        let p = pb.finish(100.0, 1.0);
        IndicatorContext::new(ProgressIndicator::VertexFrac, &g, &p, None)
    }

    fn status(minute: u64, frac: f64, guarantee: u32) -> JobStatus {
        JobStatus {
            now: SimTime::from_mins(minute),
            elapsed: SimDuration::from_mins(minute),
            stage_fraction: vec![frac],
            stage_completed: vec![(frac * 10.0) as u32],
            running: guarantee,
            running_guaranteed: guarantee,
            guarantee,
            work_done: frac * 100.0,
            finished: frac >= 1.0,
        }
    }

    #[test]
    fn tight_deadline_wins_the_budget() {
        let plane = ControlPlane::new(20);
        let mut tight = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            1.0,
        );
        let mut loose = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(120)),
            1.0,
        );
        let dt = tight.tick(&status(0, 0.0, 0));
        let dl = loose.tick(&status(0, 0.0, 0));
        assert!(dt.guarantee > dl.guarantee, "tight {dt:?} vs loose {dl:?}");
        // The tight job needs 10 tokens (36000/3600) to be on time.
        assert!(dt.guarantee >= 10, "{dt:?}");
    }

    #[test]
    fn refreshes_are_amortized_across_ticks() {
        let plane = ControlPlane::new(64);
        let n = 16;
        let mut handles: Vec<JobHandle> = (0..n)
            .map(|_| {
                plane.add_job(
                    Arc::new(Toy { work: 36_000.0 }),
                    toy_indicator(),
                    UtilityFunction::deadline(SimDuration::from_mins(60)),
                    1.0,
                )
            })
            .collect();
        // Drive 20 whole control rounds.
        for minute in 0..20 {
            for h in &mut handles {
                h.tick(&status(minute, 0.02 * minute as f64, 4));
            }
        }
        let stats = plane.stats();
        assert_eq!(stats.ticks, 20 * n as u64);
        // Roughly one refresh per round — far fewer than one per tick.
        assert!(stats.refreshes <= 25 && stats.refreshes >= 10, "{stats:?}");
    }

    #[test]
    fn finished_jobs_release_their_share() {
        let plane = ControlPlane::new(8);
        let mut a = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(10)),
            1.0,
        );
        let mut b = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(10)),
            1.0,
        );
        a.tick(&status(0, 0.0, 0));
        b.tick(&status(0, 0.0, 0));
        // Job A finishes; its share collapses and B inherits the budget
        // at the next refresh.
        let d = a.tick(&status(5, 1.0, 4));
        assert_eq!(d.guarantee, 1, "finished job should hold no budget");
        let before = b.tick(&status(5, 0.1, 4)).guarantee;
        let after = b.tick(&status(6, 0.1, before)).guarantee;
        assert!(after >= before, "survivor kept {after} vs {before}");
    }

    #[test]
    fn deadline_change_forces_a_fresh_split() {
        let plane = ControlPlane::new(20);
        let mut a = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(120)),
            1.0,
        );
        let mut b = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(120)),
            1.0,
        );
        let g0 = a.tick(&status(0, 0.0, 0)).guarantee;
        b.tick(&status(0, 0.0, 0));
        // Halve A's deadline: its share must grow at the next ticks.
        a.deadline_changed(SimDuration::from_mins(30));
        let mut g = g0;
        for minute in 1..=6 {
            g = a.tick(&status(minute, 0.01 * minute as f64, g)).guarantee;
        }
        assert!(g > g0, "tightened job stayed at {g} (was {g0})");
    }

    #[test]
    fn snapshot_is_recovered_after_a_panicking_reader() {
        // Poison one slot lock by panicking while holding it; the
        // plane must keep serving every job.
        let plane = ControlPlane::new(8);
        let mut a = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            1.0,
        );
        a.tick(&status(0, 0.0, 0));
        {
            let plane = plane.clone();
            let _ = std::thread::spawn(move || {
                let slots = plane.slots.read().unwrap();
                let _guard = slots[0].as_ref().unwrap().state.lock().unwrap();
                panic!("poison the slot");
            })
            .join();
        }
        let d = a.tick(&status(1, 0.05, 4));
        assert!(d.guarantee >= 1, "plane stopped serving after poison");
    }

    #[test]
    fn slot_count_stays_bounded_across_churn() {
        // Regression: slots used to grow on admission and never shrink,
        // so every finished job was locked, scanned and counted in the
        // refresh epoch forever. 10k admit→finish cycles must leave the
        // table no larger than the peak concurrency.
        let plane = ControlPlane::new(8);
        let mut anchor = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            1.0,
        );
        for cycle in 0..10_000_u64 {
            let mut h = plane.add_job(
                Arc::new(Toy { work: 3_600.0 }),
                toy_indicator(),
                UtilityFunction::deadline(SimDuration::from_mins(30)),
                1.0,
            );
            h.tick(&status(0, 0.0, 0));
            let d = h.tick(&status(1, 1.0, 2));
            assert_eq!(d.guarantee, 1);
            assert!(h.is_released(), "finished job must release its slot");
            if cycle % 1000 == 0 {
                anchor.tick(&status(cycle, 0.0, 2));
            }
            assert!(
                plane.slot_count() <= 2,
                "cycle {cycle}: slot table grew to {}",
                plane.slot_count()
            );
            assert_eq!(plane.active_jobs(), 1);
        }
        drop(anchor);
        assert_eq!(plane.active_jobs(), 0);
    }

    #[test]
    fn released_ids_are_recycled() {
        let plane = ControlPlane::new(8);
        let _keep = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            1.0,
        );
        let mut a = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            1.0,
        );
        let freed = a.id();
        a.release();
        let b = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            1.0,
        );
        assert_eq!(b.id(), freed, "released id should be reissued");
        assert_eq!(plane.slot_count(), 2);
    }

    #[test]
    fn deadline_change_survives_a_concurrent_refresh_election() {
        // Regression for the lost-force-refresh race: a refresher that
        // was elected *before* a deadline change used to reset the
        // force flag while publishing pre-change state, delaying the
        // resplit by up to a full epoch. Simulate the in-flight
        // election by holding the refresh gate while the deadline
        // changes; the next tick must still observe the new split.
        let plane = ControlPlane::new(20);
        let mut a = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(120)),
            1.0,
        );
        let mut b = plane.add_job(
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(120)),
            1.0,
        );
        let g0 = a.tick(&status(0, 0.0, 0)).guarantee;
        b.tick(&status(0, 0.0, 0));

        let gate = plane.refresh_gate.lock().unwrap();
        a.deadline_changed(SimDuration::from_mins(30));
        // While the gate is held, the change cannot have been applied.
        assert!(
            plane.applied_strict.load(Ordering::Acquire) < plane.strict_gen.load(Ordering::Acquire)
        );
        let ticker = std::thread::spawn(move || {
            // This tick blocks until the stale election clears, then
            // refreshes with post-change state.
            b.tick(&status(1, 0.01, 4)).raw.unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(gate);
        let b_raw = ticker.join().unwrap();
        let a_raw = a.tick(&status(1, 0.01, g0)).raw.unwrap();
        // 36 000 s of work in 30 min needs ~20 tokens: the tightened
        // job takes essentially the whole budget in the very next
        // published snapshot.
        assert!(a_raw >= 15.0, "tightened job got raw {a_raw}");
        assert!(b_raw < a_raw, "loose job got raw {b_raw} vs {a_raw}");
    }

    #[test]
    fn try_add_job_rejects_what_does_not_fit() {
        let plane = ControlPlane::new(10);
        // 36 000 s of work in 60 min ⇒ 10 tokens: fills the ledger.
        let first = plane
            .try_add_job(
                "big",
                Arc::new(Toy { work: 36_000.0 }),
                toy_indicator(),
                SimDuration::from_mins(60),
                1.0,
            )
            .expect("fits exactly");
        assert_eq!(plane.reserved(), 10);
        assert_eq!(plane.available(), 0);
        // A second SLO job cannot fit, even a tiny one.
        match plane.try_add_job(
            "small",
            Arc::new(Toy { work: 3_600.0 }),
            toy_indicator(),
            SimDuration::from_mins(60),
            1.0,
        ) {
            Err(AdmissionError::InsufficientCapacity {
                required,
                available,
            }) => {
                assert_eq!((required, available), (1, 0));
            }
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("expected capacity rejection"),
        }
        // Duplicate names are refused while the job is live.
        assert!(matches!(
            plane.try_add_job(
                "big",
                Arc::new(Toy { work: 3_600.0 }),
                toy_indicator(),
                SimDuration::from_mins(60),
                1.0,
            ),
            Err(AdmissionError::DuplicateName)
        ));
        // An impossible deadline is rejected without reserving.
        assert!(matches!(
            plane.try_add_job(
                "impossible",
                Arc::new(Toy { work: 1.0e9 }),
                toy_indicator(),
                SimDuration::from_mins(1),
                1.0,
            ),
            Err(AdmissionError::Infeasible)
        ));
        drop(first);
        // Dropping the admitted handle frees the reservation.
        assert_eq!(plane.reserved(), 0);
        assert!(plane
            .try_add_job(
                "small",
                Arc::new(Toy { work: 3_600.0 }),
                toy_indicator(),
                SimDuration::from_mins(60),
                1.0,
            )
            .is_ok());
    }

    #[test]
    fn slo_jobs_serve_their_reservation_before_the_first_refresh() {
        // SLO admissions do not force a refresh (under churn that would
        // degenerate into per-tick arbitration); until the periodic
        // refresh folds them in, their ticks serve the ledger
        // reservation — not the 1-token floor, and not a stale snapshot
        // entry left by a previous occupant of a recycled slot id.
        let plane = ControlPlane::new(20);
        let mut big = plane
            .try_add_job(
                "big",
                Arc::new(Toy { work: 36_000.0 }),
                toy_indicator(),
                SimDuration::from_mins(60), // needs 10 tokens
                1.0,
            )
            .unwrap();
        let mut side = plane
            .try_add_job(
                "side",
                Arc::new(Toy { work: 36_000.0 }),
                toy_indicator(),
                SimDuration::from_mins(120), // needs 5 tokens
                1.0,
            )
            .unwrap();
        // Epoch is 2 ticks: the fleet's first tick precedes any refresh
        // and must serve the new job's reservation as the raw share.
        assert_eq!(big.tick(&status(0, 0.0, 0)).raw, Some(10.0));
        // side's first tick lands on the epoch boundary: it refreshes
        // and reads an arbitrated share instead.
        side.tick(&status(0, 0.0, 0));
        // "big" finishes; its recycled slot id goes to a small job whose
        // first tick must see its own 2-token reservation, not the dead
        // job's snapshot entry.
        big.tick(&status(10, 1.0, 10));
        assert!(big.is_released());
        let freed = big.id();
        side.tick(&status(10, 0.3, 5)); // epoch boundary: refreshes
        let mut next = plane
            .try_add_job(
                "next",
                Arc::new(Toy { work: 7_200.0 }),
                toy_indicator(),
                SimDuration::from_mins(60), // needs 2 tokens
                1.0,
            )
            .unwrap();
        assert_eq!(next.id(), freed, "slot id should be recycled");
        assert_eq!(next.tick(&status(11, 0.0, 0)).raw, Some(2.0));
    }

    #[test]
    fn finished_slo_jobs_free_their_reservation() {
        let plane = ControlPlane::new(12);
        let mut h = plane
            .try_add_job(
                "recurring",
                Arc::new(Toy { work: 7_200.0 }),
                toy_indicator(),
                SimDuration::from_mins(60),
                1.0,
            )
            .unwrap();
        assert_eq!(plane.reserved(), 2);
        h.tick(&status(0, 0.0, 0));
        h.tick(&status(30, 1.0, 2));
        assert!(h.is_released());
        assert_eq!(plane.reserved(), 0);
        assert_eq!(plane.active_jobs(), 0);
        // The name is reusable for the next recurrence.
        assert!(plane
            .try_add_job(
                "recurring",
                Arc::new(Toy { work: 7_200.0 }),
                toy_indicator(),
                SimDuration::from_mins(60),
                1.0,
            )
            .is_ok());
    }

    #[test]
    fn over_commit_is_counted_not_silent() {
        // Five unconditional jobs on a 2-token plane: every refresh
        // must hand out 5 ≥ budget tokens via the 1-token floor, and
        // say so in the stats.
        let plane = ControlPlane::new(2);
        let mut handles: Vec<JobHandle> = (0..5)
            .map(|_| {
                plane.add_job(
                    Arc::new(Toy { work: 36_000.0 }),
                    toy_indicator(),
                    UtilityFunction::deadline(SimDuration::from_mins(60)),
                    1.0,
                )
            })
            .collect();
        for minute in 0..4 {
            for h in &mut handles {
                h.tick(&status(minute, 0.01 * minute as f64, 1));
            }
        }
        let stats = plane.stats();
        assert!(stats.over_committed_rounds > 0, "{stats:?}");
        assert_eq!(stats.over_committed_rounds, stats.refreshes, "{stats:?}");
    }

    /// [`Toy`] with a straggler tail the speculative surface removes.
    struct TailToy {
        work: f64,
        tail: f64,
    }

    impl CompletionModel for TailToy {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            self.tail * self.work * (1.0 - progress) / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            100
        }
    }

    fn tail_levels(work: f64, tail: f64, clone_budget: u32) -> Vec<crate::alloc::SpeculationLevel> {
        vec![
            crate::alloc::SpeculationLevel {
                label: "off".into(),
                clone_budget: 0,
                model: Arc::new(TailToy { work, tail }),
            },
            crate::alloc::SpeculationLevel {
                label: "clone@2.0x".into(),
                clone_budget,
                model: Arc::new(TailToy { work, tail: 1.0 }),
            },
        ]
    }

    #[test]
    fn speculative_admission_prices_the_clone_budget() {
        let plane = ControlPlane::new(20);
        // Tail doubles the plain surface: 36 000 s in 60 min needs 20
        // plain tokens but only 10 + 2 with cloning.
        let (h, d) = plane
            .try_add_job_speculative(
                "tailed",
                &tail_levels(36_000.0, 2.0, 2),
                toy_indicator(),
                SimDuration::from_mins(60),
                1.0,
            )
            .expect("fits with speculation");
        assert_eq!(d.level, 1);
        assert_eq!(d.allocation, 10);
        assert_eq!(d.total_tokens, 12);
        // The ledger holds the *total*: guarantee plus clone budget.
        assert_eq!(plane.reserved(), 12);
        let s = plane.stats();
        assert_eq!(s.speculative_admissions, 1);
        assert_eq!(s.clone_tokens_reserved, 2);
        plane.record_speculation(7, 3);
        let s = plane.stats();
        assert_eq!(s.clone_tasks_launched, 7);
        assert_eq!(s.clone_wins, 3);
        drop(h);
        assert_eq!(plane.reserved(), 0, "total reservation freed on drop");
    }

    #[test]
    fn speculative_admission_falls_back_to_level_zero() {
        // No tail: speculation is pure surcharge, level 0 must win and
        // the speculative counters stay untouched.
        let plane = ControlPlane::new(20);
        let (_h, d) = plane
            .try_add_job_speculative(
                "plain",
                &tail_levels(36_000.0, 1.0, 2),
                toy_indicator(),
                SimDuration::from_mins(60),
                1.0,
            )
            .unwrap();
        assert_eq!(d.level, 0);
        assert_eq!(d.total_tokens, d.allocation);
        assert_eq!(plane.reserved(), d.allocation);
        let s = plane.stats();
        assert_eq!(s.speculative_admissions, 0);
        assert_eq!(s.clone_tokens_reserved, 0);
    }

    #[test]
    fn speculative_admission_rejects_on_total_cost() {
        // The guarantee alone (10) fits a 11-token plane, but the
        // total with the clone budget (12) does not: capacity is judged
        // against what speculation actually holds.
        let plane = ControlPlane::new(11);
        match plane.try_add_job_speculative(
            "tailed",
            &tail_levels(36_000.0, 2.0, 2),
            toy_indicator(),
            SimDuration::from_mins(60),
            1.0,
        ) {
            Err(AdmissionError::InsufficientCapacity {
                required,
                available,
            }) => assert_eq!((required, available), (12, 11)),
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("expected capacity rejection"),
        }
        assert_eq!(plane.reserved(), 0);
    }

    #[test]
    fn registered_model_stats_surface_in_plane_stats() {
        let plane = ControlPlane::new(8);
        let a = ModelLifecycleStats::shared();
        let b = ModelLifecycleStats::shared();
        plane.register_model_stats(a.clone());
        plane.register_model_stats(b.clone());
        a.generations_swapped.fetch_add(3, Ordering::Relaxed);
        a.drift_detections.fetch_add(1, Ordering::Relaxed);
        b.generations_swapped.fetch_add(2, Ordering::Relaxed);
        b.prior_hits.fetch_add(4, Ordering::Relaxed);
        b.prior_misses.fetch_add(5, Ordering::Relaxed);
        let s = plane.stats();
        assert_eq!(s.model_generations_swapped, 5);
        assert_eq!(s.drift_detections, 1);
        assert_eq!(s.prior_hits, 4);
        assert_eq!(s.prior_misses, 5);
        // The plane's own counters are untouched by registration.
        assert_eq!(s.ticks, 0);
        assert_eq!(s.refreshes, 0);
    }

    #[test]
    fn plane_managed_jobs_share_a_cluster_budget() {
        // End-to-end: two trained jobs run concurrently in ClusterSim
        // under one plane, as in the SharedArbiter test.
        let trained_job = |seed: u64| {
            let mut b = JobGraphBuilder::new(format!("plane-{seed}"));
            let m = b.stage("map", 24);
            let r = b.stage("reduce", 2);
            b.edge(m, r, EdgeKind::AllToAll);
            let graph = Arc::new(b.build().unwrap());
            let spec = JobSpec::uniform(graph.clone(), Constant(20.0), Constant(0.5), 0.0);
            let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), seed);
            sim.add_job(spec, Box::new(FixedAllocation(6)));
            (graph.clone(), sim.run_single().profile)
        };
        let (g1, p1) = trained_job(1);
        let (g2, p2) = trained_job(2);
        let ctx1 = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &g1, &p1, None);
        let ctx2 = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &g2, &p2, None);
        let cfg = TrainConfig::fast(vec![1, 2, 4, 8, 12]);
        let m1 = Arc::new(CpaModel::train(&g1, &p1, &ctx1, &cfg, 3));
        let m2 = Arc::new(CpaModel::train(&g2, &p2, &ctx2, &cfg, 4));
        let d1 = SimDuration::from_secs_f64(m1.fresh_latency(12) * 1.6);
        let d2 = SimDuration::from_secs_f64(m2.fresh_latency(12) * 5.0);

        let plane = ControlPlane::new(12);
        let c1 = plane.add_job(
            m1.clone() as Arc<dyn CompletionModel>,
            ctx1,
            UtilityFunction::deadline(d1),
            1.2,
        );
        let c2 = plane.add_job(
            m2.clone() as Arc<dyn CompletionModel>,
            ctx2,
            UtilityFunction::deadline(d2),
            1.2,
        );
        let mut cluster = ClusterConfig::dedicated(12);
        cluster.max_guarantee = 12;
        cluster.control_period = SimDuration::from_secs(15);
        let mut sim = ClusterSim::new(cluster, 9);
        let i1 = sim.add_job(JobSpec::from_profile(g1.clone(), &p1), Box::new(c1));
        let i2 = sim.add_job(JobSpec::from_profile(g2.clone(), &p2), Box::new(c2));
        let results = sim.run();
        let l1 = results[i1].duration().expect("job 1 finished");
        let l2 = results[i2].duration().expect("job 2 finished");
        assert!(l1 <= d1, "tight job missed: {l1:?} vs {d1:?}");
        assert!(l2 <= d2, "loose job missed: {l2:?} vs {d2:?}");
        // Combined medians stay within the plane's budget.
        assert!(
            results[i1].trace.median_guarantee() + results[i2].trace.median_guarantee()
                <= 12.0 + 1e-9
        );
    }
}
