//! Online model recalibration (§4.4 / §5.6 future work).
//!
//! "We could quickly update the model by running the simulator at
//! runtime" — the cheap, always-on version implemented here observes
//! how fast the job is *actually* progressing relative to the trained
//! model and rescales the model's predictions by the measured inflation
//! factor λ. Between control ticks, the base model's (median) remaining
//! time at the current allocation should shrink by the elapsed wall
//! time; shrinking slower means the cluster delivers less than the
//! model assumes:
//!
//! ```text
//! advance  = C₅₀(p_prev, a) − C₅₀(p_now, a)     (same a at both ends)
//! λ ← EWMA( Σ wall_dt / Σ advance ), clamped to [1/3, 3]
//! remaining'(p, a) = λ · C(p, a)
//! ```
//!
//! Ratios are accumulated until enough modelled progress has accrued
//! (so barrier tails — which exist in training too — aren't misread as
//! slowdowns), with a long-silence override that catches genuine
//! crawls. A job in an overloaded cluster (λ > 1) gets proportionally
//! pessimistic predictions — and therefore more tokens, sooner — while
//! the untouched base model keeps its structure (barriers, tails,
//! allocation sensitivity).
//!
//! [`RecalibrationLayer`] is a [`ControlLayer`]: it updates λ *before*
//! the inner controller's tick (so the tick already sees the rescaled
//! model) and never touches the decision itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jockey_cluster::JobStatus;

use crate::control::{ControlParams, JockeyController};
use crate::cpa::CpaModel;
use crate::layer::{ControlLayer, Layered};
use crate::predict::CompletionModel;
use crate::progress::IndicatorContext;
use crate::utility::UtilityFunction;

/// A completion model whose predictions are scaled by a shared,
/// atomically updated inflation factor.
pub struct ScaledModel {
    inner: Arc<CpaModel>,
    /// λ, stored as `f64` bits.
    scale_bits: AtomicU64,
}

impl ScaledModel {
    /// Wraps `inner` at λ = 1.
    pub fn new(inner: Arc<CpaModel>) -> Arc<Self> {
        Arc::new(ScaledModel {
            inner,
            scale_bits: AtomicU64::new(1.0_f64.to_bits()),
        })
    }

    /// The current inflation factor.
    pub fn scale(&self) -> f64 {
        f64::from_bits(self.scale_bits.load(Ordering::Relaxed))
    }

    /// Overwrites the inflation factor. External recalibrators (or
    /// tests reproducing one) can drive λ directly; the built-in
    /// [`RecalibrationLayer`] is the usual writer.
    pub fn set_scale(&self, scale: f64) {
        self.scale_bits.store(scale.to_bits(), Ordering::Relaxed);
    }

    /// The wrapped base model.
    pub fn base(&self) -> &CpaModel {
        &self.inner
    }
}

impl CompletionModel for ScaledModel {
    fn remaining_secs(&self, fs: &[f64], progress: f64, allocation: u32) -> f64 {
        self.scale() * self.inner.remaining_secs(fs, progress, allocation)
    }

    fn max_allocation(&self) -> u32 {
        self.inner.max_allocation()
    }
}

/// Online λ recalibration as a stackable [`ControlLayer`].
///
/// The layer owns the slip-estimation state and a handle onto the
/// [`ScaledModel`] the inner controller predicts from; each periodic
/// tick it refreshes λ before the controller runs. Admission-time
/// initial decisions skip the update (there is no previous tick to
/// compare against).
pub struct RecalibrationLayer {
    scaled: Arc<ScaledModel>,
    indicator: IndicatorContext,
    /// EWMA coefficient for λ updates.
    ema: f64,
    /// Progress and elapsed time at the previous tick.
    last: Option<(f64, f64)>,
    /// Accumulated wall seconds since the last λ update.
    pending_dt: f64,
    /// Accumulated modelled-advance seconds since the last λ update.
    pending_advance: f64,
}

impl RecalibrationLayer {
    /// A layer recalibrating `scaled` using `indicator` for progress.
    /// The inner controller must predict from the *same* [`ScaledModel`]
    /// for the rescaling to take effect (see [`recalibrated`]).
    pub fn new(scaled: Arc<ScaledModel>, indicator: IndicatorContext) -> Self {
        RecalibrationLayer {
            scaled,
            indicator,
            ema: 0.2,
            last: None,
            pending_dt: 0.0,
            pending_advance: 0.0,
        }
    }

    /// The current inflation factor λ.
    pub fn inflation(&self) -> f64 {
        self.scaled.scale()
    }

    /// A shared handle onto the scaled model, usable to observe λ
    /// after the controller has been handed to a simulator.
    pub fn scaled_handle(&self) -> Arc<ScaledModel> {
        self.scaled.clone()
    }

    /// Per-tick slip estimation: between consecutive ticks, the base
    /// model's (median) remaining time at the *current* allocation
    /// should shrink by the elapsed interval. Shrinking slower means
    /// the cluster is delivering less than the model assumes; the
    /// ratio, smoothed, is λ. Evaluating both endpoints at the same
    /// allocation makes the estimate insensitive to the allocation
    /// trajectory.
    fn update_lambda(&mut self, status: &JobStatus) {
        let elapsed = status.elapsed.as_secs_f64();
        let p = self.indicator.progress(&status.stage_fraction);
        let Some((p_prev, elapsed_prev)) = self.last.replace((p, elapsed)) else {
            return;
        };
        let dt = elapsed - elapsed_prev;
        if dt <= 0.0 {
            return;
        }
        let a = status.guarantee.max(1);
        let base = self.scaled.base();
        let modelled_advance = (base.remaining_percentile(p_prev, a, 50.0)
            - base.remaining_percentile(p, a, 50.0))
        .max(0.0);
        self.pending_dt += dt;
        self.pending_advance += modelled_advance;

        // Flush once enough modelled progress accrued to give a stable
        // ratio, or after a long quiet stretch (a genuine crawl —
        // short quiet stretches are normal barrier tails that exist in
        // training too).
        let enough_signal = self.pending_advance >= 45.0;
        let long_silence = self.pending_dt >= 600.0;
        if !enough_signal && !long_silence {
            return;
        }
        let denom = self.pending_advance.max(self.pending_dt / 3.0);
        let observed = (self.pending_dt / denom).clamp(1.0 / 3.0, 3.0);
        self.pending_dt = 0.0;
        self.pending_advance = 0.0;
        let current = self.scaled.scale();
        self.scaled
            .set_scale(current + self.ema * (observed - current));
    }
}

impl ControlLayer for RecalibrationLayer {
    fn name(&self) -> &'static str {
        "recalibration"
    }

    fn before_tick(&mut self, status: &JobStatus) {
        self.update_lambda(status);
    }
}

/// The historical recalibrating-Jockey shape: a [`JockeyController`]
/// predicting from a λ-scaled model, under a [`RecalibrationLayer`].
pub type RecalibratingController = Layered<JockeyController>;

/// Builds a recalibrating controller from the same ingredients as a
/// plain [`JockeyController`]: the trained model is wrapped in a
/// [`ScaledModel`] shared between the controller and the layer. Read λ
/// afterwards via `controller.layer::<RecalibrationLayer>()` or a
/// [`RecalibrationLayer::scaled_handle`] taken before handing the
/// controller off.
pub fn recalibrated(
    model: Arc<CpaModel>,
    indicator: IndicatorContext,
    utility: UtilityFunction,
    params: ControlParams,
) -> RecalibratingController {
    let scaled = ScaledModel::new(model);
    let jockey = JockeyController::new(
        scaled.clone() as Arc<dyn CompletionModel>,
        indicator.clone(),
        utility,
        params,
    );
    Layered::new(jockey).with(Box::new(RecalibrationLayer::new(scaled, indicator)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpa::TrainConfig;
    use crate::progress::ProgressIndicator;
    use jockey_cluster::{
        ClusterConfig, ClusterSim, FixedAllocation, JobController, JobSpec, JobStatus,
    };
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use jockey_simrt::time::{SimDuration, SimTime};

    fn trained() -> (Arc<CpaModel>, IndicatorContext) {
        let mut b = JobGraphBuilder::new("recal");
        let m = b.stage("map", 24);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(30.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), 3);
        sim.add_job(spec, Box::new(FixedAllocation(6)));
        let profile = sim.run_single().profile;
        let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let model = Arc::new(CpaModel::train(
            &graph,
            &profile,
            &ctx,
            &TrainConfig::fast(vec![1, 2, 4, 8]),
            7,
        ));
        (model, ctx)
    }

    fn status(minute: u64, frac: f64, guarantee: u32) -> JobStatus {
        JobStatus {
            now: SimTime::from_mins(minute),
            elapsed: SimDuration::from_mins(minute),
            stage_fraction: vec![frac, 0.0],
            stage_completed: vec![(frac * 24.0) as u32, 0],
            running: guarantee,
            running_guaranteed: guarantee,
            guarantee,
            work_done: frac * 24.0 * 30.0,
            finished: false,
        }
    }

    fn inflation(c: &RecalibratingController) -> f64 {
        c.layer::<RecalibrationLayer>().unwrap().inflation()
    }

    #[test]
    fn slow_progress_raises_inflation() {
        let (model, ctx) = trained();
        let mut c = recalibrated(
            model,
            ctx,
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            ControlParams::default(),
        );
        c.initial(&status(0, 0.0, 4));
        // The job crawls: 25 minutes in, only 20% of the map stage done
        // at 4 tokens — the clean model would have finished most of it.
        for minute in 1..=25 {
            let frac = 0.2 * minute as f64 / 25.0;
            c.tick(&status(minute, frac, 4));
        }
        assert!(
            inflation(&c) > 1.3,
            "inflation {} did not rise for a crawling job",
            inflation(&c)
        );
    }

    #[test]
    fn on_model_progress_keeps_inflation_near_one() {
        // Run the controller against the real simulator in clean,
        // training-identical conditions: the measured inflation should
        // stay close to 1.
        let mut b = JobGraphBuilder::new("recal-clean");
        let m = b.stage("map", 24);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(30.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), 3);
        sim.add_job(spec.clone(), Box::new(FixedAllocation(6)));
        let profile = sim.run_single().profile;
        let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let model = Arc::new(CpaModel::train(
            &graph,
            &profile,
            &ctx,
            &TrainConfig::fast(vec![1, 2, 4, 8]),
            7,
        ));
        let controller = recalibrated(
            model,
            ctx,
            UtilityFunction::deadline(SimDuration::from_mins(30)),
            ControlParams {
                dead_zone: SimDuration::from_secs(30),
                ..ControlParams::default()
            },
        );
        let handle = controller
            .layer::<RecalibrationLayer>()
            .unwrap()
            .scaled_handle();
        let mut cfg = ClusterConfig::dedicated(8);
        cfg.control_period = SimDuration::from_secs(30);
        let mut sim = ClusterSim::new(cfg, 9);
        sim.add_job(spec, Box::new(controller));
        let result = sim.run_single();
        assert!(result.completed_at.is_some());
        let lambda = handle.scale();
        assert!(
            (0.5..=1.6).contains(&lambda),
            "inflation {lambda} drifted under clean conditions"
        );
    }

    #[test]
    fn inflated_model_allocates_more() {
        let (model, ctx) = trained();
        let params = ControlParams {
            dead_zone: SimDuration::from_secs(30),
            ..ControlParams::default()
        };
        let mk = || {
            recalibrated(
                model.clone(),
                ctx.clone(),
                UtilityFunction::deadline(SimDuration::from_mins(30)),
                params,
            )
        };
        // Run A progresses on schedule; run B crawls. B must end up
        // asking for at least as many tokens.
        let mut fast = mk();
        let mut slow = mk();
        fast.initial(&status(0, 0.0, 4));
        slow.initial(&status(0, 0.0, 4));
        let mut g_fast = 4;
        let mut g_slow = 4;
        for minute in 1..=15 {
            g_fast = fast
                .tick(&status(minute, (minute as f64 / 16.0).min(0.99), g_fast))
                .guarantee;
            g_slow = slow
                .tick(&status(minute, (minute as f64 / 80.0).min(0.99), g_slow))
                .guarantee;
        }
        assert!(g_slow >= g_fast, "slow {g_slow} vs fast {g_fast}");
    }
}
