//! The pure §4.3 decision core: progress → candidate utilities → raw
//! argmin allocation.
//!
//! [`ArgminPolicy`] is the side-effect-free heart of the control loop:
//! given the per-stage fractions, scalar progress, elapsed time and a
//! prediction-inflation factor, it evaluates the expected utility
//! `U_a = U(t_r + S·C(p, a))` of every candidate allocation and picks
//! `A^r = argmin_a {a : U_a = max_b U_b}` — the minimum allocation
//! maximizing utility. Everything stateful (slack conditioning, dead
//! zone, hysteresis, clamping) lives in the
//! [`conditioner`](crate::conditioner) pipeline layered on top.

use std::sync::Arc;

use crate::predict::CompletionModel;
use crate::utility::UtilityFunction;

/// Chooses a raw token allocation from conditioned inputs.
///
/// Implementors must be pure: the same inputs always produce the same
/// allocation, and calls have no side effects. This is the seam a new
/// decision rule plugs into (see the README's "plugging in a new
/// control layer" guide for the runtime-wrapper counterpart).
pub trait AllocationPolicy: Send + Sync {
    /// The raw allocation `A^r` for per-stage fractions `fs`, scalar
    /// progress `progress`, at elapsed job time `elapsed_secs`, with
    /// model predictions multiplied by `inflation` (the slack factor
    /// `S`, possibly composed with other conditioning stages).
    fn raw_allocation(&self, fs: &[f64], progress: f64, elapsed_secs: f64, inflation: f64) -> u32;

    /// The largest allocation worth considering.
    fn max_allocation(&self) -> u32;
}

/// The paper's argmin rule over a [`CompletionModel`] and a
/// dead-zone-shifted [`UtilityFunction`].
pub struct ArgminPolicy {
    model: Arc<dyn CompletionModel>,
    /// The utility already shifted left by the dead zone `D` (§4.3's
    /// step 2 evaluates candidates against the shifted deadline).
    shifted_utility: UtilityFunction,
    /// Smallest candidate considered.
    min_allocation: u32,
}

impl ArgminPolicy {
    /// Builds the policy. `shifted_utility` must already incorporate
    /// the dead-zone shift; [`crate::control::JockeyController`] does
    /// this via [`UtilityFunction::shifted_left`].
    pub fn new(
        model: Arc<dyn CompletionModel>,
        shifted_utility: UtilityFunction,
        min_allocation: u32,
    ) -> Self {
        ArgminPolicy {
            model,
            shifted_utility,
            min_allocation,
        }
    }

    /// The completion model predictions are drawn from.
    pub fn model(&self) -> &Arc<dyn CompletionModel> {
        &self.model
    }

    /// Replaces the shifted utility (deadline changes rebuild it).
    pub fn set_shifted_utility(&mut self, shifted_utility: UtilityFunction) {
        self.shifted_utility = shifted_utility;
    }

    /// Expected remaining seconds at `allocation`, inflated by
    /// `inflation`.
    pub fn predicted_remaining(
        &self,
        fs: &[f64],
        progress: f64,
        allocation: u32,
        inflation: f64,
    ) -> f64 {
        inflation * self.model.remaining_secs(fs, progress, allocation)
    }

    /// The expected (shifted) utility of every candidate allocation,
    /// in ascending allocation order — §4.3's step 2, exposed for
    /// diagnosis and tests.
    pub fn candidate_utilities(
        &self,
        fs: &[f64],
        progress: f64,
        elapsed_secs: f64,
        inflation: f64,
    ) -> Vec<(u32, f64)> {
        (self.min_allocation..=self.model.max_allocation())
            .map(|a| {
                let remaining = self.predicted_remaining(fs, progress, a, inflation);
                (a, self.shifted_utility.eval(elapsed_secs + remaining))
            })
            .collect()
    }
}

impl AllocationPolicy for ArgminPolicy {
    fn raw_allocation(&self, fs: &[f64], progress: f64, elapsed_secs: f64, inflation: f64) -> u32 {
        let max = self.model.max_allocation();
        let mut best_u = f64::NEG_INFINITY;
        let mut best_a = max;
        // Ascending scan: the *first* allocation achieving the maximum
        // utility (within epsilon) is the minimal one.
        for a in self.min_allocation..=max {
            let remaining = self.predicted_remaining(fs, progress, a, inflation);
            let u = self.shifted_utility.eval(elapsed_secs + remaining);
            if u > best_u + 1e-9 {
                best_u = u;
                best_a = a;
            }
        }
        best_a
    }

    fn max_allocation(&self) -> u32 {
        self.model.max_allocation()
    }
}

/// One candidate speculation level for the 2D argmin: a clone-token
/// surcharge plus the `C(p, a, s)` surface trained under it (see
/// [`TrainConfig::speculation`](crate::cpa::TrainConfig)). Level 0 is
/// conventionally "speculation off" — zero surcharge, the legacy
/// `C(p, a)` surface.
#[derive(Clone)]
pub struct SpeculationLevel {
    /// Display label (e.g. `"off"`, `"clone@2.0x"`).
    pub label: String,
    /// Clone tokens this level reserves *on top of* the allocation; the
    /// level's total token cost at allocation `a` is `a + clone_budget`.
    pub clone_budget: u32,
    /// Completion surface trained under this level's cloning policy.
    pub model: Arc<dyn CompletionModel>,
}

/// The chosen point of a 2D [`SpeculativeArgmin`] scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpeculativeDecision {
    /// Guaranteed-token allocation `a`.
    pub allocation: u32,
    /// Index into the policy's speculation levels.
    pub level: usize,
    /// Total reserved footprint `a + clone_budget(level)`.
    pub total_tokens: u32,
}

/// The §4.3 argmin extended to two dimensions: candidates are
/// `(allocation, speculation level)` pairs, each predicted by its own
/// `C(p, a, s)` surface, and "minimum resources" means minimum *total
/// token cost* `a + clone_budget(s)` — a clone token held idle for a
/// straggler race is paid for exactly like a guaranteed token.
///
/// The scan visits candidates in ascending total-cost order (ties:
/// lowest level first) and keeps the first utility maximum, so the
/// decision is the cheapest utility-maximizing pair and, at equal cost,
/// the least speculative one. With a single zero-surcharge level this
/// degenerates to [`ArgminPolicy`]'s 1D rule over the same model.
pub struct SpeculativeArgmin {
    levels: Vec<SpeculationLevel>,
    /// Already dead-zone-shifted, as in [`ArgminPolicy`].
    shifted_utility: UtilityFunction,
    min_allocation: u32,
}

impl SpeculativeArgmin {
    /// Builds the 2D policy.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(
        levels: Vec<SpeculationLevel>,
        shifted_utility: UtilityFunction,
        min_allocation: u32,
    ) -> Self {
        assert!(!levels.is_empty(), "need at least one speculation level");
        SpeculativeArgmin {
            levels,
            shifted_utility,
            min_allocation,
        }
    }

    /// The policy's speculation levels, in index order.
    pub fn levels(&self) -> &[SpeculationLevel] {
        &self.levels
    }

    /// The 2D decision for the given conditioned inputs: the
    /// minimum-total-cost `(a, s)` maximizing the expected (shifted)
    /// utility `U(t_r + S·C_s(p, a))`.
    pub fn raw_decision(
        &self,
        fs: &[f64],
        progress: f64,
        elapsed_secs: f64,
        inflation: f64,
    ) -> SpeculativeDecision {
        let min_cost = self
            .levels
            .iter()
            .map(|l| self.min_allocation + l.clone_budget)
            .min()
            .expect("non-empty levels");
        let max_cost = self
            .levels
            .iter()
            .map(|l| l.model.max_allocation() + l.clone_budget)
            .max()
            .expect("non-empty levels");
        let mut best_u = f64::NEG_INFINITY;
        let mut best = SpeculativeDecision {
            allocation: self.levels[0].model.max_allocation(),
            level: 0,
            total_tokens: self.levels[0].model.max_allocation() + self.levels[0].clone_budget,
        };
        // Ascending total-cost scan, lowest level first within a cost:
        // the first candidate achieving the maximum utility (within
        // epsilon) is the cheapest and least speculative one.
        for cost in min_cost..=max_cost {
            for (s, level) in self.levels.iter().enumerate() {
                let Some(a) = cost.checked_sub(level.clone_budget) else {
                    continue;
                };
                if a < self.min_allocation || a > level.model.max_allocation() {
                    continue;
                }
                let remaining = inflation * level.model.remaining_secs(fs, progress, a);
                let u = self.shifted_utility.eval(elapsed_secs + remaining);
                if u > best_u + 1e-9 {
                    best_u = u;
                    best = SpeculativeDecision {
                        allocation: a,
                        level: s,
                        total_tokens: cost,
                    };
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::time::SimDuration;

    /// remaining = (1 - progress) * work / a.
    struct Toy {
        work: f64,
        max: u32,
    }

    impl CompletionModel for Toy {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            (1.0 - progress) * self.work / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            self.max
        }
    }

    fn policy(work: f64, deadline_mins: u64) -> ArgminPolicy {
        ArgminPolicy::new(
            Arc::new(Toy { work, max: 100 }),
            UtilityFunction::deadline(SimDuration::from_mins(deadline_mins)),
            1,
        )
    }

    #[test]
    fn argmin_is_minimal_deadline_meeting() {
        // 6000 s of work, 3600 s deadline: ceil(6000/3600) = 2 tokens.
        let p = policy(6_000.0, 60);
        assert_eq!(p.raw_allocation(&[0.0], 0.0, 0.0, 1.0), 2);
        // Inflation 1.5 behaves exactly like slack: 9000/3600 -> 3.
        assert_eq!(p.raw_allocation(&[0.0], 0.0, 0.0, 1.5), 3);
    }

    #[test]
    fn candidate_utilities_peak_at_the_argmin() {
        let p = policy(6_000.0, 60);
        let us = p.candidate_utilities(&[0.0], 0.0, 0.0, 1.0);
        assert_eq!(us.len(), 100);
        let best = us
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        // The first allocation within epsilon of the best utility is
        // the argmin.
        let argmin = us.iter().find(|(_, u)| *u >= best.1 - 1e-9).unwrap().0;
        assert_eq!(argmin, p.raw_allocation(&[0.0], 0.0, 0.0, 1.0));
    }

    #[test]
    fn purity_same_inputs_same_output() {
        let p = policy(12_345.0, 45);
        let a = p.raw_allocation(&[0.3], 0.3, 600.0, 1.2);
        for _ in 0..5 {
            assert_eq!(p.raw_allocation(&[0.3], 0.3, 600.0, 1.2), a);
        }
    }

    #[test]
    fn impossible_deadline_escalates_to_max() {
        let p = policy(1_000_000.0, 60);
        // No allocation meets the deadline; utility still improves with
        // earlier completion, so the argmin lands on the cap.
        assert_eq!(p.raw_allocation(&[0.0], 0.0, 0.0, 1.0), 100);
    }

    /// Like [`Toy`], but with a per-attempt straggler tail that cloning
    /// removes: `tail_factor` multiplies the remaining time.
    struct TailToy {
        work: f64,
        tail_factor: f64,
        max: u32,
    }

    impl CompletionModel for TailToy {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            self.tail_factor * (1.0 - progress) * self.work / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            self.max
        }
    }

    fn two_level(work: f64, tail: f64, clone_budget: u32, deadline_mins: u64) -> SpeculativeArgmin {
        SpeculativeArgmin::new(
            vec![
                SpeculationLevel {
                    label: "off".into(),
                    clone_budget: 0,
                    model: Arc::new(TailToy {
                        work,
                        tail_factor: tail,
                        max: 100,
                    }),
                },
                SpeculationLevel {
                    label: "clone@2.0x".into(),
                    clone_budget,
                    model: Arc::new(TailToy {
                        work,
                        tail_factor: 1.0,
                        max: 100,
                    }),
                },
            ],
            UtilityFunction::deadline(SimDuration::from_mins(deadline_mins)),
            1,
        )
    }

    #[test]
    fn speculation_wins_when_clone_tokens_beat_extra_workers() {
        // Straggler tail doubles the no-speculation surface: meeting
        // the 60-min deadline costs 4 plain tokens (2·6000/3600 ≈ 3.3)
        // but only 2 + 1 with cloning — the 2D argmin must pick the
        // cheaper speculative pair.
        let p = two_level(6_000.0, 2.0, 1, 60);
        let d = p.raw_decision(&[0.0], 0.0, 0.0, 1.0);
        assert_eq!(d.level, 1, "{d:?}");
        assert_eq!(d.total_tokens, 3, "{d:?}");
        assert_eq!(d.allocation, 2, "{d:?}");
    }

    #[test]
    fn speculation_loses_when_the_surcharge_outweighs_the_tail() {
        // No tail at all: both surfaces agree, so the clone surcharge
        // is pure cost and level 0 wins at equal utility.
        let p = two_level(6_000.0, 1.0, 3, 60);
        let d = p.raw_decision(&[0.0], 0.0, 0.0, 1.0);
        assert_eq!(d.level, 0, "{d:?}");
        assert_eq!(d.allocation, 2, "{d:?}");
        assert_eq!(d.total_tokens, 2, "{d:?}");
    }

    #[test]
    fn single_zero_surcharge_level_degenerates_to_the_1d_argmin() {
        let p1 = policy(6_000.0, 60);
        let p2 = SpeculativeArgmin::new(
            vec![SpeculationLevel {
                label: "off".into(),
                clone_budget: 0,
                model: Arc::new(Toy {
                    work: 6_000.0,
                    max: 100,
                }),
            }],
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            1,
        );
        for (progress, inflation) in [(0.0, 1.0), (0.3, 1.5), (0.9, 1.0)] {
            let a1 = p1.raw_allocation(&[progress], progress, 600.0, inflation);
            let d2 = p2.raw_decision(&[progress], progress, 600.0, inflation);
            assert_eq!(d2.allocation, a1);
            assert_eq!(d2.level, 0);
            assert_eq!(d2.total_tokens, a1);
        }
    }

    #[test]
    fn decision_is_pure() {
        let p = two_level(12_345.0, 1.7, 2, 45);
        let d = p.raw_decision(&[0.3], 0.3, 600.0, 1.2);
        for _ in 0..5 {
            assert_eq!(p.raw_decision(&[0.3], 0.3, 600.0, 1.2), d);
        }
    }
}
