//! The pure §4.3 decision core: progress → candidate utilities → raw
//! argmin allocation.
//!
//! [`ArgminPolicy`] is the side-effect-free heart of the control loop:
//! given the per-stage fractions, scalar progress, elapsed time and a
//! prediction-inflation factor, it evaluates the expected utility
//! `U_a = U(t_r + S·C(p, a))` of every candidate allocation and picks
//! `A^r = argmin_a {a : U_a = max_b U_b}` — the minimum allocation
//! maximizing utility. Everything stateful (slack conditioning, dead
//! zone, hysteresis, clamping) lives in the
//! [`conditioner`](crate::conditioner) pipeline layered on top.

use std::sync::Arc;

use crate::predict::CompletionModel;
use crate::utility::UtilityFunction;

/// Chooses a raw token allocation from conditioned inputs.
///
/// Implementors must be pure: the same inputs always produce the same
/// allocation, and calls have no side effects. This is the seam a new
/// decision rule plugs into (see the README's "plugging in a new
/// control layer" guide for the runtime-wrapper counterpart).
pub trait AllocationPolicy: Send + Sync {
    /// The raw allocation `A^r` for per-stage fractions `fs`, scalar
    /// progress `progress`, at elapsed job time `elapsed_secs`, with
    /// model predictions multiplied by `inflation` (the slack factor
    /// `S`, possibly composed with other conditioning stages).
    fn raw_allocation(&self, fs: &[f64], progress: f64, elapsed_secs: f64, inflation: f64) -> u32;

    /// The largest allocation worth considering.
    fn max_allocation(&self) -> u32;
}

/// The paper's argmin rule over a [`CompletionModel`] and a
/// dead-zone-shifted [`UtilityFunction`].
pub struct ArgminPolicy {
    model: Arc<dyn CompletionModel>,
    /// The utility already shifted left by the dead zone `D` (§4.3's
    /// step 2 evaluates candidates against the shifted deadline).
    shifted_utility: UtilityFunction,
    /// Smallest candidate considered.
    min_allocation: u32,
}

impl ArgminPolicy {
    /// Builds the policy. `shifted_utility` must already incorporate
    /// the dead-zone shift; [`crate::control::JockeyController`] does
    /// this via [`UtilityFunction::shifted_left`].
    pub fn new(
        model: Arc<dyn CompletionModel>,
        shifted_utility: UtilityFunction,
        min_allocation: u32,
    ) -> Self {
        ArgminPolicy {
            model,
            shifted_utility,
            min_allocation,
        }
    }

    /// The completion model predictions are drawn from.
    pub fn model(&self) -> &Arc<dyn CompletionModel> {
        &self.model
    }

    /// Replaces the shifted utility (deadline changes rebuild it).
    pub fn set_shifted_utility(&mut self, shifted_utility: UtilityFunction) {
        self.shifted_utility = shifted_utility;
    }

    /// Expected remaining seconds at `allocation`, inflated by
    /// `inflation`.
    pub fn predicted_remaining(
        &self,
        fs: &[f64],
        progress: f64,
        allocation: u32,
        inflation: f64,
    ) -> f64 {
        inflation * self.model.remaining_secs(fs, progress, allocation)
    }

    /// The expected (shifted) utility of every candidate allocation,
    /// in ascending allocation order — §4.3's step 2, exposed for
    /// diagnosis and tests.
    pub fn candidate_utilities(
        &self,
        fs: &[f64],
        progress: f64,
        elapsed_secs: f64,
        inflation: f64,
    ) -> Vec<(u32, f64)> {
        (self.min_allocation..=self.model.max_allocation())
            .map(|a| {
                let remaining = self.predicted_remaining(fs, progress, a, inflation);
                (a, self.shifted_utility.eval(elapsed_secs + remaining))
            })
            .collect()
    }
}

impl AllocationPolicy for ArgminPolicy {
    fn raw_allocation(&self, fs: &[f64], progress: f64, elapsed_secs: f64, inflation: f64) -> u32 {
        let max = self.model.max_allocation();
        let mut best_u = f64::NEG_INFINITY;
        let mut best_a = max;
        // Ascending scan: the *first* allocation achieving the maximum
        // utility (within epsilon) is the minimal one.
        for a in self.min_allocation..=max {
            let remaining = self.predicted_remaining(fs, progress, a, inflation);
            let u = self.shifted_utility.eval(elapsed_secs + remaining);
            if u > best_u + 1e-9 {
                best_u = u;
                best_a = a;
            }
        }
        best_a
    }

    fn max_allocation(&self) -> u32 {
        self.model.max_allocation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::time::SimDuration;

    /// remaining = (1 - progress) * work / a.
    struct Toy {
        work: f64,
        max: u32,
    }

    impl CompletionModel for Toy {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            (1.0 - progress) * self.work / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            self.max
        }
    }

    fn policy(work: f64, deadline_mins: u64) -> ArgminPolicy {
        ArgminPolicy::new(
            Arc::new(Toy { work, max: 100 }),
            UtilityFunction::deadline(SimDuration::from_mins(deadline_mins)),
            1,
        )
    }

    #[test]
    fn argmin_is_minimal_deadline_meeting() {
        // 6000 s of work, 3600 s deadline: ceil(6000/3600) = 2 tokens.
        let p = policy(6_000.0, 60);
        assert_eq!(p.raw_allocation(&[0.0], 0.0, 0.0, 1.0), 2);
        // Inflation 1.5 behaves exactly like slack: 9000/3600 -> 3.
        assert_eq!(p.raw_allocation(&[0.0], 0.0, 0.0, 1.5), 3);
    }

    #[test]
    fn candidate_utilities_peak_at_the_argmin() {
        let p = policy(6_000.0, 60);
        let us = p.candidate_utilities(&[0.0], 0.0, 0.0, 1.0);
        assert_eq!(us.len(), 100);
        let best = us
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        // The first allocation within epsilon of the best utility is
        // the argmin.
        let argmin = us.iter().find(|(_, u)| *u >= best.1 - 1e-9).unwrap().0;
        assert_eq!(argmin, p.raw_allocation(&[0.0], 0.0, 0.0, 1.0));
    }

    #[test]
    fn purity_same_inputs_same_output() {
        let p = policy(12_345.0, 45);
        let a = p.raw_allocation(&[0.3], 0.3, 600.0, 1.2);
        for _ in 0..5 {
            assert_eq!(p.raw_allocation(&[0.3], 0.3, 600.0, 1.2), a);
        }
    }

    #[test]
    fn impossible_deadline_escalates_to_max() {
        let p = policy(1_000_000.0, 60);
        // No allocation meets the deadline; utility still improves with
        // earlier completion, so the argmin lands on the cap.
        assert_eq!(p.raw_allocation(&[0.0], 0.0, 0.0, 1.0), 100);
    }
}
