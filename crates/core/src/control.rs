//! The resource-allocation control loop (§4.3).
//!
//! Each control period the loop:
//!
//! 1. computes job progress `p` with its progress indicator;
//! 2. evaluates, for every candidate allocation `a`, the expected
//!    utility `U_a = U(t_r + S·C(p, a))` — predictions inflated by the
//!    **slack** factor `S` and the utility **shifted left by the dead
//!    zone** `D`;
//! 3. picks the *minimum* allocation maximizing utility,
//!    `A^r = argmin_a {a : U_a = max_b U_b}`;
//! 4. conditions the raw allocation: **increases** are applied only
//!    when the job is at least `D` behind schedule (predicted, at the
//!    current allocation, to miss the shifted deadline) — decreases
//!    (releasing over-provisioned tokens, Fig. 6(c)) are always
//!    allowed; and **hysteresis** smooths the move:
//!    `A^s_t = A^s_{t−1} + α (A^r − A^s_{t−1})`.
//!
//! Steps 2–3 are the pure [`ArgminPolicy`](crate::alloc::ArgminPolicy)
//! core; step 4 is the [`ConditionerPipeline`] of composable stages
//! (slack → dead-zone gate → hysteresis → min clamp).
//! [`JockeyController`] composes the two behind the `JobController`
//! seam and journals every decision into a [`ControlTrace`] (plus a
//! per-stage [`PipelineTrace`](crate::conditioner::PipelineTrace)).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use jockey_cluster::{ControlDecision, JobController, JobStatus};
use jockey_simrt::time::SimDuration;

use crate::alloc::{AllocationPolicy, ArgminPolicy};
use crate::conditioner::{ahead_of_schedule, behind_schedule, ConditionerPipeline, StageCtx};
use crate::predict::CompletionModel;
use crate::progress::IndicatorContext;
use crate::utility::UtilityFunction;

/// Control-loop conditioning parameters (§4.3's three mechanisms).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControlParams {
    /// Prediction multiplier `S` compensating for model error
    /// (default 1.2).
    pub slack: f64,
    /// Hysteresis coefficient `α ∈ (0, 1]`; 1.0 disables smoothing
    /// (default 0.2).
    pub hysteresis: f64,
    /// Dead zone `D` (default 3 minutes).
    pub dead_zone: SimDuration,
    /// Lower bound on the applied guarantee.
    pub min_allocation: u32,
}

impl Default for ControlParams {
    fn default() -> Self {
        ControlParams {
            slack: 1.2,
            hysteresis: 0.2,
            dead_zone: SimDuration::from_mins(3),
            min_allocation: 1,
        }
    }
}

/// Why a [`ControlParams`] value was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InvalidControlParams {
    /// `slack` must be finite and `>= 1` (NaN is rejected explicitly).
    Slack(f64),
    /// `hysteresis` must be finite and in `(0, 1]` (NaN is rejected
    /// explicitly).
    Hysteresis(f64),
    /// `min_allocation` must be `>= 1`.
    MinAllocation(u32),
}

impl fmt::Display for InvalidControlParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidControlParams::Slack(v) => {
                write!(f, "slack must be a finite value >= 1, got {v}")
            }
            InvalidControlParams::Hysteresis(v) => {
                write!(f, "hysteresis must be a finite value in (0, 1], got {v}")
            }
            InvalidControlParams::MinAllocation(v) => {
                write!(f, "min_allocation must be >= 1, got {v}")
            }
        }
    }
}

impl std::error::Error for InvalidControlParams {}

impl ControlParams {
    /// Validates parameter ranges, returning the first problem found.
    /// NaN slack or hysteresis is rejected (comparison chains alone
    /// would be easy to get wrong around NaN, so finiteness is checked
    /// explicitly).
    pub fn check(&self) -> Result<(), InvalidControlParams> {
        if !self.slack.is_finite() || self.slack < 1.0 {
            return Err(InvalidControlParams::Slack(self.slack));
        }
        if !self.hysteresis.is_finite() || self.hysteresis <= 0.0 || self.hysteresis > 1.0 {
            return Err(InvalidControlParams::Hysteresis(self.hysteresis));
        }
        if self.min_allocation < 1 {
            return Err(InvalidControlParams::MinAllocation(self.min_allocation));
        }
        Ok(())
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values; see [`ControlParams::check`] for
    /// the non-panicking form.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid control params: {e}");
        }
    }
}

/// One control decision as the controller saw it: the inputs, the raw
/// and smoothed allocations, and the dead-zone verdicts that gated the
/// move. Recorded every tick into a [`ControlTrace`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControlTick {
    /// Elapsed job time `t_r` in seconds.
    pub elapsed_secs: f64,
    /// Progress indicator value `p` in `[0, 1]`.
    pub progress: f64,
    /// Raw allocation `A^r`.
    pub raw: f64,
    /// Smoothed allocation `A^s` after hysteresis.
    pub smoothed: f64,
    /// Whether the job was at least `D` behind schedule (the increase
    /// gate) at the allocation in force.
    pub behind: bool,
    /// Whether the job was at least `D` ahead of the shifted schedule
    /// (a diagnostic margin verdict; decreases are not gated on it).
    pub ahead: bool,
    /// The applied guarantee.
    pub guarantee: u32,
    /// Predicted completion time in seconds from job start.
    pub predicted_completion_secs: f64,
    /// Whether the job had already finished at this tick.
    pub finished: bool,
}

/// A bounded journal of [`ControlTick`] records (most recent
/// `capacity` kept), attached to every [`JockeyController`].
#[derive(Clone, Debug)]
pub struct ControlTrace {
    capacity: usize,
    ticks: VecDeque<ControlTick>,
}

impl Default for ControlTrace {
    fn default() -> Self {
        ControlTrace::new(4096)
    }
}

impl ControlTrace {
    /// Creates a trace retaining at most `capacity` ticks (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        ControlTrace {
            capacity: capacity.max(1),
            ticks: VecDeque::new(),
        }
    }

    /// Records one tick, evicting the oldest beyond capacity.
    pub fn record(&mut self, tick: ControlTick) {
        if self.ticks.len() == self.capacity {
            self.ticks.pop_front();
        }
        self.ticks.push_back(tick);
    }

    /// Number of retained ticks.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True if no tick has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// The retained ticks, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &ControlTick> {
        self.ticks.iter()
    }

    /// The most recent tick.
    pub fn last(&self) -> Option<&ControlTick> {
        self.ticks.back()
    }
}

/// Jockey's adaptive controller: a completion model (simulator-trained
/// `C(p, a)` or Amdahl) driven through the §4.3 control policy.
///
/// Internally this is thin composition: the pure
/// [`ArgminPolicy`] picks the raw allocation, the
/// [`ConditionerPipeline`] conditions it (slack, dead zone,
/// hysteresis, clamp), and the controller wires job status in and
/// journals decisions out.
pub struct JockeyController {
    policy: ArgminPolicy,
    indicator: IndicatorContext,
    utility: UtilityFunction,
    pipeline: ConditionerPipeline,
    params: ControlParams,
    /// Tick-by-tick decision journal.
    trace: ControlTrace,
}

impl JockeyController {
    /// Creates a controller with the stock §4.3 conditioning stack.
    ///
    /// # Panics
    ///
    /// Panics on invalid [`ControlParams`].
    pub fn new(
        model: Arc<dyn CompletionModel>,
        indicator: IndicatorContext,
        utility: UtilityFunction,
        params: ControlParams,
    ) -> Self {
        let pipeline = {
            params.validate();
            ConditionerPipeline::standard(&params)
        };
        JockeyController::with_pipeline(model, indicator, utility, params, pipeline)
    }

    /// Creates a controller with a custom conditioning pipeline.
    /// `params` still supplies the dead-zone utility shift, the
    /// min-allocation floor for the finished path, and the raw-argmin
    /// scan bounds; the pipeline owns everything else.
    ///
    /// # Panics
    ///
    /// Panics on invalid [`ControlParams`].
    pub fn with_pipeline(
        model: Arc<dyn CompletionModel>,
        indicator: IndicatorContext,
        utility: UtilityFunction,
        params: ControlParams,
        pipeline: ConditionerPipeline,
    ) -> Self {
        params.validate();
        let shifted_utility = utility.shifted_left(params.dead_zone);
        JockeyController {
            policy: ArgminPolicy::new(model, shifted_utility, params.min_allocation),
            indicator,
            utility,
            pipeline,
            params,
            trace: ControlTrace::default(),
        }
    }

    /// The tick-by-tick decision journal: inputs, raw/smoothed
    /// allocations and dead-zone verdicts for the most recent ticks.
    pub fn trace(&self) -> &ControlTrace {
        &self.trace
    }

    /// The per-stage conditioning journal: how each pipeline stage
    /// transformed the raw allocation, tick by tick.
    pub fn pipeline_trace(&self) -> &crate::conditioner::PipelineTrace {
        self.pipeline.trace()
    }

    /// The pure argmin decision core.
    pub fn policy(&self) -> &ArgminPolicy {
        &self.policy
    }

    /// The raw allocation `A^r`: the minimum allocation maximizing
    /// expected utility at progress `p` and elapsed time `t_r`.
    pub fn raw_allocation(&self, fs: &[f64], progress: f64, elapsed_secs: f64) -> u32 {
        self.policy
            .raw_allocation(fs, progress, elapsed_secs, self.pipeline.inflation())
    }

    /// The slack factor currently in force.
    pub fn params(&self) -> &ControlParams {
        &self.params
    }
}

impl JobController for JockeyController {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        let tr = status.elapsed.as_secs_f64();
        if status.finished {
            let g = self.params.min_allocation;
            self.trace.record(ControlTick {
                elapsed_secs: tr,
                progress: 1.0,
                raw: f64::from(g),
                smoothed: self.pipeline.in_force().unwrap_or(f64::from(g)),
                behind: false,
                ahead: true,
                guarantee: g,
                predicted_completion_secs: tr,
                finished: true,
            });
            return ControlDecision::simple(g);
        }
        let fs = &status.stage_fraction;
        let p = self.indicator.progress(fs);
        let inflation = self.pipeline.inflation();
        let raw = self.policy.raw_allocation(fs, p, tr, inflation);

        let in_force = self.pipeline.in_force();
        let ctx = StageCtx {
            fs,
            progress: p,
            elapsed_secs: tr,
            model: &**self.policy.model(),
            utility: &self.utility,
            inflation,
            in_force,
        };

        // Diagnostic verdicts, evaluated at the allocation in force
        // (the raw allocation itself on the first decision).
        let probe = match in_force {
            None => raw,
            Some(cur) => (cur.round() as u32).max(self.params.min_allocation),
        };
        let behind = behind_schedule(&ctx, probe, self.params.dead_zone);
        let ahead = ahead_of_schedule(&ctx, probe, self.params.dead_zone);

        let conditioned = self.pipeline.run(f64::from(raw), &ctx);
        // The smoothed allocation the pipeline now holds in force (the
        // hysteresis output); the clamp output when no stage smooths.
        let next = self.pipeline.in_force().unwrap_or(conditioned);
        let guarantee = (conditioned as u32).max(self.params.min_allocation);

        let predicted = tr + self.policy.model().remaining_secs(fs, p, guarantee);
        self.trace.record(ControlTick {
            elapsed_secs: tr,
            progress: p,
            raw: f64::from(raw),
            smoothed: next,
            behind,
            ahead,
            guarantee,
            predicted_completion_secs: predicted,
            finished: false,
        });
        ControlDecision {
            guarantee,
            raw: Some(f64::from(raw)),
            progress: Some(p),
            predicted_completion: Some(predicted),
        }
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        self.utility = self.utility.with_deadline(new_deadline);
        self.policy
            .set_shifted_utility(self.utility.shifted_left(self.params.dead_zone));
        // A new SLO is a fresh sizing problem: the next decision jumps
        // straight to the raw allocation (as at job admission) instead
        // of chasing it through the hysteresis filter — a halved
        // deadline cannot afford a multi-period ramp, and a relaxed one
        // should release its over-provision immediately (§5.2 reports
        // 63–83% released on doubling/tripling).
        self.pipeline.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::{IndicatorContext, ProgressIndicator};
    use jockey_simrt::time::SimTime;

    /// A transparent analytic model: remaining = (1 - progress) * work / a.
    struct ToyModel {
        work: f64,
        max: u32,
    }

    impl CompletionModel for ToyModel {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            (1.0 - progress) * self.work / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            self.max
        }
    }

    fn indicator() -> IndicatorContext {
        // Single-stage fixture.
        let mut b = jockey_jobgraph::graph::JobGraphBuilder::new("toy");
        b.stage("only", 10);
        let g = b.build().unwrap();
        let mut pb = jockey_jobgraph::profile::ProfileBuilder::new(&g);
        for _ in 0..10 {
            pb.record_task(jockey_jobgraph::StageId(0), 1.0, 10.0, false);
        }
        let p = pb.finish(100.0, 1.0);
        IndicatorContext::new(ProgressIndicator::VertexFrac, &g, &p, None)
    }

    fn status(frac: f64, elapsed_mins: f64, guarantee: u32) -> JobStatus {
        JobStatus {
            now: SimTime::from_secs_f64(elapsed_mins * 60.0),
            elapsed: SimDuration::from_secs_f64(elapsed_mins * 60.0),
            stage_fraction: vec![frac],
            stage_completed: vec![(frac * 10.0) as u32],
            running: guarantee,
            running_guaranteed: guarantee,
            guarantee,
            work_done: frac * 100.0,
            finished: frac >= 1.0,
        }
    }

    fn controller(work: f64, deadline_mins: u64, params: ControlParams) -> JockeyController {
        JockeyController::new(
            Arc::new(ToyModel { work, max: 100 }),
            indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(deadline_mins)),
            params,
        )
    }

    #[test]
    fn raw_allocation_is_minimal_deadline_meeting() {
        // 6000 s of work, 60-min deadline (3600 s), slack 1.0, dead
        // zone 0: need ceil(6000/3600) = 2 tokens.
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let c = controller(6_000.0, 60, params);
        assert_eq!(c.raw_allocation(&[0.0], 0.0, 0.0), 2);
        // With slack 1.5: 9000/3600 -> 3.
        let c = controller(
            6_000.0,
            60,
            ControlParams {
                slack: 1.5,
                ..params
            },
        );
        assert_eq!(c.raw_allocation(&[0.0], 0.0, 0.0), 3);
    }

    #[test]
    fn first_tick_jumps_to_raw() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 0.2,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(6_000.0, 60, params);
        let d = c.tick(&status(0.0, 0.0, 0));
        assert_eq!(d.guarantee, 2);
        assert_eq!(d.raw, Some(2.0));
        assert_eq!(d.progress, Some(0.0));
    }

    #[test]
    fn hysteresis_smooths_increases() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 0.5,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(6_000.0, 60, params);
        c.tick(&status(0.0, 0.0, 0)); // smoothed = 2.
                                      // 30 minutes in, no progress: need 6000/1800 = 4 raw; smoothed
                                      // moves halfway from 2 to 4 = 3.
        let d = c.tick(&status(0.0, 30.0, 2));
        assert_eq!(d.raw, Some(4.0));
        assert_eq!(d.guarantee, 3);
    }

    #[test]
    fn behind_schedule_jobs_get_more_tokens() {
        let mut c = controller(6_000.0, 60, ControlParams::default());
        let first = c.tick(&status(0.0, 0.0, 0)).guarantee;
        // Halfway to deadline with only 10% done: well behind.
        let later = c.tick(&status(0.1, 30.0, first)).guarantee;
        assert!(later > first, "{later} vs {first}");
    }

    #[test]
    fn ahead_of_schedule_jobs_release_tokens() {
        let mut c = controller(6_000.0, 60, ControlParams::default());
        let first = c.tick(&status(0.0, 0.0, 0)).guarantee;
        // 90% done after 10 minutes: way ahead; raw collapses.
        let later = c.tick(&status(0.9, 10.0, first)).guarantee;
        assert!(later <= first, "{later} vs {first}");
        let even_later = c.tick(&status(0.95, 12.0, later)).guarantee;
        assert!(even_later <= later);
    }

    #[test]
    fn dead_zone_tightens_effective_deadline() {
        // 3100 s of work against a 60-min deadline: 1 token meets the
        // raw deadline (3100 < 3600) but not a 50-min shifted one
        // (3100 > 3000), so a 10-minute dead zone asks for 2 tokens.
        let without = controller(
            3_100.0,
            60,
            ControlParams {
                slack: 1.0,
                hysteresis: 1.0,
                dead_zone: SimDuration::ZERO,
                min_allocation: 1,
            },
        );
        let with = controller(
            3_100.0,
            60,
            ControlParams {
                slack: 1.0,
                hysteresis: 1.0,
                dead_zone: SimDuration::from_mins(10),
                min_allocation: 1,
            },
        );
        assert_eq!(without.raw_allocation(&[0.0], 0.0, 0.0), 1);
        assert_eq!(with.raw_allocation(&[0.0], 0.0, 0.0), 2);
    }

    #[test]
    fn dead_zone_gate_blocks_increases_when_on_schedule() {
        // A model whose raw allocation can exceed the current one even
        // while the current allocation is on schedule: remaining time
        // is flat in `a` below 10 tokens, so the argmin lands high when
        // the tail begins to matter, but the current small allocation
        // already meets the shifted deadline.
        struct Step;
        impl CompletionModel for Step {
            fn remaining_secs(&self, _fs: &[f64], progress: f64, a: u32) -> f64 {
                let base = (1.0 - progress) * 2_000.0;
                if a >= 10 {
                    base * 0.5
                } else {
                    base
                }
            }
            fn max_allocation(&self) -> u32 {
                100
            }
        }
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::from_mins(3),
            min_allocation: 1,
        };
        let mut c = JockeyController::new(
            Arc::new(Step),
            indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            params,
        );
        // First decision adopts the raw allocation (1: 2000 s meets the
        // 57-minute shifted deadline at any allocation).
        let g0 = c.tick(&status(0.0, 0.0, 0)).guarantee;
        assert_eq!(g0, 1);
        // Still on schedule later: no escalation.
        let g1 = c.tick(&status(0.5, 10.0, g0)).guarantee;
        assert_eq!(g1, 1);
    }

    #[test]
    fn impossible_deadline_pushes_to_max() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(1_000_000.0, 60, params);
        let d = c.tick(&status(0.0, 0.0, 0));
        // No allocation meets the deadline; utility still improves with
        // earlier completion, so the loop escalates to the cap.
        assert_eq!(d.guarantee, 100);
    }

    #[test]
    fn deadline_change_triggers_reallocation() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(6_000.0, 60, params);
        let before = c.tick(&status(0.0, 0.0, 0)).guarantee;
        c.deadline_changed(SimDuration::from_mins(30));
        let after = c.tick(&status(0.0, 1.0, before)).guarantee;
        assert!(after > before, "{after} vs {before}");
        // Relaxing the deadline releases resources again.
        c.deadline_changed(SimDuration::from_mins(120));
        let relaxed = c.tick(&status(0.1, 2.0, after)).guarantee;
        assert!(relaxed < after);
    }

    #[test]
    fn finished_job_releases_to_minimum() {
        let mut c = controller(6_000.0, 60, ControlParams::default());
        c.tick(&status(0.0, 0.0, 0));
        let d = c.tick(&status(1.0, 20.0, 5));
        assert_eq!(d.guarantee, 1);
    }

    #[test]
    fn predicted_completion_is_reported() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(6_000.0, 60, params);
        let d = c.tick(&status(0.0, 0.0, 0));
        // 2 tokens -> 3000 s predicted completion.
        assert_eq!(d.predicted_completion, Some(3_000.0));
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn rejects_sub_one_slack() {
        ControlParams {
            slack: 0.9,
            ..ControlParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn rejects_zero_hysteresis() {
        ControlParams {
            hysteresis: 0.0,
            ..ControlParams::default()
        }
        .validate();
    }

    #[test]
    fn check_rejects_nan_and_reports_typed_errors() {
        // `slack >= 1.0` alone would let NaN through: every comparison
        // against NaN is false, so `slack < 1.0` never fires for it.
        let p = ControlParams {
            slack: f64::NAN,
            ..ControlParams::default()
        };
        assert!(matches!(p.check(), Err(InvalidControlParams::Slack(v)) if v.is_nan()));

        let p = ControlParams {
            hysteresis: f64::NAN,
            ..ControlParams::default()
        };
        assert!(matches!(p.check(), Err(InvalidControlParams::Hysteresis(v)) if v.is_nan()));

        let p = ControlParams {
            slack: f64::INFINITY,
            ..ControlParams::default()
        };
        assert!(matches!(p.check(), Err(InvalidControlParams::Slack(_))));

        let p = ControlParams {
            min_allocation: 0,
            ..ControlParams::default()
        };
        assert_eq!(p.check(), Err(InvalidControlParams::MinAllocation(0)));

        assert_eq!(ControlParams::default().check(), Ok(()));
    }

    /// Remaining time collapses by 4x from the second token on, then is
    /// flat — lets the raw allocation drop below the current one while
    /// the job sits inside the dead zone (neither behind nor far
    /// ahead).
    struct TwoTier {
        work: f64,
    }

    impl CompletionModel for TwoTier {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, a: u32) -> f64 {
            let base = (1.0 - progress) * self.work;
            if a >= 2 {
                base / 4.0
            } else {
                base
            }
        }
        fn max_allocation(&self) -> u32 {
            100
        }
    }

    #[test]
    fn releases_are_not_gated_on_ahead_margin() {
        // Decreases are always applied (module doc, step 4); only
        // increases are dead-zone gated. Regression test for a bug
        // where releases waited until the job was 2D *ahead* of
        // schedule, so a job inside the dead zone never gave back
        // over-provisioned tokens (and max-allocation runs tied
        // Jockey's §5.1 impact instead of exceeding it).
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::from_mins(5),
            min_allocation: 1,
        };
        let mut c = JockeyController::new(
            Arc::new(TwoTier { work: 13_000.0 }),
            indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            params,
        );
        let g0 = c.tick(&status(0.0, 0.0, 0)).guarantee;
        assert_eq!(g0, 2);
        // 50 minutes in and nearly done: completion at the current
        // allocation lands inside the dead zone, and a single token now
        // suffices.
        let d = c.tick(&status(0.984, 50.0, g0));
        let last = *c.trace().last().unwrap();
        assert!(
            !last.behind && !last.ahead,
            "expected the dead-zone middle: {last:?}"
        );
        assert_eq!(d.guarantee, 1, "release must not wait for the ahead margin");
    }

    #[test]
    fn trace_records_every_tick() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 0.5,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(6_000.0, 60, params);
        assert!(c.trace().is_empty());
        let d0 = c.tick(&status(0.0, 0.0, 0));
        let d1 = c.tick(&status(0.0, 30.0, 2));
        assert_eq!(c.trace().len(), 2);
        let ticks: Vec<ControlTick> = c.trace().iter().copied().collect();
        assert_eq!(ticks[0].guarantee, d0.guarantee);
        assert_eq!(Some(ticks[1].raw), d1.raw);
        assert_eq!(Some(ticks[1].progress), d1.progress);
        assert_eq!(
            Some(ticks[1].predicted_completion_secs),
            d1.predicted_completion
        );
        assert!(ticks[1].behind, "30 min in with zero progress is behind");
        assert!(!ticks[1].finished);
        assert_eq!(ticks[1].elapsed_secs, 1800.0);
    }

    #[test]
    fn finished_ticks_are_recorded() {
        let mut c = controller(6_000.0, 60, ControlParams::default());
        c.tick(&status(0.0, 0.0, 0));
        c.tick(&status(1.0, 20.0, 5));
        let last = c.trace().last().unwrap();
        assert!(last.finished);
        assert_eq!(last.guarantee, 1);
        assert_eq!(last.progress, 1.0);
    }

    #[test]
    fn finished_status_with_empty_fractions_is_safe() {
        // The finished path must not consult the indicator: a drained
        // job may report no per-stage fractions at all.
        let mut c = controller(6_000.0, 60, ControlParams::default());
        let mut st = status(1.0, 20.0, 5);
        st.stage_fraction.clear();
        assert_eq!(c.tick(&st).guarantee, 1);
    }

    #[test]
    #[should_panic(expected = "fs length mismatch")]
    fn running_status_with_wrong_stage_count_panics() {
        // For a *running* job, a stage-fraction/graph mismatch is a
        // caller bug, surfaced loudly rather than silently mis-read.
        let mut c = controller(6_000.0, 60, ControlParams::default());
        let mut st = status(0.5, 20.0, 5);
        st.stage_fraction.clear();
        c.tick(&st);
    }

    #[test]
    fn progress_extremes_are_handled() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let c = controller(6_000.0, 60, params);
        // Progress exactly 0: the full-work sizing.
        assert_eq!(c.raw_allocation(&[0.0], 0.0, 0.0), 2);
        // Progress exactly 1: nothing remains, the minimum suffices.
        assert_eq!(c.raw_allocation(&[1.0], 1.0, 100.0), 1);
    }

    #[test]
    fn no_deadline_disables_dead_zone_gating() {
        // A utility with no deadline encoded: both dead-zone verdicts
        // report `true` (nothing to be behind or ahead of), so the
        // controller simply chases the raw allocation.
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::from_mins(3),
            min_allocation: 1,
        };
        let mut c = JockeyController::new(
            Arc::new(ToyModel {
                work: 6_000.0,
                max: 100,
            }),
            indicator(),
            UtilityFunction::from_knots(vec![(0.0, 1.0), (10_000.0, 0.0)]),
            params,
        );
        c.tick(&status(0.0, 0.0, 0));
        c.tick(&status(0.1, 30.0, 1));
        for t in c.trace().iter() {
            assert!(t.behind && t.ahead, "no deadline: both gates open: {t:?}");
        }
    }

    #[test]
    fn trace_capacity_evicts_oldest() {
        let mut tr = ControlTrace::new(2);
        let tick = |e: f64| ControlTick {
            elapsed_secs: e,
            progress: 0.0,
            raw: 1.0,
            smoothed: 1.0,
            behind: false,
            ahead: false,
            guarantee: 1,
            predicted_completion_secs: 0.0,
            finished: false,
        };
        tr.record(tick(1.0));
        tr.record(tick(2.0));
        tr.record(tick(3.0));
        assert_eq!(tr.len(), 2);
        let kept: Vec<f64> = tr.iter().map(|t| t.elapsed_secs).collect();
        assert_eq!(kept, vec![2.0, 3.0]);
        assert_eq!(tr.last().unwrap().elapsed_secs, 3.0);
    }
}
