//! The resource-allocation control loop (§4.3).
//!
//! Each control period the loop:
//!
//! 1. computes job progress `p` with its progress indicator;
//! 2. evaluates, for every candidate allocation `a`, the expected
//!    utility `U_a = U(t_r + S·C(p, a))` — predictions inflated by the
//!    **slack** factor `S` and the utility **shifted left by the dead
//!    zone** `D`;
//! 3. picks the *minimum* allocation maximizing utility,
//!    `A^r = argmin_a {a : U_a = max_b U_b}`;
//! 4. conditions the raw allocation: **increases** are applied only
//!    when the job is at least `D` behind schedule (predicted, at the
//!    current allocation, to miss the shifted deadline) — decreases
//!    (releasing over-provisioned tokens, Fig. 6(c)) are always
//!    allowed; and **hysteresis** smooths the move:
//!    `A^s_t = A^s_{t−1} + α (A^r − A^s_{t−1})`.

use std::sync::Arc;

use jockey_cluster::{ControlDecision, JobController, JobStatus};
use jockey_simrt::time::SimDuration;

use crate::predict::CompletionModel;
use crate::progress::IndicatorContext;
use crate::utility::UtilityFunction;

/// Control-loop conditioning parameters (§4.3's three mechanisms).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControlParams {
    /// Prediction multiplier `S` compensating for model error
    /// (default 1.2).
    pub slack: f64,
    /// Hysteresis coefficient `α ∈ (0, 1]`; 1.0 disables smoothing
    /// (default 0.2).
    pub hysteresis: f64,
    /// Dead zone `D` (default 3 minutes).
    pub dead_zone: SimDuration,
    /// Lower bound on the applied guarantee.
    pub min_allocation: u32,
}

impl Default for ControlParams {
    fn default() -> Self {
        ControlParams {
            slack: 1.2,
            hysteresis: 0.2,
            dead_zone: SimDuration::from_mins(3),
            min_allocation: 1,
        }
    }
}

impl ControlParams {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!(self.slack >= 1.0, "slack must be >= 1, got {}", self.slack);
        assert!(
            self.hysteresis > 0.0 && self.hysteresis <= 1.0,
            "hysteresis must be in (0, 1], got {}",
            self.hysteresis
        );
        assert!(self.min_allocation >= 1);
    }
}

/// Jockey's adaptive controller: a completion model (simulator-trained
/// `C(p, a)` or Amdahl) driven through the §4.3 control policy.
pub struct JockeyController {
    model: Arc<dyn CompletionModel>,
    indicator: IndicatorContext,
    utility: UtilityFunction,
    shifted_utility: UtilityFunction,
    params: ControlParams,
    /// `A^s`, the smoothed allocation; `None` before the first decision
    /// (the first decision jumps straight to the raw allocation).
    smoothed: Option<f64>,
}

impl JockeyController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics on invalid [`ControlParams`].
    pub fn new(
        model: Arc<dyn CompletionModel>,
        indicator: IndicatorContext,
        utility: UtilityFunction,
        params: ControlParams,
    ) -> Self {
        params.validate();
        let shifted_utility = utility.shifted_left(params.dead_zone);
        JockeyController {
            model,
            indicator,
            utility,
            shifted_utility,
            params,
            smoothed: None,
        }
    }

    /// The raw allocation `A^r`: the minimum allocation maximizing
    /// expected utility at progress `p` and elapsed time `t_r`.
    pub fn raw_allocation(&self, fs: &[f64], progress: f64, elapsed_secs: f64) -> u32 {
        let max = self.model.max_allocation();
        let mut best_u = f64::NEG_INFINITY;
        let mut best_a = max;
        // Ascending scan: the *first* allocation achieving the maximum
        // utility (within epsilon) is the minimal one.
        for a in self.params.min_allocation..=max {
            let remaining = self.params.slack * self.model.remaining_secs(fs, progress, a);
            let u = self.shifted_utility.eval(elapsed_secs + remaining);
            if u > best_u + 1e-9 {
                best_u = u;
                best_a = a;
            }
        }
        best_a
    }

    /// True when the job is at least `D` behind schedule: predicted, at
    /// allocation `current`, to finish past the dead-zone-shifted
    /// deadline.
    fn behind_schedule(&self, fs: &[f64], progress: f64, elapsed_secs: f64, current: u32) -> bool {
        let Some(deadline) = self.utility.deadline_duration() else {
            // No deadline encoded: no dead-zone gating.
            return true;
        };
        let remaining = self.params.slack * self.model.remaining_secs(fs, progress, current);
        elapsed_secs + remaining
            > deadline.as_secs_f64() - self.params.dead_zone.as_secs_f64()
    }

    /// True when the job is at least `D` *ahead* of the (already
    /// dead-zone-shifted) schedule at allocation `current` — the
    /// symmetric half of the dead zone: resources are released only
    /// with real margin in hand, so a late straggler or overload does
    /// not turn a release into a miss.
    fn ahead_of_schedule(&self, fs: &[f64], progress: f64, elapsed_secs: f64, current: u32) -> bool {
        let Some(deadline) = self.utility.deadline_duration() else {
            return true;
        };
        let remaining = self.params.slack * self.model.remaining_secs(fs, progress, current);
        elapsed_secs + remaining
            <= deadline.as_secs_f64() - 2.0 * self.params.dead_zone.as_secs_f64()
    }

    /// The slack factor currently in force.
    pub fn params(&self) -> &ControlParams {
        &self.params
    }
}

impl JobController for JockeyController {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        if status.finished {
            let g = self.params.min_allocation;
            return ControlDecision::simple(g);
        }
        let fs = &status.stage_fraction;
        let p = self.indicator.progress(fs);
        let tr = status.elapsed.as_secs_f64();
        let raw = self.raw_allocation(fs, p, tr);

        let next = match self.smoothed {
            // First decision: adopt the raw allocation outright — this
            // is the pessimistic initial sizing of §1.
            None => f64::from(raw),
            Some(cur) => {
                let cur_alloc = (cur.round() as u32).max(self.params.min_allocation);
                let target = if f64::from(raw) > cur {
                    // Dead zone: only chase increases when behind.
                    if self.behind_schedule(fs, p, tr, cur_alloc) {
                        f64::from(raw)
                    } else {
                        cur
                    }
                } else if f64::from(raw) < cur {
                    // Symmetric dead zone: only release when ahead.
                    if self.ahead_of_schedule(fs, p, tr, cur_alloc) {
                        f64::from(raw)
                    } else {
                        cur
                    }
                } else {
                    cur
                };
                cur + self.params.hysteresis * (target - cur)
            }
        };
        self.smoothed = Some(next);
        let guarantee = (next.ceil() as u32).max(self.params.min_allocation);

        let predicted =
            tr + self.model.remaining_secs(fs, p, guarantee.max(self.params.min_allocation));
        ControlDecision {
            guarantee,
            raw: Some(f64::from(raw)),
            progress: Some(p),
            predicted_completion: Some(predicted),
        }
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        self.utility = self.utility.with_deadline(new_deadline);
        self.shifted_utility = self.utility.shifted_left(self.params.dead_zone);
        // A new SLO is a fresh sizing problem: the next decision jumps
        // straight to the raw allocation (as at job admission) instead
        // of chasing it through the hysteresis filter — a halved
        // deadline cannot afford a multi-period ramp, and a relaxed one
        // should release its over-provision immediately (§5.2 reports
        // 63–83% released on doubling/tripling).
        self.smoothed = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::{IndicatorContext, ProgressIndicator};
    use jockey_simrt::time::SimTime;

    /// A transparent analytic model: remaining = (1 - progress) * work / a.
    struct ToyModel {
        work: f64,
        max: u32,
    }

    impl CompletionModel for ToyModel {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            (1.0 - progress) * self.work / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            self.max
        }
    }

    fn indicator() -> IndicatorContext {
        // Single-stage fixture.
        let mut b = jockey_jobgraph::graph::JobGraphBuilder::new("toy");
        b.stage("only", 10);
        let g = b.build().unwrap();
        let mut pb = jockey_jobgraph::profile::ProfileBuilder::new(&g);
        for _ in 0..10 {
            pb.record_task(jockey_jobgraph::StageId(0), 1.0, 10.0, false);
        }
        let p = pb.finish(100.0, 1.0);
        IndicatorContext::new(ProgressIndicator::VertexFrac, &g, &p, None)
    }

    fn status(frac: f64, elapsed_mins: f64, guarantee: u32) -> JobStatus {
        JobStatus {
            now: SimTime::from_secs_f64(elapsed_mins * 60.0),
            elapsed: SimDuration::from_secs_f64(elapsed_mins * 60.0),
            stage_fraction: vec![frac],
            stage_completed: vec![(frac * 10.0) as u32],
            running: guarantee,
            running_guaranteed: guarantee,
            guarantee,
            work_done: frac * 100.0,
            finished: frac >= 1.0,
        }
    }

    fn controller(work: f64, deadline_mins: u64, params: ControlParams) -> JockeyController {
        JockeyController::new(
            Arc::new(ToyModel { work, max: 100 }),
            indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(deadline_mins)),
            params,
        )
    }

    #[test]
    fn raw_allocation_is_minimal_deadline_meeting() {
        // 6000 s of work, 60-min deadline (3600 s), slack 1.0, dead
        // zone 0: need ceil(6000/3600) = 2 tokens.
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let c = controller(6_000.0, 60, params);
        assert_eq!(c.raw_allocation(&[0.0], 0.0, 0.0), 2);
        // With slack 1.5: 9000/3600 -> 3.
        let c = controller(6_000.0, 60, ControlParams { slack: 1.5, ..params });
        assert_eq!(c.raw_allocation(&[0.0], 0.0, 0.0), 3);
    }

    #[test]
    fn first_tick_jumps_to_raw() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 0.2,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(6_000.0, 60, params);
        let d = c.tick(&status(0.0, 0.0, 0));
        assert_eq!(d.guarantee, 2);
        assert_eq!(d.raw, Some(2.0));
        assert_eq!(d.progress, Some(0.0));
    }

    #[test]
    fn hysteresis_smooths_increases() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 0.5,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(6_000.0, 60, params);
        c.tick(&status(0.0, 0.0, 0)); // smoothed = 2.
        // 30 minutes in, no progress: need 6000/1800 = 4 raw; smoothed
        // moves halfway from 2 to 4 = 3.
        let d = c.tick(&status(0.0, 30.0, 2));
        assert_eq!(d.raw, Some(4.0));
        assert_eq!(d.guarantee, 3);
    }

    #[test]
    fn behind_schedule_jobs_get_more_tokens() {
        let mut c = controller(6_000.0, 60, ControlParams::default());
        let first = c.tick(&status(0.0, 0.0, 0)).guarantee;
        // Halfway to deadline with only 10% done: well behind.
        let later = c.tick(&status(0.1, 30.0, first)).guarantee;
        assert!(later > first, "{later} vs {first}");
    }

    #[test]
    fn ahead_of_schedule_jobs_release_tokens() {
        let mut c = controller(6_000.0, 60, ControlParams::default());
        let first = c.tick(&status(0.0, 0.0, 0)).guarantee;
        // 90% done after 10 minutes: way ahead; raw collapses.
        let later = c.tick(&status(0.9, 10.0, first)).guarantee;
        assert!(later <= first, "{later} vs {first}");
        let even_later = c.tick(&status(0.95, 12.0, later)).guarantee;
        assert!(even_later <= later);
    }

    #[test]
    fn dead_zone_tightens_effective_deadline() {
        // 3100 s of work against a 60-min deadline: 1 token meets the
        // raw deadline (3100 < 3600) but not a 50-min shifted one
        // (3100 > 3000), so a 10-minute dead zone asks for 2 tokens.
        let without = controller(
            3_100.0,
            60,
            ControlParams {
                slack: 1.0,
                hysteresis: 1.0,
                dead_zone: SimDuration::ZERO,
                min_allocation: 1,
            },
        );
        let with = controller(
            3_100.0,
            60,
            ControlParams {
                slack: 1.0,
                hysteresis: 1.0,
                dead_zone: SimDuration::from_mins(10),
                min_allocation: 1,
            },
        );
        assert_eq!(without.raw_allocation(&[0.0], 0.0, 0.0), 1);
        assert_eq!(with.raw_allocation(&[0.0], 0.0, 0.0), 2);
    }

    #[test]
    fn dead_zone_gate_blocks_increases_when_on_schedule() {
        // A model whose raw allocation can exceed the current one even
        // while the current allocation is on schedule: remaining time
        // is flat in `a` below 10 tokens, so the argmin lands high when
        // the tail begins to matter, but the current small allocation
        // already meets the shifted deadline.
        struct Step;
        impl CompletionModel for Step {
            fn remaining_secs(&self, _fs: &[f64], progress: f64, a: u32) -> f64 {
                let base = (1.0 - progress) * 2_000.0;
                if a >= 10 {
                    base * 0.5
                } else {
                    base
                }
            }
            fn max_allocation(&self) -> u32 {
                100
            }
        }
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::from_mins(3),
            min_allocation: 1,
        };
        let mut c = JockeyController::new(
            Arc::new(Step),
            indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(60)),
            params,
        );
        // First decision adopts the raw allocation (1: 2000 s meets the
        // 57-minute shifted deadline at any allocation).
        let g0 = c.tick(&status(0.0, 0.0, 0)).guarantee;
        assert_eq!(g0, 1);
        // Still on schedule later: no escalation.
        let g1 = c.tick(&status(0.5, 10.0, g0)).guarantee;
        assert_eq!(g1, 1);
    }

    #[test]
    fn impossible_deadline_pushes_to_max() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(1_000_000.0, 60, params);
        let d = c.tick(&status(0.0, 0.0, 0));
        // No allocation meets the deadline; utility still improves with
        // earlier completion, so the loop escalates to the cap.
        assert_eq!(d.guarantee, 100);
    }

    #[test]
    fn deadline_change_triggers_reallocation() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(6_000.0, 60, params);
        let before = c.tick(&status(0.0, 0.0, 0)).guarantee;
        c.deadline_changed(SimDuration::from_mins(30));
        let after = c.tick(&status(0.0, 1.0, before)).guarantee;
        assert!(after > before, "{after} vs {before}");
        // Relaxing the deadline releases resources again.
        c.deadline_changed(SimDuration::from_mins(120));
        let relaxed = c.tick(&status(0.1, 2.0, after)).guarantee;
        assert!(relaxed < after);
    }

    #[test]
    fn finished_job_releases_to_minimum() {
        let mut c = controller(6_000.0, 60, ControlParams::default());
        c.tick(&status(0.0, 0.0, 0));
        let d = c.tick(&status(1.0, 20.0, 5));
        assert_eq!(d.guarantee, 1);
    }

    #[test]
    fn predicted_completion_is_reported() {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let mut c = controller(6_000.0, 60, params);
        let d = c.tick(&status(0.0, 0.0, 0));
        // 2 tokens -> 3000 s predicted completion.
        assert_eq!(d.predicted_completion, Some(3_000.0));
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn rejects_sub_one_slack() {
        ControlParams {
            slack: 0.9,
            ..ControlParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn rejects_zero_hysteresis() {
        ControlParams {
            hysteresis: 0.0,
            ..ControlParams::default()
        }
        .validate();
    }
}
