//! Piecewise-linear job utility functions.
//!
//! §2.2: "Directly specifying a utility function to indicate a job's
//! deadline and importance alleviates this problem for our users." The
//! evaluation (§5.1) uses, for a deadline of `d` minutes, the
//! piecewise-linear function through `(0, 1)`, `(d, 1)`, `(d+10, −1)`,
//! `(d+1000, −1000)`: flat until the deadline, dropping sharply after
//! it, and ever more negative the later the job finishes.

use jockey_simrt::time::SimDuration;

/// A piecewise-linear utility over completion time (seconds from job
/// start). Between knots the function interpolates linearly; beyond the
/// last knot it extrapolates the final segment's slope.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilityFunction {
    /// `(completion_secs, utility)` knots, strictly increasing in time.
    knots: Vec<(f64, f64)>,
    /// The deadline this function encodes, if built from one.
    deadline: Option<SimDuration>,
}

impl UtilityFunction {
    /// Builds a utility from explicit knots.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two knots are given or times are not
    /// strictly increasing.
    pub fn from_knots(knots: Vec<(f64, f64)>) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        assert!(
            knots.windows(2).all(|w| w[0].0 < w[1].0),
            "knot times must be strictly increasing"
        );
        UtilityFunction {
            knots,
            deadline: None,
        }
    }

    /// The paper's standard deadline utility (§5.1): for deadline `d`,
    /// the function through `(0, 1)`, `(d, 1)`, `(d + 10 min, −1)`,
    /// `(d + 1000 min, −1000)`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn deadline(deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        let d = deadline.as_secs_f64();
        UtilityFunction {
            knots: vec![
                (0.0, 1.0),
                (d, 1.0),
                (d + 600.0, -1.0),
                (d + 60_000.0, -1000.0),
            ],
            deadline: Some(deadline),
        }
    }

    /// The deadline encoded by this function, if any.
    pub fn deadline_duration(&self) -> Option<SimDuration> {
        self.deadline
    }

    /// Evaluates the utility of completing at `t_secs` from job start.
    pub fn eval(&self, t_secs: f64) -> f64 {
        let k = &self.knots;
        if t_secs <= k[0].0 {
            return k[0].1;
        }
        for w in k.windows(2) {
            let (t0, u0) = w[0];
            let (t1, u1) = w[1];
            if t_secs <= t1 {
                return u0 + (u1 - u0) * (t_secs - t0) / (t1 - t0);
            }
        }
        // Extrapolate the final slope.
        let (t0, u0) = k[k.len() - 2];
        let (t1, u1) = k[k.len() - 1];
        u1 + (u1 - u0) / (t1 - t0) * (t_secs - t1)
    }

    /// A copy shifted left by `shift`: `U'(t) = U(t + shift)`. This is
    /// how the control loop's dead zone tightens the deadline (§4.3).
    pub fn shifted_left(&self, shift: SimDuration) -> Self {
        let s = shift.as_secs_f64();
        let knots = self
            .knots
            .iter()
            .map(|&(t, u)| (t - s, u))
            .collect::<Vec<_>>();
        // Times may now start below zero but remain strictly increasing.
        UtilityFunction {
            knots,
            deadline: self
                .deadline
                .map(|d| SimDuration::from_secs_f64((d.as_secs_f64() - s).max(0.0))),
        }
    }

    /// A copy with the deadline replaced, preserving the standard
    /// shape. Only valid on functions built by
    /// [`UtilityFunction::deadline`].
    ///
    /// # Panics
    ///
    /// Panics if this function was not built from a deadline.
    pub fn with_deadline(&self, new_deadline: SimDuration) -> Self {
        assert!(
            self.deadline.is_some(),
            "with_deadline requires a deadline-shaped utility"
        );
        UtilityFunction::deadline(new_deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_shape_matches_paper() {
        let d = SimDuration::from_mins(60);
        let u = UtilityFunction::deadline(d);
        assert_eq!(u.eval(0.0), 1.0);
        assert_eq!(u.eval(3_600.0), 1.0);
        assert_eq!(u.eval(1_800.0), 1.0);
        // 10 minutes late: -1.
        assert!((u.eval(3_600.0 + 600.0) - (-1.0)).abs() < 1e-9);
        // Halfway through the drop: 0.
        assert!(u.eval(3_600.0 + 300.0).abs() < 1e-9);
        // 1000 minutes late: -1000.
        assert!((u.eval(3_600.0 + 60_000.0) - (-1000.0)).abs() < 1e-9);
        assert_eq!(u.deadline_duration(), Some(d));
    }

    #[test]
    fn extrapolates_final_slope() {
        let u = UtilityFunction::deadline(SimDuration::from_mins(10));
        let end = 600.0 + 60_000.0;
        let slope = (-1000.0 - (-1.0)) / (60_000.0 - 600.0);
        let expected = -1000.0 + slope * 1_000.0;
        assert!((u.eval(end + 1_000.0) - expected).abs() < 1e-6);
    }

    #[test]
    fn earlier_is_never_worse() {
        let u = UtilityFunction::deadline(SimDuration::from_mins(45));
        let mut prev = f64::INFINITY;
        for i in 0..200 {
            let t = i as f64 * 60.0;
            let v = u.eval(t);
            assert!(v <= prev + 1e-12, "utility increased at {t}");
            prev = v;
        }
    }

    #[test]
    fn shifted_left_tightens_deadline() {
        let u = UtilityFunction::deadline(SimDuration::from_mins(60));
        let s = u.shifted_left(SimDuration::from_mins(3));
        // At 57 minutes the shifted function is still flat.
        assert_eq!(s.eval(57.0 * 60.0), 1.0);
        // At 60 minutes the shifted function has started dropping.
        assert!(s.eval(60.0 * 60.0) < 1.0);
        assert_eq!(s.deadline_duration(), Some(SimDuration::from_mins(57)));
    }

    #[test]
    fn with_deadline_replaces() {
        let u = UtilityFunction::deadline(SimDuration::from_mins(60));
        let v = u.with_deadline(SimDuration::from_mins(30));
        assert_eq!(v.eval(1_900.0), 1.0 - (1_900.0 - 1_800.0) / 600.0 * 2.0);
        assert_eq!(v.deadline_duration(), Some(SimDuration::from_mins(30)));
    }

    #[test]
    fn custom_knots_interpolate() {
        let u = UtilityFunction::from_knots(vec![(0.0, 10.0), (100.0, 0.0)]);
        assert_eq!(u.eval(-5.0), 10.0);
        assert_eq!(u.eval(50.0), 5.0);
        assert_eq!(u.eval(100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_knots() {
        UtilityFunction::from_knots(vec![(5.0, 1.0), (5.0, 0.0)]);
    }
}
