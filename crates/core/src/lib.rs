//! Jockey: guaranteed job latency for data-parallel clusters.
//!
//! This crate implements the paper's contribution — the three
//! components of Fig. 2 plus the baselines and extensions evaluated in
//! §5:
//!
//! - [`cpa`]: the **offline job simulator pipeline** producing
//!   `C(p, a)`, the distribution of remaining completion time at
//!   progress `p` under token allocation `a` (§4.1). Training runs the
//!   shared cluster simulator in dedicated mode, replaying the job's
//!   measured profile, and indexes remaining times by a progress
//!   indicator.
//! - [`predict`]: the modified **Amdahl's-Law model** (§4.1) used by
//!   the "Jockey w/o simulator" baseline, and the [`predict::CompletionModel`]
//!   trait both predictors implement.
//! - [`progress`]: the six **job progress indicators** of §4.2/§5.4
//!   (`totalworkWithQ`, `totalwork`, `vertexfrac`, `cp`, `minstage`,
//!   `minstage-inf`).
//! - [`control`]: the **resource-allocation control loop** (§4.3) with
//!   slack, hysteresis and dead zone — composed from the pure
//!   [`alloc::ArgminPolicy`] decision core and the
//!   [`conditioner`] stage pipeline.
//! - [`alloc`]: the side-effect-free **allocation policy** seam
//!   (progress → candidate utilities → raw argmin).
//! - [`conditioner`]: §4.3's conditioning mechanisms (slack, dead-zone
//!   gate, hysteresis EWMA, min clamp) as **composable stages** with
//!   per-stage trace attribution.
//! - [`layer`]: the **control-layer middleware** seam — fallback,
//!   recalibration and arbitration stack as decorators over any
//!   controller.
//! - [`plane`]: the **multi-job control plane**: N concurrent SLO jobs
//!   against one shared budget with sharded slots and an atomic
//!   snapshot instead of a global lock.
//! - [`utility`]: piecewise-linear job utility functions.
//! - [`policy`]: ready-made policies — Jockey, Jockey w/o adaptation,
//!   Jockey w/o simulator, and max-allocation — as used in §5.2.
//! - [`oracle`]: the oracle allocation `O(T, d) = ceil(T/d)` impact
//!   baseline (§5.1).
//! - [`admission`]: SLO admission control ("does this job fit?", §1).
//! - [`arbiter`]: the multi-job marginal-utility arbiter (§4.4's
//!   future work) — both one-shot [`arbiter::arbitrate`] splits and the
//!   live [`arbiter::SharedArbiter`] that coordinates concurrent
//!   controllers against one budget.
//! - [`fallback`]: the §5.6 fair-share fallback guard on persistent
//!   model error.
//! - [`recal`]: §4.4/§5.6 online model recalibration (runtime
//!   inflation tracking).
//! - [`sketch`]: the mergeable per-cell **quantile sketch** backing
//!   `C(p, a)` cells — exact by default, bounded-memory on request,
//!   with a tracked rank-error bound.
//! - [`online`]: the **online model lifecycle** — versioned model
//!   store with atomic generation swap, drift detection over observed
//!   vs. predicted completions, and a structure-keyed prior library
//!   for cold-start jobs.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` in the workspace root for the
//! end-to-end flow: profile a job, train `C(p, a)`, and run the control
//! loop against a noisy shared cluster.

pub mod admission;
pub mod alloc;
pub mod arbiter;
pub mod conditioner;
pub mod control;
pub mod cpa;
mod dense;
pub mod fallback;
pub mod layer;
pub mod online;
pub mod oracle;
pub mod plane;
pub mod policy;
pub mod predict;
pub mod progress;
pub mod recal;
pub mod sketch;
pub mod utility;

pub use admission::{AdmissionController, AdmissionError, Reservation};
pub use alloc::{
    AllocationPolicy, ArgminPolicy, SpeculationLevel, SpeculativeArgmin, SpeculativeDecision,
};
pub use arbiter::{ArbitratedController, ArbitrationLayer, SharedArbiter};
pub use conditioner::{
    ConditionStage, ConditionerPipeline, DeadZoneGate, HysteresisEwma, MinClamp, PipelineTrace,
    SlackStage, StageCtx, StageStep, TickAttribution,
};
pub use control::{
    ControlParams, ControlTick, ControlTrace, InvalidControlParams, JockeyController,
};
pub use cpa::{CpaModel, InvalidTrainConfig, ModelLoadError, RunObservation, TrainConfig};
pub use fallback::{with_fallback, FallbackLayer, GuardedController};
pub use layer::{ControlLayer, Layered};
pub use online::{
    structure_hash, AbsorbOutcome, DriftConfig, DriftDetector, ModelHandle, ModelLifecycleStats,
    ModelStore, OnlineConfig, PriorLibrary, RecordedRun,
};
pub use oracle::oracle_allocation;
pub use plane::{ControlPlane, JobHandle, PlaneStats};
pub use policy::Policy;
pub use predict::{min_feasible_allocation, AmdahlModel, CompletionModel};
pub use progress::{IndicatorContext, ProgressIndicator};
pub use recal::{recalibrated, RecalibratingController, RecalibrationLayer, ScaledModel};
pub use sketch::CellSketch;
pub use utility::UtilityFunction;
