//! The §4.3 conditioning pipeline: slack, dead zone, hysteresis and
//! the min-allocation clamp as individual composable stages.
//!
//! The monolithic control loop fused four conditioning mechanisms into
//! one tick function. Here each is a [`ConditionStage`] that transforms
//! the proposed allocation (or, for slack, the prediction inflation)
//! in sequence:
//!
//! ```text
//! raw A^r ──► slack ──► dead-zone gate ──► hysteresis EWMA ──► clamp ──► guarantee
//!             (S·C)     (increases only    (A^s += α(A^r−A^s))  (⌈·⌉, ≥ min)
//!                        when ≥ D behind)
//! ```
//!
//! Every run records a per-stage [`StageStep`] (input → output), so a
//! surprising guarantee can be attributed to the exact stage that
//! produced it ([`PipelineTrace`]). The stock §4.3 stack is
//! [`ConditionerPipeline::standard`]; tests and experiments can compose
//! any subset (e.g. hysteresis-only) and get the same closed-form
//! behavior each stage has in the paper.

use std::collections::VecDeque;

use jockey_simrt::time::SimDuration;

use crate::control::ControlParams;
use crate::predict::CompletionModel;
use crate::utility::UtilityFunction;

/// Read-only inputs every stage sees for one control tick.
pub struct StageCtx<'a> {
    /// Per-stage completion fractions `f_s`.
    pub fs: &'a [f64],
    /// Scalar progress `p` from the job's indicator.
    pub progress: f64,
    /// Elapsed job time `t_r` in seconds.
    pub elapsed_secs: f64,
    /// The controller's completion model.
    pub model: &'a dyn CompletionModel,
    /// The job's (unshifted) utility function.
    pub utility: &'a UtilityFunction,
    /// Total prediction multiplier contributed by the pipeline's
    /// inflation stages (the slack `S`).
    pub inflation: f64,
    /// The smoothed allocation in force before this tick (`A^s_{t−1}`),
    /// `None` on the first decision.
    pub in_force: Option<f64>,
}

/// One composable conditioning mechanism.
///
/// Stages run in pipeline order; each receives the previous stage's
/// output as `proposed`. A stage can also contribute a prediction
/// inflation factor (consumed *before* the raw argmin — slack
/// multiplies predictions, not allocations) and report the allocation
/// it holds in force (hysteresis memory).
pub trait ConditionStage: Send {
    /// Short stable name used in trace attribution.
    fn name(&self) -> &'static str;

    /// Prediction multiplier this stage contributes (default 1).
    fn inflation(&self) -> f64 {
        1.0
    }

    /// Transforms the proposed allocation.
    fn condition(&mut self, proposed: f64, ctx: &StageCtx<'_>) -> f64;

    /// The smoothed allocation this stage remembers, if any.
    fn in_force(&self) -> Option<f64> {
        None
    }

    /// Drops transient state (called on deadline changes: a new SLO is
    /// a fresh sizing problem).
    fn reset(&mut self) {}
}

/// True when the job is at least `D` behind schedule: predicted, at
/// allocation `probe`, to finish past the dead-zone-shifted deadline.
/// With no deadline encoded there is nothing to be behind, and the
/// verdict is `true` (no gating).
pub fn behind_schedule(ctx: &StageCtx<'_>, probe: u32, dead_zone: SimDuration) -> bool {
    let Some(deadline) = ctx.utility.deadline_duration() else {
        return true;
    };
    let remaining = ctx.inflation * ctx.model.remaining_secs(ctx.fs, ctx.progress, probe);
    ctx.elapsed_secs + remaining > deadline.as_secs_f64() - dead_zone.as_secs_f64()
}

/// True when the job is at least `D` *ahead* of the (already
/// dead-zone-shifted) schedule at allocation `probe`. Decreases are
/// **not** gated on this — the §4.3 dead zone only suppresses
/// increases — the verdict is recorded per tick as a margin diagnostic.
pub fn ahead_of_schedule(ctx: &StageCtx<'_>, probe: u32, dead_zone: SimDuration) -> bool {
    let Some(deadline) = ctx.utility.deadline_duration() else {
        return true;
    };
    let remaining = ctx.inflation * ctx.model.remaining_secs(ctx.fs, ctx.progress, probe);
    ctx.elapsed_secs + remaining <= deadline.as_secs_f64() - 2.0 * dead_zone.as_secs_f64()
}

/// Slack stage: inflates predictions by `S` (§4.3's compensation for
/// model error). Pass-through for allocations.
#[derive(Clone, Copy, Debug)]
pub struct SlackStage {
    /// The prediction multiplier `S ≥ 1`.
    pub slack: f64,
}

impl ConditionStage for SlackStage {
    fn name(&self) -> &'static str {
        "slack"
    }

    fn inflation(&self) -> f64 {
        self.slack
    }

    fn condition(&mut self, proposed: f64, _ctx: &StageCtx<'_>) -> f64 {
        proposed
    }
}

/// Dead-zone gate: increases are applied only when the job is at least
/// `D` behind schedule at the allocation in force; decreases (token
/// releases, Fig. 6(c)) always pass.
#[derive(Clone, Copy, Debug)]
pub struct DeadZoneGate {
    /// The dead zone `D`.
    pub dead_zone: SimDuration,
    /// Floor used when rounding the in-force allocation to a probe.
    pub min_allocation: u32,
}

impl DeadZoneGate {
    /// The allocation whose schedule verdict gates this tick: the
    /// in-force allocation rounded to a token count (the raw proposal
    /// itself on the first decision).
    pub fn probe(&self, ctx: &StageCtx<'_>, proposed: f64) -> u32 {
        match ctx.in_force {
            None => proposed as u32,
            Some(cur) => (cur.round() as u32).max(self.min_allocation),
        }
    }
}

impl ConditionStage for DeadZoneGate {
    fn name(&self) -> &'static str {
        "dead-zone"
    }

    fn condition(&mut self, proposed: f64, ctx: &StageCtx<'_>) -> f64 {
        let Some(cur) = ctx.in_force else {
            // First decision: adopt the proposal outright — this is the
            // pessimistic initial sizing of §1.
            return proposed;
        };
        if proposed > cur {
            let probe = (cur.round() as u32).max(self.min_allocation);
            if behind_schedule(ctx, probe, self.dead_zone) {
                proposed
            } else {
                cur
            }
        } else {
            proposed
        }
    }
}

/// Hysteresis stage: `A^s_t = A^s_{t−1} + α (target − A^s_{t−1})`.
/// The first decision jumps straight to the target.
#[derive(Clone, Copy, Debug)]
pub struct HysteresisEwma {
    /// The coefficient `α ∈ (0, 1]`; 1.0 disables smoothing.
    pub alpha: f64,
    smoothed: Option<f64>,
}

impl HysteresisEwma {
    /// A fresh filter with no smoothed state.
    pub fn new(alpha: f64) -> Self {
        HysteresisEwma {
            alpha,
            smoothed: None,
        }
    }
}

impl ConditionStage for HysteresisEwma {
    fn name(&self) -> &'static str {
        "hysteresis"
    }

    fn condition(&mut self, proposed: f64, _ctx: &StageCtx<'_>) -> f64 {
        let next = match self.smoothed {
            None => proposed,
            Some(cur) => cur + self.alpha * (proposed - cur),
        };
        self.smoothed = Some(next);
        next
    }

    fn in_force(&self) -> Option<f64> {
        self.smoothed
    }

    fn reset(&mut self) {
        self.smoothed = None;
    }
}

/// Final clamp: the applied guarantee is `⌈A^s⌉`, at least
/// `min_allocation`.
#[derive(Clone, Copy, Debug)]
pub struct MinClamp {
    /// Lower bound on the applied guarantee.
    pub min_allocation: u32,
}

impl ConditionStage for MinClamp {
    fn name(&self) -> &'static str {
        "min-clamp"
    }

    fn condition(&mut self, proposed: f64, _ctx: &StageCtx<'_>) -> f64 {
        proposed.ceil().max(f64::from(self.min_allocation))
    }
}

/// One stage's contribution to a tick: what came in, what went out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageStep {
    /// The stage's [`ConditionStage::name`].
    pub stage: &'static str,
    /// Allocation proposed to the stage.
    pub input: f64,
    /// Allocation the stage produced.
    pub output: f64,
}

/// Per-stage attribution of one conditioned tick.
#[derive(Clone, Debug)]
pub struct TickAttribution {
    /// Elapsed job time `t_r` at the tick.
    pub elapsed_secs: f64,
    /// Total prediction inflation in force.
    pub inflation: f64,
    /// Stage-by-stage transformations, pipeline order.
    pub steps: Vec<StageStep>,
}

/// A bounded journal of [`TickAttribution`]s (most recent kept).
#[derive(Clone, Debug)]
pub struct PipelineTrace {
    capacity: usize,
    ticks: VecDeque<TickAttribution>,
}

impl Default for PipelineTrace {
    fn default() -> Self {
        PipelineTrace::new(1024)
    }
}

impl PipelineTrace {
    /// Creates a trace retaining at most `capacity` ticks (≥ 1).
    pub fn new(capacity: usize) -> Self {
        PipelineTrace {
            capacity: capacity.max(1),
            ticks: VecDeque::new(),
        }
    }

    fn record(&mut self, tick: TickAttribution) {
        if self.ticks.len() == self.capacity {
            self.ticks.pop_front();
        }
        self.ticks.push_back(tick);
    }

    /// Retained ticks, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TickAttribution> {
        self.ticks.iter()
    }

    /// The most recent tick's attribution.
    pub fn last(&self) -> Option<&TickAttribution> {
        self.ticks.back()
    }

    /// Number of retained ticks.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }
}

/// An ordered stack of [`ConditionStage`]s with per-tick attribution.
pub struct ConditionerPipeline {
    stages: Vec<Box<dyn ConditionStage>>,
    trace: PipelineTrace,
}

impl ConditionerPipeline {
    /// A pipeline from explicit stages (run in the given order).
    pub fn new(stages: Vec<Box<dyn ConditionStage>>) -> Self {
        ConditionerPipeline {
            stages,
            trace: PipelineTrace::default(),
        }
    }

    /// The stock §4.3 stack: slack → dead-zone gate → hysteresis →
    /// min clamp, parameterized by `params`.
    pub fn standard(params: &ControlParams) -> Self {
        ConditionerPipeline::new(vec![
            Box::new(SlackStage {
                slack: params.slack,
            }),
            Box::new(DeadZoneGate {
                dead_zone: params.dead_zone,
                min_allocation: params.min_allocation,
            }),
            Box::new(HysteresisEwma::new(params.hysteresis)),
            Box::new(MinClamp {
                min_allocation: params.min_allocation,
            }),
        ])
    }

    /// Total prediction multiplier (product over stages) — the slack
    /// `S` the argmin core must apply.
    pub fn inflation(&self) -> f64 {
        self.stages.iter().map(|s| s.inflation()).product()
    }

    /// The smoothed allocation currently in force, from the last stage
    /// holding one (hysteresis memory); `None` before the first run.
    pub fn in_force(&self) -> Option<f64> {
        self.stages.iter().rev().find_map(|s| s.in_force())
    }

    /// Runs the raw allocation through every stage, recording per-stage
    /// attribution, and returns the conditioned value.
    pub fn run(&mut self, raw: f64, ctx: &StageCtx<'_>) -> f64 {
        let mut steps = Vec::with_capacity(self.stages.len());
        let mut value = raw;
        for stage in &mut self.stages {
            let out = stage.condition(value, ctx);
            steps.push(StageStep {
                stage: stage.name(),
                input: value,
                output: out,
            });
            value = out;
        }
        self.trace.record(TickAttribution {
            elapsed_secs: ctx.elapsed_secs,
            inflation: ctx.inflation,
            steps,
        });
        value
    }

    /// Resets every stage's transient state (deadline changes).
    pub fn reset(&mut self) {
        for stage in &mut self.stages {
            stage.reset();
        }
    }

    /// The per-stage attribution journal.
    pub fn trace(&self) -> &PipelineTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        work: f64,
    }

    impl CompletionModel for Toy {
        fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
            (1.0 - progress) * self.work / f64::from(allocation.max(1))
        }
        fn max_allocation(&self) -> u32 {
            100
        }
    }

    fn ctx<'a>(
        model: &'a dyn CompletionModel,
        utility: &'a UtilityFunction,
        elapsed_secs: f64,
        inflation: f64,
        in_force: Option<f64>,
    ) -> StageCtx<'a> {
        StageCtx {
            fs: &[],
            progress: 0.0,
            elapsed_secs,
            model,
            utility,
            inflation,
            in_force,
        }
    }

    #[test]
    fn pipeline_inflation_is_the_product_of_stages() {
        let p = ConditionerPipeline::new(vec![
            Box::new(SlackStage { slack: 1.2 }),
            Box::new(SlackStage { slack: 1.5 }),
        ]);
        assert!((p.inflation() - 1.8).abs() < 1e-12);
        // The stock pipeline's inflation is exactly the slack.
        let std = ConditionerPipeline::standard(&ControlParams::default());
        assert!((std.inflation() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn attribution_records_every_stage() {
        let params = ControlParams::default();
        let mut p = ConditionerPipeline::standard(&params);
        let model = Toy { work: 6_000.0 };
        let utility = UtilityFunction::deadline(SimDuration::from_mins(60));
        let c = ctx(&model, &utility, 0.0, params.slack, None);
        let v = p.run(3.0, &c);
        assert_eq!(v, 3.0);
        let tick = p.trace().last().unwrap();
        let names: Vec<&str> = tick.steps.iter().map(|s| s.stage).collect();
        assert_eq!(names, ["slack", "dead-zone", "hysteresis", "min-clamp"]);
        assert_eq!(tick.steps[0].input, 3.0);
        assert_eq!(tick.steps[3].output, 3.0);
    }

    #[test]
    fn trace_is_bounded() {
        let mut t = PipelineTrace::new(2);
        for i in 0..5 {
            t.record(TickAttribution {
                elapsed_secs: f64::from(i),
                inflation: 1.0,
                steps: vec![],
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.last().unwrap().elapsed_secs, 4.0);
        assert_eq!(t.iter().next().unwrap().elapsed_secs, 3.0);
    }

    #[test]
    fn reset_clears_hysteresis_memory() {
        let mut p = ConditionerPipeline::standard(&ControlParams::default());
        let model = Toy { work: 6_000.0 };
        let utility = UtilityFunction::deadline(SimDuration::from_mins(60));
        let c = ctx(&model, &utility, 0.0, 1.2, None);
        p.run(4.0, &c);
        assert_eq!(p.in_force(), Some(4.0));
        p.reset();
        assert_eq!(p.in_force(), None);
    }
}
