//! SLO admission control: "does this job fit?" (§1).
//!
//! "Jockey's job model can be used to check whether a newly submitted
//! job would 'fit' in the cluster – that is, that all previously
//! accepted SLO jobs would still be able to meet their deadlines –
//! before permitting it to run." This module implements that check as a
//! token reservation ledger: each admitted SLO job reserves the minimum
//! allocation whose slack-inflated fresh prediction meets its deadline;
//! a new job is admitted only if the total reservation stays within the
//! SLO capacity.

use crate::predict::CompletionModel;
use jockey_simrt::time::SimDuration;
use std::collections::HashMap;
use std::fmt;

/// Why a job was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// No allocation in the model's grid meets the deadline even on a
    /// dedicated cluster — the deadline is infeasible (§2.2: it cannot
    /// be shorter than the critical path).
    Infeasible,
    /// Admitting the job would over-commit the SLO capacity.
    InsufficientCapacity {
        /// Tokens the new job needs.
        required: u32,
        /// Tokens currently unreserved.
        available: u32,
    },
    /// A job with this name is already admitted.
    DuplicateName,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Infeasible => write!(f, "deadline infeasible at any allocation"),
            AdmissionError::InsufficientCapacity {
                required,
                available,
            } => write!(
                f,
                "needs {required} guaranteed tokens but only {available} are unreserved"
            ),
            AdmissionError::DuplicateName => write!(f, "job already admitted"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One admitted job's reservation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Job name.
    pub name: String,
    /// Reserved guaranteed tokens.
    pub tokens: u32,
}

/// A token-reservation admission controller over a fixed SLO capacity.
///
/// # Examples
///
/// ```no_run
/// use jockey_core::admission::AdmissionController;
/// use jockey_core::predict::CompletionModel;
/// use jockey_simrt::time::SimDuration;
///
/// fn demo(model: &dyn CompletionModel, stage_count: usize) {
///     let mut ac = AdmissionController::new(100);
///     let fresh = vec![0.0; stage_count];
///     let tokens = ac
///         .try_admit("hourly-report", model, &fresh, SimDuration::from_mins(60), 1.2)
///         .unwrap();
///     assert!(tokens <= 100);
///     ac.release("hourly-report");
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct AdmissionController {
    capacity: u32,
    /// Reservations in no particular order (releases swap-remove).
    admitted: Vec<Reservation>,
    /// Name → position in `admitted`, so duplicate checks and releases
    /// are O(1) instead of scanning the ledger — over a churn run the
    /// scan costs O(N²) total.
    index: HashMap<String, usize>,
    /// Running total of reserved tokens, maintained on admit/release.
    reserved: u32,
}

impl AdmissionController {
    /// Creates a controller managing `capacity` guaranteed tokens.
    pub fn new(capacity: u32) -> Self {
        AdmissionController {
            capacity,
            admitted: Vec::new(),
            index: HashMap::new(),
            reserved: 0,
        }
    }

    /// Total capacity under management.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Tokens currently reserved by admitted jobs.
    pub fn reserved(&self) -> u32 {
        self.reserved
    }

    /// Tokens still unreserved.
    pub fn available(&self) -> u32 {
        self.capacity.saturating_sub(self.reserved())
    }

    /// The current reservations (in no particular order — releases
    /// compact the ledger by swapping the last entry into the hole).
    pub fn admitted(&self) -> &[Reservation] {
        &self.admitted
    }

    /// Whether a job with this name holds a reservation.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Reserves a pre-sized token count, the primitive under
    /// [`AdmissionController::try_admit`] — used when the caller has
    /// already sized the job by other means.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::InsufficientCapacity`] when the reservation
    /// does not fit, [`AdmissionError::DuplicateName`] on name reuse.
    pub fn try_reserve(&mut self, name: &str, tokens: u32) -> Result<u32, AdmissionError> {
        if self.index.contains_key(name) {
            return Err(AdmissionError::DuplicateName);
        }
        let available = self.available();
        if tokens > available {
            return Err(AdmissionError::InsufficientCapacity {
                required: tokens,
                available,
            });
        }
        self.index.insert(name.to_string(), self.admitted.len());
        self.admitted.push(Reservation {
            name: name.to_string(),
            tokens,
        });
        self.reserved += tokens;
        Ok(tokens)
    }

    /// Attempts to admit a job: sizes its reservation from the model's
    /// fresh prediction (per-stage fractions `fs`, usually all zero)
    /// against the deadline, and reserves it if it fits. Returns the
    /// reserved token count.
    ///
    /// Takes any [`CompletionModel`], so the ledger works unchanged
    /// whether the sizing comes from a frozen `CpaModel`, a live
    /// [`crate::online::ModelHandle`] that re-resolves the newest
    /// generation on every admission, or the Amdahl fallback.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Infeasible`] when no allocation meets the
    /// deadline, [`AdmissionError::InsufficientCapacity`] when the
    /// cluster cannot hold the reservation, and
    /// [`AdmissionError::DuplicateName`] on name reuse.
    pub fn try_admit(
        &mut self,
        name: &str,
        model: &dyn CompletionModel,
        fs: &[f64],
        deadline: SimDuration,
        slack: f64,
    ) -> Result<u32, AdmissionError> {
        if self.index.contains_key(name) {
            return Err(AdmissionError::DuplicateName);
        }
        let required = model
            .size_for_deadline(fs, deadline, slack)
            .ok_or(AdmissionError::Infeasible)?;
        self.try_reserve(name, required)
    }

    /// Releases a job's reservation (at completion). Returns the freed
    /// tokens, or `None` if the job was not admitted.
    pub fn release(&mut self, name: &str) -> Option<u32> {
        let idx = self.index.remove(name)?;
        let freed = self.admitted.swap_remove(idx);
        if let Some(moved) = self.admitted.get(idx) {
            self.index.insert(moved.name.clone(), idx);
        }
        self.reserved -= freed.tokens;
        Some(freed.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpa::CpaModel;
    use crate::progress::{IndicatorContext, ProgressIndicator};
    use crate::TrainConfig;
    use jockey_cluster::{ClusterConfig, ClusterSim, FixedAllocation, JobSpec};
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use std::sync::Arc;

    /// Fresh per-stage fractions for the two-stage test model.
    const FS: &[f64] = &[0.0, 0.0];

    fn model() -> CpaModel {
        let mut b = JobGraphBuilder::new("adm");
        let m = b.stage("map", 12);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(10.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), 3);
        sim.add_job(spec, Box::new(FixedAllocation(6)));
        let profile = sim.run_single().profile;
        let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        CpaModel::train(
            &graph,
            &profile,
            &ctx,
            &TrainConfig::fast(vec![2, 4, 8]),
            42,
        )
    }

    #[test]
    fn admits_until_capacity_then_rejects() {
        let m = model();
        let d = SimDuration::from_secs(120);
        let mut ac = AdmissionController::new(8);
        let first = ac.try_admit("a", &m, FS, d, 1.0).unwrap();
        assert!(first >= 1);
        // Keep admitting identical jobs until capacity runs out.
        let mut names = Vec::new();
        for i in 0.. {
            let name = format!("job{i}");
            match ac.try_admit(&name, &m, FS, d, 1.0) {
                Ok(_) => names.push(name),
                Err(AdmissionError::InsufficientCapacity {
                    required,
                    available,
                }) => {
                    assert!(required > available);
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(ac.reserved() <= ac.capacity());
        assert!(!names.is_empty());
    }

    #[test]
    fn infeasible_deadline_rejected() {
        let m = model();
        let mut ac = AdmissionController::new(100);
        assert_eq!(
            ac.try_admit("x", &m, FS, SimDuration::from_secs(1), 1.0),
            Err(AdmissionError::Infeasible)
        );
        assert_eq!(ac.reserved(), 0);
    }

    #[test]
    fn duplicate_names_rejected_and_release_frees() {
        let m = model();
        let d = SimDuration::from_secs(120);
        let mut ac = AdmissionController::new(16);
        let t = ac.try_admit("a", &m, FS, d, 1.0).unwrap();
        assert_eq!(
            ac.try_admit("a", &m, FS, d, 1.0),
            Err(AdmissionError::DuplicateName)
        );
        assert_eq!(ac.release("a"), Some(t));
        assert_eq!(ac.release("a"), None);
        assert_eq!(ac.reserved(), 0);
        // Re-admission after release succeeds.
        assert!(ac.try_admit("a", &m, FS, d, 1.0).is_ok());
    }

    #[test]
    fn running_total_and_index_survive_churn() {
        // Interleaved reserve/release churn: the O(1) running total and
        // name index must always agree with a from-scratch recount.
        let mut ac = AdmissionController::new(1000);
        for round in 0_u32..50 {
            for i in 0..20 {
                let tokens = 1 + (round + i) % 7;
                ac.try_reserve(&format!("job-{i}"), tokens).unwrap();
            }
            // Release a varying subset, out of admission order.
            for i in (0..20).filter(|i| (i + round) % 3 != 0) {
                assert!(ac.release(&format!("job-{i}")).is_some());
            }
            let recount: u32 = ac.admitted().iter().map(|r| r.tokens).sum();
            assert_eq!(ac.reserved(), recount, "round {round}");
            for r in ac.admitted() {
                assert!(ac.contains(&r.name));
            }
            assert_eq!(ac.available(), ac.capacity() - recount);
            // Drain completely for the next round.
            let names: Vec<String> = ac.admitted().iter().map(|r| r.name.clone()).collect();
            for n in names {
                ac.release(&n);
            }
            assert_eq!(ac.reserved(), 0);
        }
    }

    #[test]
    fn tighter_deadlines_reserve_more() {
        let m = model();
        let mut ac = AdmissionController::new(100);
        let loose = ac
            .try_admit("loose", &m, FS, SimDuration::from_secs(300), 1.0)
            .unwrap();
        let tight = ac
            .try_admit("tight", &m, FS, SimDuration::from_secs(70), 1.0)
            .unwrap();
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }
}
