//! The `C(p, a)` completion-time model, its offline training pipeline
//! (§4.1), and the online absorb path that keeps trained models alive.
//!
//! `C(p, a)` is a random variable: the remaining time to complete the
//! job when it has made progress `p` and holds `a` tokens. The paper
//! estimates its distribution by *repeatedly simulating the job* at
//! each allocation in a grid: a run at allocation `a` finishing at time
//! `T` contributes, for every sampled instant `t`, one observation
//! `(p_t, T − t)`. At runtime the control loop only queries the
//! precomputed table, so no simulation happens on the critical path.
//!
//! Because "we care about the worst-case completion time" (§5.3), the
//! model answers queries at a configurable high percentile (default
//! p95) of the samples in a cell, interpolating linearly between grid
//! allocations. This built-in pessimism is what lets Jockey
//! "over-allocate resources at the start to compensate for potential
//! future failures" (§1).
//!
//! # Living models
//!
//! Each `(allocation, bin)` cell is a mergeable
//! [`CellSketch`](crate::sketch::CellSketch), so a completed run folds
//! into the model with [`CpaModel::absorb`] in `O(cells)` — no
//! retraining. With the default `sketch_capacity: None` the sketches
//! are *exact* (plain sorted sample lists) and the model is
//! byte-identical to the pre-sketch format; a bounded capacity trades
//! memory for the sketch's documented rank-error bound.
//! [`CpaModel::train`] itself is a thin wrapper that harvests
//! simulation runs and absorbs them into an empty model.

use std::fmt;
use std::sync::Arc;

use jockey_cluster::{
    ClusterConfig, ClusterSim, FixedAllocation, JobSpec, RunHooks, RunTrace, SimWorkspace,
};
use jockey_jobgraph::graph::JobGraph;
use jockey_jobgraph::profile::JobProfile;
use jockey_simrt::observe::ProgressSink;
use jockey_simrt::rng::SeedDeriver;
use jockey_simrt::time::{SimDuration, SimTime};

use crate::predict::{min_feasible_allocation, CompletionModel};
use crate::progress::IndicatorContext;
use crate::sketch::{CellSketch, MIN_SKETCH_CAPACITY};

/// Offline training configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Token allocations to simulate (ascending).
    pub allocations: Vec<u32>,
    /// Independent simulated runs per allocation.
    pub runs_per_allocation: usize,
    /// How often progress is sampled during each simulated run.
    pub sample_period: SimDuration,
    /// Number of progress buckets in `[0, 1]`.
    pub progress_bins: usize,
    /// Percentile (0–100) reported by queries; high values encode the
    /// paper's worst-case pessimism.
    pub percentile: f64,
    /// Simulation horizon per training run.
    pub max_sim_time: SimTime,
    /// Worker threads for training; `None` (the default) uses one per
    /// allocation. The trained model is identical for any value — RNG
    /// streams derive from grid position, never from thread scheduling.
    pub threads: Option<usize>,
    /// Per-cell quantile-sketch capacity. `None` (the default) keeps
    /// every sample — cells are exact sorted lists and the model is
    /// byte-identical to the pre-sketch format. `Some(k)` bounds each
    /// sketch level at `k` items, trading memory for the tracked
    /// rank-error bound documented on
    /// [`CellSketch`](crate::sketch::CellSketch).
    pub sketch_capacity: Option<usize>,
    /// Optional physical topology for the training simulations. `None`
    /// (the default) trains against the legacy flat dedicated cluster;
    /// `Some` trains C(p, a) against the same racks × machine-classes
    /// geometry the evaluation scenario runs on, so the model's
    /// percentiles absorb locality penalties and slow-machine classes.
    pub topology: Option<jockey_cluster::TopologyConfig>,
    /// Optional speculative-execution (clone-on-slow) configuration for
    /// the training simulations. `None` (the default) trains the legacy
    /// `C(p, a)` surface bit-identically; `Some` trains one `C(p, a, s)`
    /// surface — each allocation `a` simulates with `clone_budget` idle
    /// tokens held aside for clones, so the learned completion times
    /// reflect the cloning policy *and* the total reserved footprint
    /// `a + clone_budget` the 2D controller prices (§4.3 extended).
    pub speculation: Option<jockey_cluster::SpeculationConfig>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        // The grid reaches down to single tokens: the control loop
        // releases resources toward the *minimum* utility-maximizing
        // allocation, so the model must know how slow the job's tail
        // really is at tiny allocations.
        TrainConfig {
            allocations: [1, 2, 5]
                .into_iter()
                .chain((1..=10).map(|i| i * 10))
                .collect(),
            runs_per_allocation: 10,
            sample_period: SimDuration::from_secs(30),
            progress_bins: 100,
            percentile: 95.0,
            max_sim_time: SimTime::from_mins(24 * 60),
            threads: None,
            sketch_capacity: None,
            topology: None,
            speculation: None,
        }
    }
}

impl TrainConfig {
    /// A cheap configuration for tests: few allocations, few runs.
    /// Include small allocations so release decisions stay informed.
    pub fn fast(allocations: Vec<u32>) -> Self {
        TrainConfig {
            allocations,
            runs_per_allocation: 4,
            sample_period: SimDuration::from_secs(15),
            progress_bins: 50,
            percentile: 90.0,
            max_sim_time: SimTime::from_mins(12 * 60),
            threads: None,
            sketch_capacity: None,
            topology: None,
            speculation: None,
        }
    }

    /// Validates the configuration, returning the first problem found.
    /// NaN percentiles are rejected (`contains` on a float range is
    /// already NaN-safe; finiteness is still checked explicitly so the
    /// intent survives refactoring).
    pub fn check(&self) -> Result<(), InvalidTrainConfig> {
        if self.allocations.is_empty()
            || self.allocations[0] < 1
            || !self.allocations.windows(2).all(|w| w[0] < w[1])
        {
            return Err(InvalidTrainConfig::Allocations);
        }
        if self.runs_per_allocation < 1 {
            return Err(InvalidTrainConfig::Runs);
        }
        if self.progress_bins < 2 {
            return Err(InvalidTrainConfig::Bins(self.progress_bins));
        }
        if !self.percentile.is_finite() || !(50.0..=100.0).contains(&self.percentile) {
            return Err(InvalidTrainConfig::Percentile(self.percentile));
        }
        if self.sample_period.is_zero() {
            return Err(InvalidTrainConfig::SamplePeriod);
        }
        if let Some(k) = self.sketch_capacity {
            if k < MIN_SKETCH_CAPACITY {
                return Err(InvalidTrainConfig::SketchCapacity(k));
            }
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid train config: {e}");
        }
    }
}

/// Why a [`TrainConfig`] was rejected by [`TrainConfig::check`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InvalidTrainConfig {
    /// The allocation grid is empty, starts below 1, or is not strictly
    /// ascending.
    Allocations,
    /// `runs_per_allocation` must be `>= 1`.
    Runs,
    /// `progress_bins` must be `>= 2`.
    Bins(usize),
    /// `percentile` must be a finite value in `[50, 100]` (NaN is
    /// rejected explicitly).
    Percentile(f64),
    /// `sample_period` must be positive.
    SamplePeriod,
    /// `sketch_capacity` must be at least
    /// [`MIN_SKETCH_CAPACITY`](crate::sketch::MIN_SKETCH_CAPACITY).
    SketchCapacity(usize),
}

impl fmt::Display for InvalidTrainConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidTrainConfig::Allocations => {
                write!(
                    f,
                    "allocation grid must be non-empty, >= 1 and strictly ascending"
                )
            }
            InvalidTrainConfig::Runs => write!(f, "runs_per_allocation must be >= 1"),
            InvalidTrainConfig::Bins(v) => write!(f, "progress_bins must be >= 2, got {v}"),
            InvalidTrainConfig::Percentile(v) => {
                write!(f, "percentile must be a finite value in [50, 100], got {v}")
            }
            InvalidTrainConfig::SamplePeriod => write!(f, "sample_period must be positive"),
            InvalidTrainConfig::SketchCapacity(v) => {
                write!(
                    f,
                    "sketch_capacity must be >= {MIN_SKETCH_CAPACITY}, got {v}"
                )
            }
        }
    }
}

impl std::error::Error for InvalidTrainConfig {}

/// Default training worker count when [`TrainConfig::threads`] is
/// `None`: the machine's available parallelism. Training results are
/// byte-identical for any thread count, so this only tunes wall-clock
/// time — on a 1-core machine it keeps the sharded loops inline
/// instead of paying spawn/join overhead for no concurrency.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps progress `p` (clamped to `[0, 1]`) onto one of `bins` buckets.
/// Shared by model queries and training-time bucketing so the two can
/// never drift apart.
fn progress_bin(p: f64, bins: usize) -> usize {
    (((p.clamp(0.0, 1.0)) * bins as f64) as usize).min(bins - 1)
}

/// Linear interpolation between two grid values, repairing the
/// `inf − inf` case that arises when vacant (sample-free) rows sit
/// next to the query. Finite inputs keep the exact historical
/// expression `va + (vb − va) * w`, bit for bit; only answers the
/// straight-line formula turns into NaN are resolved — by the weight's
/// endpoint when it lands on one, and pessimistically (`INFINITY`)
/// strictly between.
fn lerp_grid(va: f64, vb: f64, w: f64) -> f64 {
    let v = va + (vb - va) * w;
    if !v.is_nan() || va.is_nan() || vb.is_nan() {
        return v;
    }
    if w >= 1.0 {
        vb
    } else if w <= 0.0 {
        va
    } else {
        f64::INFINITY
    }
}

/// One runtime observation fed back into the model: at `elapsed_secs`
/// since job start the job had made `progress` while holding
/// `allocation` tokens. A completed run's observations become
/// remaining-time samples `(total − elapsed).max(0)` exactly as
/// training-time harvesting does.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunObservation {
    /// Seconds since the job started.
    pub elapsed_secs: f64,
    /// Progress-indicator value in `[0, 1]` at that instant.
    pub progress: f64,
    /// Tokens held at that instant (snapped to the nearest grid point).
    pub allocation: u32,
}

/// A borrowed [`ProgressSink`] that folds each control-tick snapshot
/// straight into `(elapsed, progress)` pairs — the instrumentation used
/// to harvest `C(p, a)` samples from training runs, with no per-sample
/// stage-fraction clone and no lock.
struct SampleCollector<'a> {
    indicator: &'a IndicatorContext,
    samples: &'a mut Vec<(f64, f64)>,
}

impl ProgressSink for SampleCollector<'_> {
    fn sample(&mut self, _job: usize, elapsed_secs: f64, stage_fraction: &[f64]) {
        self.samples
            .push((elapsed_secs, self.indicator.progress(stage_fraction)));
    }
}

/// The samples harvested from one simulated training run (shared with
/// the dense shared-stream kernel in [`crate::dense`]).
pub(crate) struct RunHarvest {
    /// `(elapsed_secs, progress)` pairs at each control tick.
    pub(crate) samples: Vec<(f64, f64)>,
    /// Completion time, horizon-censored for runs that never finished.
    pub(crate) total_secs: f64,
    /// Whether the run actually completed within the horizon.
    pub(crate) completed: bool,
}

/// The trained `C(p, a)` table.
#[derive(Clone, Debug)]
pub struct CpaModel {
    allocations: Vec<u32>,
    bins: usize,
    percentile: f64,
    /// Per-level sketch capacity shared by every cell (`None` = exact).
    sketch_k: Option<usize>,
    /// `cells[alloc_idx][bin]`: a mergeable quantile sketch over the
    /// remaining-time samples. Exact (a plain sorted list) unless a
    /// `sketch_capacity` was configured.
    cells: Vec<Vec<CellSketch>>,
    /// Dense `allocations.len() x bins` lookup table: the configured
    /// percentile of each `(allocation, bin)` cell, with the outward
    /// empty-cell fallback already resolved. [`CpaModel::remaining`] —
    /// the per-controller-tick query — reads this instead of
    /// recomputing the percentile over raw samples. Raw `cells` are
    /// retained for explicit-percentile queries, absorption, and
    /// serialization.
    table: Vec<f64>,
    /// Whether the fresh-latency column (`table[·][bin_of(0)]`) is
    /// non-increasing in allocation. When it is — the overwhelmingly
    /// common case, since more tokens never slow a job — feasibility
    /// sizing binary-searches the allocation range; a noisy
    /// non-monotone table falls back to the exhaustive scan.
    fresh_monotone: bool,
}

impl CpaModel {
    /// An empty (sample-free) model with `cfg`'s shape: the starting
    /// point for purely online accumulation via [`CpaModel::absorb`].
    /// Every query on it answers `INFINITY` until samples arrive.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`TrainConfig`].
    pub fn empty(cfg: &TrainConfig) -> Self {
        let mut model = Self::empty_unbuilt(cfg);
        model.build_table();
        model
    }

    /// [`CpaModel::empty`] without the initial table build. Private to
    /// the training paths, which absorb every harvested sample and
    /// *then* build the table once — the all-empty table (150 cells,
    /// each running the full outward fallback scan) would be thrown
    /// away unread.
    fn empty_unbuilt(cfg: &TrainConfig) -> Self {
        cfg.validate();
        CpaModel {
            allocations: cfg.allocations.clone(),
            bins: cfg.progress_bins,
            percentile: cfg.percentile,
            sketch_k: cfg.sketch_capacity,
            cells: vec![
                vec![CellSketch::new(cfg.sketch_capacity); cfg.progress_bins];
                cfg.allocations.len()
            ],
            table: Vec::new(),
            fresh_monotone: false,
        }
    }

    /// A sample-free model with the same shape (grid, bins, percentile,
    /// sketch capacity) as `self` — the seed for drift-triggered
    /// retraining from a retained run window.
    pub fn vacant_copy(&self) -> Self {
        let mut model = CpaModel {
            allocations: self.allocations.clone(),
            bins: self.bins,
            percentile: self.percentile,
            sketch_k: self.sketch_k,
            cells: vec![vec![CellSketch::new(self.sketch_k); self.bins]; self.allocations.len()],
            table: Vec::new(),
            fresh_monotone: false,
        };
        model.build_table();
        model
    }

    /// Trains the model by simulating `profile` (replayed through
    /// `spec`'s graph) at every allocation in the grid, indexing
    /// progress with `indicator`.
    ///
    /// Training is deterministic in `seed` and parallelized across the
    /// allocation grid. It is a thin wrapper over the online path: the
    /// harvested runs are absorbed, one by one, into an empty model —
    /// with the default exact sketches this reproduces the historical
    /// trained bytes bit-for-bit, and with a bounded `sketch_capacity`
    /// it matches within the sketch's documented rank-error bound.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`TrainConfig`].
    pub fn train(
        graph: &Arc<JobGraph>,
        profile: &JobProfile,
        indicator: &IndicatorContext,
        cfg: &TrainConfig,
        seed: u64,
    ) -> Self {
        cfg.validate();
        let seeds = SeedDeriver::new(seed).child("cpa-train");
        let spec = Arc::new(JobSpec::from_profile(graph.clone(), profile));

        // The grid is sharded into contiguous chunks, one worker thread
        // per chunk, each reusing a single SimWorkspace across all its
        // runs. Every shard's RNG seeds derive from (allocation index,
        // run index), so the trained cells are byte-identical for any
        // thread count — including the single-shard case, which runs
        // inline to spare a 1-core machine the spawn/join jitter.
        let n = cfg.allocations.len();
        let threads = cfg
            .threads
            .unwrap_or_else(default_threads)
            .clamp(1, n.max(1));
        let chunk = n.div_ceil(threads);
        let mut harvests: Vec<Vec<RunHarvest>> = Vec::new();
        harvests.resize_with(n, Vec::new);
        let shard = |ci: usize, chunk_harvests: &mut [Vec<RunHarvest>]| {
            let mut ws = SimWorkspace::new();
            for (k, harvest) in chunk_harvests.iter_mut().enumerate() {
                let ai = ci * chunk + k;
                *harvest = train_one_allocation(
                    &spec,
                    indicator,
                    cfg.allocations[ai],
                    cfg,
                    seeds.child_indexed("alloc", ai as u64),
                    &mut ws,
                );
            }
        };
        if threads == 1 {
            shard(0, &mut harvests);
        } else {
            std::thread::scope(|scope| {
                for (ci, chunk_harvests) in harvests.chunks_mut(chunk).enumerate() {
                    let shard = &shard;
                    scope.spawn(move || shard(ci, chunk_harvests));
                }
            });
        }

        // Absorb every harvested run, in grid-then-run order, into an
        // empty model. Deterministic and thread-count independent: the
        // per-cell sample multiset does not depend on absorb order, and
        // sorted merges keep each exact cell identical to a one-shot
        // concat-then-sort of the same samples.
        let mut model = CpaModel::empty_unbuilt(cfg);
        let mut obs: Vec<RunObservation> = Vec::new();
        for (ai, runs) in harvests.iter().enumerate() {
            let allocation = cfg.allocations[ai];
            for run in runs {
                obs.clear();
                obs.extend(run.samples.iter().map(|&(t, p)| RunObservation {
                    elapsed_secs: t,
                    progress: p,
                    allocation,
                }));
                let completed_alloc = run.completed.then_some(allocation);
                model.fold_run(&obs, run.total_secs, completed_alloc, None);
            }
        }
        model.build_table();
        model
    }

    /// Trains the model through the dense shared-stream kernel
    /// ([`crate::dense`]): one multi-allocation simulation per run
    /// index covers the *whole* allocation grid, with per-allocation
    /// state forked only at fill divergence points and every task
    /// attempt consuming common random numbers across allocations.
    ///
    /// Statistically this estimates the same `C(p, a)` table as
    /// [`CpaModel::train`] — same grid, bins, percentile, horizon
    /// censoring, absorb order — but it is a *different deterministic
    /// estimator*: its RNG schedule is keyed per task slot (stream
    /// `"cpa-train-batched"`) rather than per `(allocation, run)`
    /// simulation, so the two tables are not byte-identical. The
    /// common-random-numbers coupling is a feature beyond speed: within
    /// one run, completion time is monotone in allocation, so the
    /// trained fresh-latency column is far less likely to need the
    /// non-monotone fallback scan.
    ///
    /// The kernel models the flat dedicated training cluster only;
    /// a config with a `topology` or a `speculation` policy falls back
    /// to [`CpaModel::train`] (which simulates the full placement and
    /// clone-on-slow machinery). Where [`train`]
    /// parallelizes over the allocation grid, this path has already
    /// amortized the grid into single runs — so `threads` shards the
    /// *run* indices instead. Each run's variates are keyed by its run
    /// index alone, so the trained cells are byte-identical for any
    /// thread count.
    ///
    /// [`train`]: CpaModel::train
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`TrainConfig`].
    pub fn train_batched(
        graph: &Arc<JobGraph>,
        profile: &JobProfile,
        indicator: &IndicatorContext,
        cfg: &TrainConfig,
        seed: u64,
    ) -> Self {
        cfg.validate();
        if cfg.topology.is_some() || cfg.speculation.is_some() {
            return Self::train(graph, profile, indicator, cfg, seed);
        }
        let seeds = SeedDeriver::new(seed).child("cpa-train-batched");
        let spec = JobSpec::from_profile(graph.clone(), profile);
        let job = crate::dense::DenseJob::new(&spec.graph);
        let horizon = cfg.max_sim_time.as_secs_f64();
        let period = cfg.sample_period.as_secs_f64();

        // One shared-stream simulation per run index covers every
        // allocation. Runs are sharded into contiguous chunks, one
        // worker thread per chunk; a single shard runs inline so a
        // 1-core machine pays no spawn/join jitter.
        let n_runs = cfg.runs_per_allocation;
        let threads = cfg.threads.unwrap_or_else(default_threads).clamp(1, n_runs);
        let chunk = n_runs.div_ceil(threads);
        let mut run_harvests: Vec<Vec<RunHarvest>> = Vec::new();
        run_harvests.resize_with(n_runs, Vec::new);
        let shard = |ci: usize, chunk_harvests: &mut [Vec<RunHarvest>]| {
            for (k, harvest) in chunk_harvests.iter_mut().enumerate() {
                let run = ci * chunk + k;
                let mut vars = crate::dense::SharedVariates::new(
                    &spec,
                    &job,
                    seeds.child_indexed("run", run as u64),
                );
                *harvest = crate::dense::simulate_run(
                    &job,
                    indicator,
                    &cfg.allocations,
                    period,
                    horizon,
                    &mut vars,
                );
            }
        };
        if threads == 1 {
            shard(0, &mut run_harvests);
        } else {
            std::thread::scope(|scope| {
                for (ci, chunk_harvests) in run_harvests.chunks_mut(chunk).enumerate() {
                    let shard = &shard;
                    scope.spawn(move || shard(ci, chunk_harvests));
                }
            });
        }

        // Absorb all runs in one pass: a sketch cell's contents depend
        // on its sample multiset, so staging every harvested
        // observation into one globally sorted buffer replaces the
        // per-run folds `train` performs — fewer, larger sorted merges
        // into each cell.
        let mut model = CpaModel::empty_unbuilt(cfg);
        let mut staged: Vec<((usize, usize), f64)> = Vec::new();
        for harvests in &run_harvests {
            for (ai, run) in harvests.iter().enumerate() {
                let cell = model.grid_index_nearest(cfg.allocations[ai]);
                staged.extend(run.samples.iter().map(|&(t, p)| {
                    (
                        (cell, progress_bin(p, model.bins)),
                        (run.total_secs - t).max(0.0),
                    )
                }));
                // Completion itself: zero remaining at full progress.
                if run.completed {
                    staged.push(((cell, model.bins - 1), 0.0));
                }
            }
        }
        staged.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.total_cmp(&y.1)));
        model.absorb_staged(&staged, None);
        model.build_table();
        model
    }

    /// Folds one completed (or horizon-censored) run's observations
    /// into the model's sketches in `O(cells)` and incrementally
    /// rebuilds the affected query-table rows. Returns the number of
    /// samples added.
    ///
    /// This is the online counterpart of one training run: each
    /// observation contributes `(total_secs − elapsed).max(0)` to the
    /// cell at its progress bin and nearest grid allocation, and a
    /// completed run additionally contributes a zero-remaining sample
    /// at full progress.
    pub fn absorb_observations(
        &mut self,
        obs: &[RunObservation],
        total_secs: f64,
        completed: bool,
    ) -> usize {
        let completed_alloc = if completed {
            obs.last().map(|o| o.allocation)
        } else {
            None
        };
        let mut dirty = vec![false; self.allocations.len()];
        let added = self.fold_run(obs, total_secs, completed_alloc, Some(&mut dirty));
        self.rebuild_rows(&dirty);
        added
    }

    /// Folds one recorded run trace into the model (see
    /// [`CpaModel::absorb_observations`]). Elapsed times are measured
    /// from the trace's first guarantee point (the admission tick);
    /// the allocation paired with each progress point is the applied
    /// guarantee at that instant. Returns the number of samples added
    /// (0 for traces with no progress points).
    pub fn absorb(&mut self, trace: &RunTrace, total_secs: f64, completed: bool) -> usize {
        let start = trace
            .guarantee
            .points()
            .first()
            .map_or(SimTime::ZERO, |&(at, _)| at);
        let obs: Vec<RunObservation> = trace
            .progress
            .points()
            .iter()
            .filter_map(|&(at, p)| {
                let tokens = trace.guarantee.value_at(at)?;
                Some(RunObservation {
                    elapsed_secs: at.saturating_since(start).as_secs_f64(),
                    progress: p,
                    allocation: tokens as u32,
                })
            })
            .collect();
        self.absorb_observations(&obs, total_secs, completed)
    }

    /// Shared absorb core: stages samples per cell, merges each staged
    /// batch into its sketch, and marks touched allocations dirty.
    /// Does *not* rebuild the query table — callers either rebuild the
    /// dirty rows (online absorb) or the whole table once (training).
    fn fold_run(
        &mut self,
        obs: &[RunObservation],
        total_secs: f64,
        completed_alloc: Option<u32>,
        dirty: Option<&mut Vec<bool>>,
    ) -> usize {
        // Stage every sample as a `(cell, remaining)` pair and sort once
        // by cell then value: each cell's batch comes out contiguous and
        // ascending, and cells are visited in the same ascending
        // `(allocation, bin)` order a keyed map would yield — so the
        // sketches absorb byte-identical batches, without a map node and
        // a vector allocation per touched cell.
        let mut staged: Vec<((usize, usize), f64)> = Vec::with_capacity(obs.len() + 1);
        staged.extend(obs.iter().map(|o| {
            let ai = self.grid_index_nearest(o.allocation);
            let bin = progress_bin(o.progress, self.bins);
            ((ai, bin), (total_secs - o.elapsed_secs).max(0.0))
        }));
        // Completion itself: zero remaining at full progress (only for
        // runs that actually completed).
        if let Some(a) = completed_alloc {
            let ai = self.grid_index_nearest(a);
            staged.push(((ai, self.bins - 1), 0.0));
        }
        staged.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.total_cmp(&y.1)));
        let added = staged.len();
        self.absorb_staged(&staged, dirty);
        added
    }

    /// Walks a `(cell, value)`-sorted staging buffer and merges each
    /// cell's contiguous (already ascending) batch into its sketch.
    fn absorb_staged(
        &mut self,
        staged: &[((usize, usize), f64)],
        mut dirty: Option<&mut Vec<bool>>,
    ) {
        let mut batch: Vec<f64> = Vec::new();
        let mut i = 0;
        while i < staged.len() {
            let key = staged[i].0;
            let end = staged[i..]
                .iter()
                .position(|e| e.0 != key)
                .map_or(staged.len(), |p| i + p);
            batch.clear();
            batch.extend(staged[i..end].iter().map(|e| e.1));
            self.cells[key.0][key.1].extend_sorted(&batch);
            if let Some(d) = dirty.as_deref_mut() {
                d[key.0] = true;
            }
            i = end;
        }
    }

    /// The grid index nearest to `allocation` (lower index wins ties).
    fn grid_index_nearest(&self, allocation: u32) -> usize {
        let grid = &self.allocations;
        let hi = grid.partition_point(|&g| g < allocation);
        if hi == 0 {
            return 0;
        }
        if hi == grid.len() {
            return grid.len() - 1;
        }
        if allocation - grid[hi - 1] <= grid[hi] - allocation {
            hi - 1
        } else {
            hi
        }
    }

    /// Precomputes the dense query table from the raw cells: one
    /// configured-percentile value per `(allocation, bin)`, identical to
    /// what the outward-scanning [`CpaModel::remaining_at_grid`] path
    /// returns (including the all-empty-allocation `INFINITY` case), so
    /// `remaining()` is a load + interpolation per tick.
    fn build_table(&mut self) {
        let mut table = Vec::with_capacity(self.allocations.len() * self.bins);
        for ai in 0..self.allocations.len() {
            for bin in 0..self.bins {
                table.push(self.remaining_at_grid(ai, bin, self.percentile));
            }
        }
        self.table = table;
        self.check_fresh_monotone();
    }

    /// Recomputes the table rows of the dirty allocations and
    /// re-derives the monotone flag. One new sample can change *every*
    /// bin of its allocation's row — the outward empty-cell fallback
    /// scans the whole row — so the incremental unit is a row, never a
    /// single cell; rows never read other allocations' cells, so clean
    /// rows keep their exact bytes.
    fn rebuild_rows(&mut self, dirty: &[bool]) {
        debug_assert_eq!(dirty.len(), self.allocations.len());
        let mut row = Vec::with_capacity(self.bins);
        for (ai, &is_dirty) in dirty.iter().enumerate() {
            if !is_dirty {
                continue;
            }
            row.clear();
            row.extend((0..self.bins).map(|bin| self.remaining_at_grid(ai, bin, self.percentile)));
            self.table[ai * self.bins..(ai + 1) * self.bins].copy_from_slice(&row);
        }
        self.check_fresh_monotone();
    }

    /// Re-derives [`CpaModel::fresh_monotone`] from the dense table.
    fn check_fresh_monotone(&mut self) {
        let bin0 = self.bin_of(0.0);
        self.fresh_monotone = (1..self.allocations.len()).all(|ai| {
            let (prev, cur) = (
                self.table[(ai - 1) * self.bins + bin0],
                self.table[ai * self.bins + bin0],
            );
            // NaN anywhere in the column disqualifies the fast path.
            prev >= cur
        });
    }

    /// The allocation grid the model was trained on.
    pub fn allocations(&self) -> &[u32] {
        &self.allocations
    }

    /// The percentile used by [`CpaModel::remaining`] queries.
    pub fn percentile(&self) -> f64 {
        self.percentile
    }

    /// The per-cell sketch capacity (`None` = exact cells).
    pub fn sketch_capacity(&self) -> Option<usize> {
        self.sketch_k
    }

    /// Total number of represented samples (diagnostics). Bounded
    /// sketches represent more samples than they store — see
    /// [`CpaModel::stored_item_count`].
    pub fn sample_count(&self) -> usize {
        self.cells
            .iter()
            .flat_map(|a| a.iter().map(|c| c.count() as usize))
            .sum()
    }

    /// Number of items physically stored across all sketches — the
    /// model's memory footprint, which a bounded `sketch_capacity`
    /// keeps from growing linearly with absorbed runs.
    pub fn stored_item_count(&self) -> usize {
        self.cells
            .iter()
            .flat_map(|a| a.iter().map(CellSketch::item_count))
            .sum()
    }

    /// The summed worst-case rank error across all cells (diagnostics);
    /// zero for exact models.
    pub fn rank_error_bound(&self) -> u64 {
        self.cells
            .iter()
            .flat_map(|a| a.iter().map(CellSketch::rank_error_bound))
            .sum()
    }

    fn bin_of(&self, p: f64) -> usize {
        progress_bin(p, self.bins)
    }

    /// The remaining-time estimate at a single grid allocation index,
    /// searching outward from the progress bin for the nearest
    /// non-empty cell.
    fn remaining_at_grid(&self, ai: usize, bin: usize, percentile: f64) -> f64 {
        let cells = &self.cells[ai];
        // Search outward: prefer the queried bin, then neighbors.
        for d in 0..self.bins {
            let candidates = [
                bin.checked_sub(d),
                bin.checked_add(d).filter(|&b| b < self.bins),
            ];
            for b in candidates.into_iter().flatten() {
                if !cells[b].is_empty() {
                    return cells[b].quantile(percentile);
                }
            }
        }
        // No samples at this allocation at all: treat it as unusably
        // slow, never as instantaneous.
        f64::INFINITY
    }

    /// `C(p, a)` at the model's configured percentile, linearly
    /// interpolated between grid allocations and clamped to the grid's
    /// endpoints outside it.
    ///
    /// This is the control loop's per-tick query: it reads the
    /// precomputed percentile table (one value per grid cell, empty-cell
    /// fallback already folded in) instead of re-running the percentile
    /// computation over raw samples. Answers are bit-identical to
    /// [`CpaModel::remaining_percentile`] at the configured percentile.
    pub fn remaining(&self, progress: f64, allocation: u32) -> f64 {
        let bin = self.bin_of(progress);
        let at = |ai: usize| self.table[ai * self.bins + bin];
        let grid = &self.allocations;
        if allocation <= grid[0] {
            return at(0);
        }
        if allocation >= *grid.last().expect("non-empty grid") {
            return at(grid.len() - 1);
        }
        // Find surrounding grid points.
        let hi = grid.partition_point(|&g| g < allocation);
        let lo = hi - 1;
        let (ga, gb) = (grid[lo], grid[hi]);
        if ga == allocation {
            return at(lo);
        }
        let (va, vb) = (at(lo), at(hi));
        let w = f64::from(allocation - ga) / f64::from(gb - ga);
        lerp_grid(va, vb, w)
    }

    /// `C(p, a)` at an explicit percentile.
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is outside `[0, 100]`.
    pub fn remaining_percentile(&self, progress: f64, allocation: u32, percentile: f64) -> f64 {
        assert!((0.0..=100.0).contains(&percentile));
        let bin = self.bin_of(progress);
        let grid = &self.allocations;
        if allocation <= grid[0] {
            return self.remaining_at_grid(0, bin, percentile);
        }
        if allocation >= *grid.last().expect("non-empty grid") {
            return self.remaining_at_grid(grid.len() - 1, bin, percentile);
        }
        // Find surrounding grid points.
        let hi = grid.partition_point(|&g| g < allocation);
        let lo = hi - 1;
        let (ga, gb) = (grid[lo], grid[hi]);
        if ga == allocation {
            return self.remaining_at_grid(lo, bin, percentile);
        }
        let va = self.remaining_at_grid(lo, bin, percentile);
        let vb = self.remaining_at_grid(hi, bin, percentile);
        let w = f64::from(allocation - ga) / f64::from(gb - ga);
        lerp_grid(va, vb, w)
    }

    /// Estimated full-job latency at allocation `a` (progress 0) — the
    /// quantity used for a-priori sizing and feasibility checks.
    pub fn fresh_latency(&self, allocation: u32) -> f64 {
        self.remaining(0.0, allocation)
    }

    /// The smallest allocation whose (pessimistic) fresh latency with
    /// multiplier `slack` meets `deadline`, if any does.
    ///
    /// When the fresh-latency grid is monotone (checked once at build
    /// time), this is a binary search over the allocation range —
    /// `fresh_latency` is a piecewise-linear interpolation of the grid
    /// column, so a non-increasing column makes the feasibility
    /// predicate monotone in `a`. Otherwise it falls back to the
    /// exhaustive ascending scan; both paths return identical answers
    /// on monotone tables. Shared with the generic trait default via
    /// [`min_feasible_allocation`].
    pub fn min_allocation_for_deadline(&self, deadline: SimDuration, slack: f64) -> Option<u32> {
        let d = deadline.as_secs_f64();
        let max = *self.allocations.last().expect("non-empty grid");
        min_feasible_allocation(max, self.fresh_monotone, |a| {
            self.fresh_latency(a) * slack <= d
        })
    }

    /// Serializes the trained table to a [`jockey_simrt::table::KvStore`],
    /// so models can be trained once and shipped alongside job profiles.
    ///
    /// Exact cells (the default) serialize precisely as the pre-sketch
    /// format did — one `cell.<alloc>.<bin>` sample list per non-empty
    /// cell — so frozen offline-trained models stay byte-identical.
    /// Bounded sketches additionally emit a top-level `sketch_k`, one
    /// `cell.<alloc>.<bin>.l<i>` list per non-empty upper level, and a
    /// `cell.<alloc>.<bin>.c` compaction-counter list per compacted
    /// cell, which is everything needed to resume absorbing.
    pub fn to_kv(&self) -> jockey_simrt::table::KvStore {
        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", self.bins as u64);
        kv.set_f64("percentile", self.percentile);
        kv.set_f64_list(
            "allocations",
            &self
                .allocations
                .iter()
                .map(|&a| f64::from(a))
                .collect::<Vec<_>>(),
        );
        if let Some(k) = self.sketch_k {
            kv.set_u64("sketch_k", k as u64);
        }
        for (ai, alloc_cells) in self.cells.iter().enumerate() {
            for (bin, cell) in alloc_cells.iter().enumerate() {
                let levels = cell.levels();
                if !levels[0].is_empty() {
                    kv.set_f64_list(&format!("cell.{ai}.{bin}"), &levels[0]);
                }
                for (li, level) in levels.iter().enumerate().skip(1) {
                    if !level.is_empty() {
                        kv.set_f64_list(&format!("cell.{ai}.{bin}.l{li}"), level);
                    }
                }
                if cell.compactions().iter().any(|&c| c > 0) {
                    let comps: Vec<f64> = cell.compactions().iter().map(|&c| c as f64).collect();
                    kv.set_f64_list(&format!("cell.{ai}.{bin}.c"), &comps);
                }
            }
        }
        kv
    }

    /// Deserializes a table written by [`CpaModel::to_kv`].
    pub fn from_kv(kv: &jockey_simrt::table::KvStore) -> Result<CpaModel, ModelLoadError> {
        let bins = kv
            .get_u64("bins")
            .ok_or(ModelLoadError::MissingKey("bins"))? as usize;
        let percentile = kv
            .get_f64("percentile")
            .ok_or(ModelLoadError::MissingKey("percentile"))?;
        let allocations: Vec<u32> = kv
            .get_f64_list("allocations")
            .ok_or(ModelLoadError::MissingKey("allocations"))?
            .into_iter()
            .map(|a| a as u32)
            .collect();
        if bins == 0 || allocations.is_empty() {
            return Err(ModelLoadError::EmptyModel);
        }
        if !percentile.is_finite() || !(0.0..=100.0).contains(&percentile) {
            return Err(ModelLoadError::BadPercentile(percentile));
        }
        let sketch_k = match kv.get_u64("sketch_k") {
            Some(k) if (k as usize) < MIN_SKETCH_CAPACITY => {
                return Err(ModelLoadError::BadSketchCapacity(k));
            }
            Some(k) => Some(k as usize),
            None => None,
        };
        // Raw per-cell parts (sketch levels, per-level compaction
        // counts), grown level-by-level as keys arrive.
        type RawCell = (Vec<Vec<f64>>, Vec<u64>);
        let mut raw: Vec<Vec<RawCell>> =
            vec![vec![(vec![Vec::new()], Vec::new()); bins]; allocations.len()];
        for key in kv.keys() {
            if let Some(rest) = key.strip_prefix("cell.") {
                let bad = || ModelLoadError::BadCell(key.to_string());
                let parts: Vec<&str> = rest.split('.').collect();
                if parts.len() != 2 && parts.len() != 3 {
                    return Err(bad());
                }
                let ai: usize = parts[0].parse().map_err(|_| bad())?;
                let bin: usize = parts[1].parse().map_err(|_| bad())?;
                if ai >= allocations.len() || bin >= bins {
                    return Err(bad());
                }
                let values = kv.get_f64_list(key).ok_or_else(bad)?;
                let (levels, comps) = &mut raw[ai][bin];
                match parts.get(2) {
                    None => levels[0] = values,
                    Some(&"c") => {
                        let mut parsed = Vec::with_capacity(values.len());
                        for c in values {
                            if !(c.is_finite() && c >= 0.0 && c.fract() == 0.0) {
                                return Err(bad());
                            }
                            parsed.push(c as u64);
                        }
                        if levels.len() < parsed.len() {
                            levels.resize(parsed.len(), Vec::new());
                        }
                        *comps = parsed;
                    }
                    Some(level_key) => {
                        let li: usize = level_key
                            .strip_prefix('l')
                            .and_then(|s| s.parse().ok())
                            .filter(|&li| li >= 1)
                            .ok_or_else(bad)?;
                        if levels.len() <= li {
                            levels.resize(li + 1, Vec::new());
                        }
                        levels[li] = values;
                    }
                }
            }
        }
        let mut cells = Vec::with_capacity(allocations.len());
        for (ai, alloc_raw) in raw.into_iter().enumerate() {
            let mut alloc_cells = Vec::with_capacity(bins);
            for (bin, (levels, comps)) in alloc_raw.into_iter().enumerate() {
                let sketch = CellSketch::from_parts(sketch_k, levels, comps)
                    .ok_or_else(|| ModelLoadError::BadCell(format!("cell.{ai}.{bin}")))?;
                alloc_cells.push(sketch);
            }
            cells.push(alloc_cells);
        }
        let mut model = CpaModel {
            allocations,
            bins,
            percentile,
            sketch_k,
            cells,
            table: Vec::new(),
            fresh_monotone: false,
        };
        model.build_table();
        Ok(model)
    }
}

/// Why a serialized `C(p, a)` table failed to load
/// ([`CpaModel::from_kv`]).
#[derive(Clone, Debug, PartialEq)]
pub enum ModelLoadError {
    /// A required key is missing or has the wrong type.
    MissingKey(&'static str),
    /// `bins` is zero or the allocation grid is empty.
    EmptyModel,
    /// The stored `percentile` is not a finite value in `[0, 100]`.
    BadPercentile(f64),
    /// A `cell.<alloc>.<bin>[...]` key is malformed, out of range, not
    /// a float list, or inconsistent with the cell's other parts.
    BadCell(String),
    /// The stored `sketch_k` is below the supported minimum.
    BadSketchCapacity(u64),
}

impl fmt::Display for ModelLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelLoadError::MissingKey(k) => write!(f, "missing or mistyped key `{k}`"),
            ModelLoadError::EmptyModel => write!(f, "model has no bins or no allocations"),
            ModelLoadError::BadPercentile(v) => {
                write!(f, "percentile must be a finite value in [0, 100], got {v}")
            }
            ModelLoadError::BadCell(k) => write!(f, "malformed cell key `{k}`"),
            ModelLoadError::BadSketchCapacity(v) => {
                write!(f, "sketch_k must be >= {MIN_SKETCH_CAPACITY}, got {v}")
            }
        }
    }
}

impl std::error::Error for ModelLoadError {}

impl CompletionModel for CpaModel {
    fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
        self.remaining(progress, allocation)
    }

    fn max_allocation(&self) -> u32 {
        *self.allocations.last().expect("non-empty grid")
    }

    fn size_for_deadline(&self, _fs: &[f64], deadline: SimDuration, slack: f64) -> Option<u32> {
        self.min_allocation_for_deadline(deadline, slack)
    }
}

/// Simulates every training run for one allocation and returns the
/// per-run harvests. The hot path is allocation-lean: the shared spec
/// is never deep-cloned, per-job state vectors are rented from `ws`,
/// trace/profile recording is off, and snapshots flow through a
/// borrowed [`SampleCollector`] into one reused buffer.
fn train_one_allocation(
    spec: &Arc<JobSpec>,
    indicator: &IndicatorContext,
    allocation: u32,
    cfg: &TrainConfig,
    seeds: SeedDeriver,
    ws: &mut SimWorkspace,
) -> Vec<RunHarvest> {
    let mut harvests = Vec::with_capacity(cfg.runs_per_allocation);
    for run in 0..cfg.runs_per_allocation {
        let mut samples: Vec<(f64, f64)> = Vec::new();
        let mut sim_cfg = ClusterConfig::dedicated_with_failures(allocation);
        sim_cfg.control_period = cfg.sample_period;
        sim_cfg.max_sim_time = cfg.max_sim_time;
        sim_cfg.topology = cfg.topology.clone();
        if let Some(sp) = &cfg.speculation {
            // The clone budget rides on top of the allocation: training
            // at `a` under speculation level `s` simulates exactly the
            // `a + clone_budget(s)` token footprint the 2D controller
            // reserves, with the extra tokens idle unless a straggler
            // draws a clone onto them.
            sim_cfg.total_tokens = allocation + sp.clone_budget;
            sim_cfg.max_guarantee = allocation;
            sim_cfg.speculation = Some(sp.clone());
        }
        let mut sim =
            ClusterSim::with_workspace(sim_cfg, seeds.seed_indexed("run", run as u64), ws);
        sim.set_record_trace(false);
        sim.set_record_profile(false);
        sim.add_job_shared(spec.clone(), Box::new(FixedAllocation(allocation)));
        let result = {
            let mut collector = SampleCollector {
                indicator,
                samples: &mut samples,
            };
            sim.run_single_hooked(RunHooks {
                sink: Some(&mut collector),
                reclaim: Some(ws),
            })
        };
        // A run that hit the simulation horizon is censored: its true
        // completion is *at least* the horizon. Using the horizon as
        // the completion time yields pessimistic-but-finite samples, so
        // starved allocations read as "very slow" rather than leaving
        // empty cells that would be misread as "instant".
        let completed = result.duration().is_some();
        let total_secs = match result.duration() {
            Some(d) => d.as_secs_f64(),
            None => cfg.max_sim_time.as_secs_f64(),
        };
        harvests.push(RunHarvest {
            samples,
            total_secs,
            completed,
        });
    }
    harvests
}

/// Runs the job once on an effectively unconstrained cluster and
/// returns the relative stage windows — the `minstage-inf` indicator's
/// inputs ("a simulation of the job with no constraint on resources",
/// §5.4).
pub fn unconstrained_rel_windows(
    graph: &Arc<JobGraph>,
    profile: &JobProfile,
    seed: u64,
) -> Vec<(f64, f64)> {
    let tokens = u32::try_from(graph.total_tasks())
        .unwrap_or(u32::MAX)
        .max(1);
    let spec = JobSpec::from_profile(graph.clone(), profile);
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(tokens), seed);
    sim.add_job(spec, Box::new(FixedAllocation(tokens)));
    let result = sim.run_single();
    result
        .profile
        .stages
        .iter()
        .map(|s| (s.rel_start, s.rel_end))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressIndicator;
    use jockey_cluster::FixedAllocation;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;

    /// map(12 x 10 s) --barrier--> reduce(2 x 20 s), deterministic.
    fn fixture() -> (Arc<JobGraph>, JobProfile) {
        let mut b = JobGraphBuilder::new("train-me");
        let m = b.stage("map", 12);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        // Produce a profile by actually running the job once.
        let spec = JobSpec::uniform(graph.clone(), Constant(10.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), 3);
        sim.add_job(spec, Box::new(FixedAllocation(6)));
        let profile = sim.run_single().profile;
        (graph, profile)
    }

    fn model(graph: &Arc<JobGraph>, profile: &JobProfile) -> (CpaModel, IndicatorContext) {
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, graph, profile, None);
        let cfg = TrainConfig::fast(vec![2, 4, 8]);
        let m = CpaModel::train(graph, profile, &ind, &cfg, 42);
        (m, ind)
    }

    #[test]
    fn trained_model_has_samples_and_monotone_allocations() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        assert!(m.sample_count() > 20);
        let at = |a| m.fresh_latency(a);
        assert!(at(2) > at(4), "2 tokens {} vs 4 tokens {}", at(2), at(4));
        assert!(at(4) > at(8), "4 tokens {} vs 8 tokens {}", at(4), at(8));
    }

    #[test]
    fn fresh_latency_approximates_true_runtime() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        // True latency at 4 tokens: 3 map waves (30s+q) + 1 reduce wave
        // (20s+q) ≈ 52 s. The p90 estimate should be within ~25%.
        let est = m.fresh_latency(4);
        assert!((40.0..70.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn remaining_decreases_with_progress() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let early = m.remaining(0.05, 4);
        let late = m.remaining(0.9, 4);
        assert!(late < early, "late {late} vs early {early}");
        // At completion the remaining time is ~0.
        assert!(m.remaining(1.0, 4) < 16.0);
    }

    #[test]
    fn interpolation_between_grid_points() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let v2 = m.fresh_latency(2);
        let v3 = m.fresh_latency(3);
        let v4 = m.fresh_latency(4);
        assert!((v3 - (v2 + v4) / 2.0).abs() < 1e-9, "{v2} {v3} {v4}");
        // Outside the grid: clamped.
        assert_eq!(m.fresh_latency(1), v2);
        assert_eq!(m.fresh_latency(100), m.fresh_latency(8));
    }

    #[test]
    fn min_allocation_binary_search_matches_exhaustive_scan() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        assert!(m.fresh_monotone, "trained fixture should be monotone");
        let max = *m.allocations.last().unwrap();
        // Sweep deadlines from far-infeasible to trivially-feasible,
        // including exact grid latencies, for several slacks.
        let mut deadlines: Vec<f64> = (0..200).map(|i| 0.5 + 1.1 * f64::from(i)).collect();
        deadlines.extend((1..=max).map(|a| m.fresh_latency(a)));
        for slack in [0.8, 1.0, 1.2, 2.0] {
            for &d in &deadlines {
                let deadline = SimDuration::from_secs_f64(d);
                let fast = m.min_allocation_for_deadline(deadline, slack);
                // Reference: the pre-optimization exhaustive ascending
                // scan, over the same tick-quantized deadline.
                let dq = deadline.as_secs_f64();
                let slow = (1..=max).find(|&a| m.fresh_latency(a) * slack <= dq);
                assert_eq!(fast, slow, "deadline {d}s slack {slack}");
            }
        }
    }

    #[test]
    fn non_monotone_tables_fall_back_to_the_scan() {
        let (graph, profile) = fixture();
        let (mut m, _) = model(&graph, &profile);
        // Corrupt the fresh column so latency *rises* with allocation.
        let bin0 = m.bin_of(0.0);
        m.table[m.bins + bin0] = m.table[bin0] + 100.0;
        m.check_fresh_monotone();
        assert!(!m.fresh_monotone);
        let max = *m.allocations.last().unwrap();
        for d in [10.0, 50.0, 120.0, 500.0] {
            let deadline = SimDuration::from_secs_f64(d);
            let fast = m.min_allocation_for_deadline(deadline, 1.0);
            let slow = (1..=max).find(|&a| m.fresh_latency(a) <= d);
            assert_eq!(fast, slow, "deadline {d}s");
        }
    }

    #[test]
    fn min_allocation_for_deadline_is_minimal() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let d = SimDuration::from_secs(80);
        let a = m.min_allocation_for_deadline(d, 1.0).unwrap();
        assert!(m.fresh_latency(a) <= 80.0);
        if a > 1 {
            assert!(m.fresh_latency(a - 1) > 80.0);
        }
        // Impossible deadline -> None.
        assert_eq!(
            m.min_allocation_for_deadline(SimDuration::from_secs(1), 1.0),
            None
        );
    }

    #[test]
    fn percentile_queries_are_ordered() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let p50 = m.remaining_percentile(0.0, 4, 50.0);
        let p95 = m.remaining_percentile(0.0, 4, 95.0);
        assert!(p95 >= p50);
    }

    #[test]
    fn training_is_deterministic() {
        let (graph, profile) = fixture();
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let cfg = TrainConfig::fast(vec![2, 4]);
        let a = CpaModel::train(&graph, &profile, &ind, &cfg, 7);
        let b = CpaModel::train(&graph, &profile, &ind, &cfg, 7);
        assert_eq!(a.sample_count(), b.sample_count());
        assert_eq!(a.fresh_latency(3), b.fresh_latency(3));
    }

    /// Satellite: the trained cells must be bit-identical whether the
    /// grid is sharded over one thread or many — seeding is positional,
    /// never scheduling-dependent.
    #[test]
    fn train_is_thread_count_independent() {
        let (graph, profile) = fixture();
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let with_threads = |threads: Option<usize>| {
            let mut cfg = TrainConfig::fast(vec![2, 4, 8]);
            cfg.threads = threads;
            CpaModel::train(&graph, &profile, &ind, &cfg, 7)
        };
        let one = with_threads(Some(1));
        let three = with_threads(Some(3));
        let auto = with_threads(None);
        assert_eq!(one.cells, three.cells, "1 thread vs 3 threads");
        assert_eq!(one.cells, auto.cells, "1 thread vs one-per-allocation");
    }

    #[test]
    fn train_batched_is_deterministic_and_thread_independent() {
        let (graph, profile) = fixture();
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let with_threads = |threads: Option<usize>| {
            let mut cfg = TrainConfig::fast(vec![2, 4, 8]);
            cfg.threads = threads;
            CpaModel::train_batched(&graph, &profile, &ind, &cfg, 7)
        };
        let one = with_threads(Some(1));
        let again = with_threads(Some(1));
        let four = with_threads(Some(4));
        let auto = with_threads(None);
        assert_eq!(one.cells, again.cells, "same seed must reproduce");
        assert_eq!(one.cells, four.cells, "1 thread vs one-per-run");
        assert_eq!(one.cells, auto.cells, "1 thread vs machine default");
        assert_eq!(one.table, auto.table);
    }

    /// The batched path is a *different* deterministic estimator (its
    /// RNG schedule is per task slot, not per (allocation, run) sim),
    /// so its table is not byte-identical to `train`'s — but it must
    /// estimate the same quantity: fresh latency close to `train`'s at
    /// every grid allocation, monotone in allocation thanks to the
    /// common-random-numbers coupling.
    #[test]
    fn train_batched_estimates_match_train_statistically() {
        let (graph, profile) = fixture();
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let cfg = TrainConfig::fast(vec![2, 4, 8]);
        let reference = CpaModel::train(&graph, &profile, &ind, &cfg, 42);
        let batched = CpaModel::train_batched(&graph, &profile, &ind, &cfg, 42);
        assert!(batched.sample_count() > 20);
        for &a in &[2_u32, 4, 8] {
            let (r, b) = (reference.fresh_latency(a), batched.fresh_latency(a));
            assert!(
                (b - r).abs() / r < 0.35,
                "allocation {a}: batched {b} vs reference {r}"
            );
        }
        assert!(batched.fresh_latency(2) > batched.fresh_latency(4));
        assert!(batched.fresh_latency(4) > batched.fresh_latency(8));
    }

    /// A topology config is outside the dense kernel's flat-cluster
    /// model; `train_batched` must fall back to the full `train` path,
    /// bit for bit.
    #[test]
    fn train_batched_topology_falls_back_to_train() {
        let (graph, profile) = fixture();
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let mut cfg = TrainConfig::fast(vec![2, 4, 8]);
        cfg.topology = Some(jockey_cluster::TopologyConfig::google_mix(2));
        let reference = CpaModel::train(&graph, &profile, &ind, &cfg, 11);
        let batched = CpaModel::train_batched(&graph, &profile, &ind, &cfg, 11);
        assert_eq!(reference.cells, batched.cells);
        assert_eq!(reference.table, batched.table);
    }

    /// A speculation config is likewise outside the dense kernel's
    /// model (clone launches and kill-on-first-finish are per-event
    /// mechanics); `train_batched` must fall back to the full `train`
    /// path, bit for bit.
    #[test]
    fn train_batched_speculation_falls_back_to_train() {
        let (graph, profile) = fixture();
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let mut cfg = TrainConfig::fast(vec![2, 4, 8]);
        cfg.speculation = Some(jockey_cluster::SpeculationConfig::clone_on_slow(2.0, 2));
        let reference = CpaModel::train(&graph, &profile, &ind, &cfg, 11);
        let batched = CpaModel::train_batched(&graph, &profile, &ind, &cfg, 11);
        assert_eq!(reference.cells, batched.cells);
        assert_eq!(reference.table, batched.table);
    }

    /// A profile with a genuine straggler tail: most map attempts take
    /// 10 s, a quarter take 240 s, so the empirical runtime dist has
    /// mean 67.5 s and attempts drawing the tail cross any threshold
    /// above ~1.5x well before they finish.
    fn straggler_fixture() -> (Arc<JobGraph>, JobProfile) {
        let mut b = JobGraphBuilder::new("train-straggle");
        b.stage("map", 12);
        let graph = Arc::new(b.build().unwrap());
        let mut pb = jockey_jobgraph::profile::ProfileBuilder::new(&graph);
        for i in 0..12 {
            let rt = if i % 4 == 0 { 240.0 } else { 10.0 };
            pb.record_task(jockey_jobgraph::StageId(0), 0.0, rt, false);
        }
        let profile = pb.finish(300.0, 4.0);
        (graph, profile)
    }

    /// Training with a speculation config simulates a different engine
    /// (idle clone headroom, clone-on-slow watcher) — on a job with a
    /// straggler tail the trained C(p, a, s) surface must differ from
    /// the legacy C(p, a) surface while staying a valid monotone model.
    #[test]
    fn speculation_training_produces_a_distinct_surface() {
        let (graph, profile) = straggler_fixture();
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let cfg = TrainConfig::fast(vec![2, 4, 8]);
        let mut sp_cfg = cfg.clone();
        sp_cfg.speculation = Some(jockey_cluster::SpeculationConfig::clone_on_slow(1.5, 2));
        let plain = CpaModel::train(&graph, &profile, &ind, &cfg, 42);
        let spec = CpaModel::train(&graph, &profile, &ind, &sp_cfg, 42);
        assert!(spec.sample_count() > 0);
        // The surfaces come from different simulations (clone launches
        // rewrite straggler completions), so at least one grid latency
        // must differ.
        assert!(
            (2..=8).any(|a| spec.fresh_latency(a) != plain.fresh_latency(a)),
            "speculation-trained surface is identical to the plain one"
        );
        assert!(spec.fresh_latency(2) >= spec.fresh_latency(8));
    }

    #[test]
    fn unconstrained_windows_cover_unit_interval() {
        let (graph, profile) = fixture();
        let rel = unconstrained_rel_windows(&graph, &profile, 5);
        assert_eq!(rel.len(), 2);
        // Map starts at 0; reduce ends at the job end.
        assert_eq!(rel[0].0, 0.0);
        assert!(rel[1].1 > 0.9);
        // Reduce starts after map in an unconstrained run too (barrier).
        assert!(rel[1].0 >= rel[0].1 - 0.3);
    }

    /// Satellite: `remaining()` answers from the precomputed table must
    /// be bit-identical to the raw `percentile_sorted` scan path
    /// (exposed via `remaining_percentile` at the configured percentile)
    /// across the whole trained grid — on-grid, between grid points, and
    /// clamped outside it, at every progress bin.
    #[test]
    fn table_queries_match_percentile_scan_bit_for_bit() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let max = *m.allocations().last().unwrap();
        for bin in 0..m.bins {
            // Probe a progress value inside each bin.
            let p = (bin as f64 + 0.5) / m.bins as f64;
            for a in 1..=(max + 4) {
                let fast = m.remaining(p, a);
                let slow = m.remaining_percentile(p, a, m.percentile());
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "p={p} a={a}: table {fast} vs scan {slow}"
                );
            }
        }
    }

    /// Satellite: the precomputed table folds in the outward empty-cell
    /// fallback scan exactly — sparse models answer from the nearest
    /// non-empty bin, and allocations with no samples at all read as
    /// `INFINITY`, matching `remaining_at_grid`.
    #[test]
    fn table_matches_scan_on_sparse_and_empty_cells() {
        // Hand-build a sparse model through the kv path: allocation 0
        // has samples only in bins 2 and 7; allocation 1 has none.
        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 10);
        kv.set_f64("percentile", 90.0);
        kv.set_f64_list("allocations", &[2.0, 8.0]);
        kv.set_f64_list("cell.0.2", &[5.0, 7.0, 11.0]);
        kv.set_f64_list("cell.0.7", &[1.0, 2.0]);
        let m = CpaModel::from_kv(&kv).expect("loads");
        for bin in 0..10 {
            let p = (bin as f64 + 0.5) / 10.0;
            // Allocation on-grid at 2: nearest non-empty cell answers.
            let fast = m.remaining(p, 2);
            let slow = m.remaining_at_grid(0, bin, 90.0);
            assert_eq!(fast.to_bits(), slow.to_bits(), "bin {bin}");
            assert!(fast.is_finite());
            // Allocation 8 has no samples anywhere: INFINITY, exactly as
            // the scan reports it.
            assert_eq!(m.remaining(p, 8), f64::INFINITY);
            assert_eq!(m.remaining_at_grid(1, bin, 90.0), f64::INFINITY);
            // Interpolating toward an empty allocation stays INFINITY
            // on both paths (finite + w * (inf - finite)).
            assert_eq!(
                m.remaining(p, 5).to_bits(),
                m.remaining_percentile(p, 5, 90.0).to_bits()
            );
        }
        // The queried bin itself wins when non-empty; ties between
        // equidistant neighbors prefer the lower bin — both inherited
        // from the scan, bit-for-bit.
        assert_eq!(
            m.remaining(0.25, 2),
            jockey_simrt::stats::percentile_sorted(&[5.0, 7.0, 11.0], 90.0)
        );
        assert_eq!(
            m.remaining(0.45, 2), // bin 4: closest non-empty are 2 and 7 -> bin 2 wins at d=2.
            jockey_simrt::stats::percentile_sorted(&[5.0, 7.0, 11.0], 90.0)
        );
    }

    #[test]
    fn model_implements_completion_model() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let cm: &dyn CompletionModel = &m;
        assert_eq!(cm.max_allocation(), 8);
        assert!(cm.remaining_secs(&[], 0.0, 4) > 0.0);
    }
}

#[cfg(test)]
mod absorb_tests {
    use super::*;
    use jockey_simrt::rng::SeedDeriver;
    use rand::Rng;

    fn cfg(sketch_capacity: Option<usize>) -> TrainConfig {
        TrainConfig {
            progress_bins: 20,
            sketch_capacity,
            ..TrainConfig::fast(vec![2, 4, 8, 16])
        }
    }

    /// A deterministic synthetic run: samples every `period` seconds at
    /// linearly growing progress, completing at `total`.
    fn synth_run(seed: u64, allocation: u32) -> (Vec<RunObservation>, f64) {
        let mut rng = SeedDeriver::new(seed).rng("synth-run");
        let total: f64 = rng.gen_range(200.0..2000.0) / f64::from(allocation);
        let ticks = rng.gen_range(5..40);
        let obs = (0..ticks)
            .map(|i| {
                let frac = f64::from(i) / f64::from(ticks);
                RunObservation {
                    elapsed_secs: frac * total,
                    progress: (frac + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
                    allocation,
                }
            })
            .collect();
        (obs, total)
    }

    fn runs(seed: u64, n: u64, grid: &[u32]) -> Vec<(Vec<RunObservation>, f64)> {
        (0..n)
            .map(|i| synth_run(seed ^ (i * 977), grid[(i % grid.len() as u64) as usize]))
            .collect()
    }

    /// Satellite: absorbing the same trace set under any batch split or
    /// order yields the *identical* exact model — the per-cell sample
    /// multiset is order-free, and exact sketches are its unique sorted
    /// rendering. Checked on serialized bytes, the strongest equality.
    #[test]
    fn absorb_order_and_batch_split_do_not_change_exact_models() {
        let c = cfg(None);
        let all = runs(31, 24, &c.allocations);

        let mut one_by_one = CpaModel::empty(&c);
        for (obs, total) in &all {
            one_by_one.absorb_observations(obs, *total, true);
        }

        let mut reversed = CpaModel::empty(&c);
        for (obs, total) in all.iter().rev() {
            reversed.absorb_observations(obs, *total, true);
        }

        // One giant batch: all runs' observations fused, completion
        // markers replayed separately to keep per-run semantics.
        let mut fused = CpaModel::empty(&c);
        for (obs, total) in &all {
            let (head, tail) = obs.split_at(obs.len() / 2);
            fused.absorb_observations(head, *total, false);
            fused.absorb_observations(tail, *total, true);
        }

        let bytes = one_by_one.to_kv().to_text();
        assert_eq!(reversed.to_kv().to_text(), bytes, "reversed order");
        assert_eq!(fused.to_kv().to_text(), bytes, "split batches");
        assert_eq!(one_by_one.rank_error_bound(), 0);
    }

    /// Satellite: a bounded-sketch model absorbed in arbitrary batch
    /// splits answers every cell quantile within the documented rank
    /// error of the exact (one-shot) model built from the same samples.
    #[test]
    fn bounded_absorb_stays_within_documented_error_of_one_shot() {
        let exact_cfg = cfg(None);
        let bounded_cfg = cfg(Some(16));
        let all = runs(77, 48, &exact_cfg.allocations);

        let mut exact = CpaModel::empty(&exact_cfg);
        let mut bounded = CpaModel::empty(&bounded_cfg);
        for (i, (obs, total)) in all.iter().enumerate() {
            exact.absorb_observations(obs, *total, true);
            // Vary the split point per run to exercise merge orders.
            let split = (i * 7) % obs.len().max(1);
            let (head, tail) = obs.split_at(split);
            bounded.absorb_observations(head, *total, false);
            bounded.absorb_observations(tail, *total, true);
        }
        assert_eq!(bounded.sample_count(), exact.sample_count());

        let mut checked = 0;
        for ai in 0..exact.allocations.len() {
            for bin in 0..exact.bins {
                let cell = &exact.cells[ai][bin];
                if cell.is_empty() {
                    assert!(bounded.cells[ai][bin].is_empty());
                    continue;
                }
                let sorted = &cell.levels()[0];
                let sk = &bounded.cells[ai][bin];
                // Documented bound: rank error <= sum of compaction
                // errors, plus one top-level item weight for the
                // interpolation straddle.
                let slop = (sk.rank_error_bound() + (1 << (sk.levels().len() - 1))) as f64;
                for q in [10.0, 50.0, 90.0, 95.0] {
                    let v = sk.quantile(q);
                    let rank = q / 100.0 * (sorted.len() as f64 - 1.0);
                    let lo = ((rank - slop).floor().max(0.0)) as usize;
                    let hi = ((rank + slop).ceil() as usize).min(sorted.len() - 1);
                    assert!(
                        sorted[lo] <= v && v <= sorted[hi],
                        "cell ({ai},{bin}) q={q}: {v} outside [{}, {}]",
                        sorted[lo],
                        sorted[hi]
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 100, "too few non-empty cells ({checked} checks)");
    }

    /// Absorb only touches the dirty allocation's table row; the other
    /// rows keep their exact bytes, and untouched allocations stay
    /// INFINITY (vacant).
    #[test]
    fn absorb_rebuilds_only_dirty_rows() {
        let c = cfg(None);
        let mut m = CpaModel::empty(&c);
        assert_eq!(m.fresh_latency(4), f64::INFINITY);

        let (obs, total) = synth_run(5, 4);
        let added = m.absorb_observations(&obs, total, true);
        assert_eq!(added, obs.len() + 1);
        assert!(m.fresh_latency(4).is_finite());
        // Rows of other allocations were never touched.
        assert_eq!(m.remaining(0.5, 2), f64::INFINITY);
        assert_eq!(m.remaining(0.5, 16), f64::INFINITY);
        assert_eq!(m.sample_count(), added);
    }

    /// Off-grid allocations snap to the nearest grid point (lower wins
    /// ties), so online traces from interpolated guarantees land in
    /// real cells.
    #[test]
    fn absorb_snaps_allocations_to_nearest_grid_point() {
        let c = cfg(None);
        let mut m = CpaModel::empty(&c);
        assert_eq!(m.grid_index_nearest(1), 0); // below the grid
        assert_eq!(m.grid_index_nearest(3), 0); // tie 2 vs 4 -> lower
        assert_eq!(m.grid_index_nearest(5), 1); // nearest 4
        assert_eq!(m.grid_index_nearest(7), 2); // nearest 8
        assert_eq!(m.grid_index_nearest(40), 3); // above the grid

        let obs = [RunObservation {
            elapsed_secs: 0.0,
            progress: 0.0,
            allocation: 5,
        }];
        m.absorb_observations(&obs, 100.0, false);
        assert!(m.fresh_latency(4).is_finite(), "sample landed at grid 4");
        assert_eq!(m.fresh_latency(2), f64::INFINITY);
    }

    /// `absorb(&RunTrace)` pairs each progress point with the applied
    /// guarantee at that instant and measures elapsed time from the
    /// first guarantee point.
    #[test]
    fn absorb_run_trace_feeds_observations() {
        let c = cfg(None);
        let mut m = CpaModel::empty(&c);
        let mut trace = RunTrace::new();
        let t0 = SimTime::from_mins(5);
        trace.guarantee.push(t0, 4.0);
        for i in 0..10_u32 {
            let at = t0 + SimDuration::from_secs(u64::from(i) * 30);
            trace.progress.push(at, f64::from(i) / 10.0);
        }
        let added = m.absorb(&trace, 300.0, true);
        assert_eq!(added, 11, "10 samples + completion marker");
        assert!(m.fresh_latency(4).is_finite());
        // First observation: elapsed 0, remaining = full latency.
        assert!((m.remaining_percentile(0.0, 4, 100.0) - 300.0).abs() < 1e-9);

        // An empty trace absorbs nothing.
        assert_eq!(m.absorb(&RunTrace::new(), 100.0, false), 0);
    }

    /// Bounded sketches cap the stored footprint while the represented
    /// sample count keeps growing.
    #[test]
    fn bounded_model_footprint_stays_sublinear() {
        let c = cfg(Some(16));
        let mut m = CpaModel::empty(&c);
        for i in 0..200 {
            let (obs, total) = synth_run(1000 + i, 4);
            m.absorb_observations(&obs, total, true);
        }
        assert!(m.sample_count() > 2000, "samples {}", m.sample_count());
        assert!(
            m.stored_item_count() < m.sample_count() / 2,
            "stored {} vs represented {}",
            m.stored_item_count(),
            m.sample_count()
        );
        assert!(m.rank_error_bound() > 0);
    }

    /// Bounded models round-trip through kv: levels, compaction
    /// counters, and capacity all survive, and queries are preserved
    /// bit-for-bit (serialization is lossless on the sketch state).
    #[test]
    fn bounded_model_round_trips_through_kv() {
        let c = cfg(Some(16));
        let mut m = CpaModel::empty(&c);
        for i in 0..60 {
            let (obs, total) = synth_run(9000 + i, c.allocations[(i % 4) as usize]);
            m.absorb_observations(&obs, total, true);
        }
        assert!(m.rank_error_bound() > 0, "want a compacted model");

        let text = m.to_kv().to_text();
        let kv = jockey_simrt::table::KvStore::from_text(&text).expect("parses");
        let round = CpaModel::from_kv(&kv).expect("loads");
        assert_eq!(round.sketch_capacity(), Some(16));
        assert_eq!(round.sample_count(), m.sample_count());
        assert_eq!(round.rank_error_bound(), m.rank_error_bound());
        assert_eq!(round.cells, m.cells);
        assert_eq!(round.to_kv().to_text(), text, "fixed point");

        // And absorbing *after* the round-trip behaves identically.
        let (obs, total) = synth_run(424_242, 8);
        let mut a = m.clone();
        let mut b = round;
        a.absorb_observations(&obs, total, true);
        b.absorb_observations(&obs, total, true);
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn vacant_copy_preserves_shape_and_drops_samples() {
        let c = cfg(Some(32));
        let mut m = CpaModel::empty(&c);
        let (obs, total) = synth_run(3, 8);
        m.absorb_observations(&obs, total, true);
        let v = m.vacant_copy();
        assert_eq!(v.allocations(), m.allocations());
        assert_eq!(v.sketch_capacity(), m.sketch_capacity());
        assert_eq!(v.sample_count(), 0);
        assert_eq!(v.fresh_latency(8), f64::INFINITY);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::progress::{IndicatorContext, ProgressIndicator};
    use jockey_cluster::FixedAllocation;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;

    #[test]
    fn kv_roundtrip_preserves_queries() {
        let mut b = JobGraphBuilder::new("persist");
        let m = b.stage("map", 8);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(10.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 3);
        sim.add_job(spec, Box::new(FixedAllocation(4)));
        let profile = sim.run_single().profile;
        let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let model = CpaModel::train(&graph, &profile, &ctx, &TrainConfig::fast(vec![2, 4]), 1);

        let round = CpaModel::from_kv(&model.to_kv()).expect("round-trips");
        assert_eq!(round.allocations(), model.allocations());
        assert_eq!(round.percentile(), model.percentile());
        assert_eq!(round.sample_count(), model.sample_count());
        for p in [0.0, 0.3, 0.7, 1.0] {
            for a in [1, 2, 3, 4, 8] {
                assert_eq!(round.remaining(p, a), model.remaining(p, a), "p={p} a={a}");
            }
        }
    }

    /// The on-disk artifact cache persists trained models through the
    /// `to_kv` → `to_text` → `from_text` → `from_kv` path, so a warm
    /// cache is only byte-equivalent to retraining if that full text
    /// round-trip is *bit*-identical — Rust's `{}` float formatting is
    /// shortest-round-trip, and this test is the proof.
    #[test]
    fn kv_text_round_trip_is_bit_identical() {
        let mut b = JobGraphBuilder::new("persist-text");
        let m = b.stage("map", 9);
        let r = b.stage("reduce", 3);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(7.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 11);
        sim.add_job(spec, Box::new(FixedAllocation(4)));
        let profile = sim.run_single().profile;
        let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let model = CpaModel::train(&graph, &profile, &ctx, &TrainConfig::fast(vec![2, 4, 6]), 5);

        let text = model.to_kv().to_text();
        let kv = jockey_simrt::table::KvStore::from_text(&text).expect("parses");
        let round = CpaModel::from_kv(&kv).expect("text round-trips");

        // Fixed point: re-serializing reproduces the exact same text,
        // which covers every stored sample bit-for-bit (any mantissa
        // drift would change the shortest-round-trip rendering).
        assert_eq!(round.to_kv().to_text(), text);

        // And the query surface agrees bitwise, at the configured and
        // at explicit percentiles.
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for a in [1, 2, 3, 4, 5, 6, 9] {
                assert_eq!(
                    round.remaining(p, a).to_bits(),
                    model.remaining(p, a).to_bits(),
                    "remaining(p={p}, a={a})"
                );
                assert_eq!(
                    round.remaining_percentile(p, a, 90.0).to_bits(),
                    model.remaining_percentile(p, a, 90.0).to_bits(),
                    "remaining_percentile(p={p}, a={a})"
                );
            }
        }
    }

    /// Exact models must not leak any sketch-era keys: their serialized
    /// form is exactly the pre-sketch format (no `sketch_k`, no level
    /// or compaction keys), which is what keeps frozen-mode digests
    /// byte-identical across the refactor.
    #[test]
    fn exact_models_serialize_in_the_legacy_format() {
        let c = TrainConfig::fast(vec![2, 4]);
        let mut m = CpaModel::empty(&c);
        let obs: Vec<RunObservation> = (0..30)
            .map(|i| RunObservation {
                elapsed_secs: f64::from(i),
                progress: f64::from(i) / 30.0,
                allocation: 4,
            })
            .collect();
        m.absorb_observations(&obs, 30.0, true);
        let text = m.to_kv().to_text();
        assert!(!text.contains("sketch_k"), "unexpected sketch_k:\n{text}");
        for key in m.to_kv().keys() {
            if let Some(rest) = key.strip_prefix("cell.") {
                assert_eq!(rest.split('.').count(), 2, "sketch-era key `{key}`");
            }
        }
    }

    #[test]
    fn from_kv_rejects_malformed() {
        let kv = jockey_simrt::table::KvStore::new();
        assert_eq!(
            CpaModel::from_kv(&kv).unwrap_err(),
            ModelLoadError::MissingKey("bins")
        );

        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 0);
        kv.set_f64("percentile", 95.0);
        kv.set_f64_list("allocations", &[1.0]);
        assert_eq!(
            CpaModel::from_kv(&kv).unwrap_err(),
            ModelLoadError::EmptyModel
        );

        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 10);
        kv.set_f64("percentile", f64::NAN);
        kv.set_f64_list("allocations", &[1.0]);
        assert!(matches!(
            CpaModel::from_kv(&kv),
            Err(ModelLoadError::BadPercentile(v)) if v.is_nan()
        ));

        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 10);
        kv.set_f64("percentile", 95.0);
        kv.set_f64_list("allocations", &[1.0]);
        kv.set_f64_list("cell.5.0", &[1.0]); // Allocation index out of range.
        assert_eq!(
            CpaModel::from_kv(&kv).unwrap_err(),
            ModelLoadError::BadCell("cell.5.0".into())
        );

        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 10);
        kv.set_f64("percentile", 95.0);
        kv.set_f64_list("allocations", &[1.0]);
        kv.set_f64_list("cell.0.not-a-bin", &[1.0]);
        assert!(matches!(
            CpaModel::from_kv(&kv),
            Err(ModelLoadError::BadCell(_))
        ));

        // Sketch-era malformations: a level-zero suffix (`l0` shadows
        // the base key), a dotted tail that is neither `c` nor `l<i>`,
        // non-integer compaction counters, and an undersized sketch_k.
        for (key, vals) in [
            ("cell.0.1.l0", vec![1.0]),
            ("cell.0.1.x7", vec![1.0]),
            ("cell.0.1.l2.9", vec![1.0]),
            ("cell.0.1.c", vec![1.5]),
            ("cell.0.1.c", vec![-1.0]),
        ] {
            let mut kv = jockey_simrt::table::KvStore::new();
            kv.set_u64("bins", 10);
            kv.set_f64("percentile", 95.0);
            kv.set_f64_list("allocations", &[1.0]);
            kv.set_f64_list(key, &vals);
            assert!(
                matches!(CpaModel::from_kv(&kv), Err(ModelLoadError::BadCell(_))),
                "key `{key}` with {vals:?} should be rejected"
            );
        }

        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 10);
        kv.set_f64("percentile", 95.0);
        kv.set_f64_list("allocations", &[1.0]);
        kv.set_u64("sketch_k", 2);
        assert_eq!(
            CpaModel::from_kv(&kv).unwrap_err(),
            ModelLoadError::BadSketchCapacity(2)
        );
    }

    #[test]
    fn train_config_check_rejects_bad_values() {
        assert!(TrainConfig::default().check().is_ok());

        let cfg = TrainConfig {
            allocations: vec![],
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::Allocations));

        let cfg = TrainConfig {
            allocations: vec![4, 2],
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::Allocations));

        let cfg = TrainConfig {
            runs_per_allocation: 0,
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::Runs));

        let cfg = TrainConfig {
            progress_bins: 1,
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::Bins(1)));

        // NaN must not sneak through the percentile range check.
        let cfg = TrainConfig {
            percentile: f64::NAN,
            ..TrainConfig::default()
        };
        assert!(matches!(
            cfg.check(),
            Err(InvalidTrainConfig::Percentile(v)) if v.is_nan()
        ));

        let cfg = TrainConfig {
            sample_period: SimDuration::ZERO,
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::SamplePeriod));

        let cfg = TrainConfig {
            sketch_capacity: Some(4),
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::SketchCapacity(4)));
    }
}
