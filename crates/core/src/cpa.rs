//! The `C(p, a)` completion-time model and its offline training
//! pipeline (§4.1).
//!
//! `C(p, a)` is a random variable: the remaining time to complete the
//! job when it has made progress `p` and holds `a` tokens. The paper
//! estimates its distribution by *repeatedly simulating the job* at
//! each allocation in a grid: a run at allocation `a` finishing at time
//! `T` contributes, for every sampled instant `t`, one observation
//! `(p_t, T − t)`. At runtime the control loop only queries the
//! precomputed table, so no simulation happens on the critical path.
//!
//! Because "we care about the worst-case completion time" (§5.3), the
//! model answers queries at a configurable high percentile (default
//! p95) of the samples in a cell, interpolating linearly between grid
//! allocations. This built-in pessimism is what lets Jockey
//! "over-allocate resources at the start to compensate for potential
//! future failures" (§1).

use std::fmt;
use std::sync::Arc;

use jockey_cluster::{ClusterConfig, ClusterSim, FixedAllocation, JobSpec, RunHooks, SimWorkspace};
use jockey_jobgraph::graph::JobGraph;
use jockey_jobgraph::profile::JobProfile;
use jockey_simrt::observe::ProgressSink;
use jockey_simrt::rng::SeedDeriver;
use jockey_simrt::time::{SimDuration, SimTime};

use crate::predict::CompletionModel;
use crate::progress::IndicatorContext;

/// Offline training configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Token allocations to simulate (ascending).
    pub allocations: Vec<u32>,
    /// Independent simulated runs per allocation.
    pub runs_per_allocation: usize,
    /// How often progress is sampled during each simulated run.
    pub sample_period: SimDuration,
    /// Number of progress buckets in `[0, 1]`.
    pub progress_bins: usize,
    /// Percentile (0–100) reported by queries; high values encode the
    /// paper's worst-case pessimism.
    pub percentile: f64,
    /// Simulation horizon per training run.
    pub max_sim_time: SimTime,
    /// Worker threads for training; `None` (the default) uses one per
    /// allocation. The trained model is identical for any value — RNG
    /// streams derive from grid position, never from thread scheduling.
    pub threads: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        // The grid reaches down to single tokens: the control loop
        // releases resources toward the *minimum* utility-maximizing
        // allocation, so the model must know how slow the job's tail
        // really is at tiny allocations.
        TrainConfig {
            allocations: [1, 2, 5]
                .into_iter()
                .chain((1..=10).map(|i| i * 10))
                .collect(),
            runs_per_allocation: 10,
            sample_period: SimDuration::from_secs(30),
            progress_bins: 100,
            percentile: 95.0,
            max_sim_time: SimTime::from_mins(24 * 60),
            threads: None,
        }
    }
}

impl TrainConfig {
    /// A cheap configuration for tests: few allocations, few runs.
    /// Include small allocations so release decisions stay informed.
    pub fn fast(allocations: Vec<u32>) -> Self {
        TrainConfig {
            allocations,
            runs_per_allocation: 4,
            sample_period: SimDuration::from_secs(15),
            progress_bins: 50,
            percentile: 90.0,
            max_sim_time: SimTime::from_mins(12 * 60),
            threads: None,
        }
    }

    /// Validates the configuration, returning the first problem found.
    /// NaN percentiles are rejected (`contains` on a float range is
    /// already NaN-safe; finiteness is still checked explicitly so the
    /// intent survives refactoring).
    pub fn check(&self) -> Result<(), InvalidTrainConfig> {
        if self.allocations.is_empty()
            || self.allocations[0] < 1
            || !self.allocations.windows(2).all(|w| w[0] < w[1])
        {
            return Err(InvalidTrainConfig::Allocations);
        }
        if self.runs_per_allocation < 1 {
            return Err(InvalidTrainConfig::Runs);
        }
        if self.progress_bins < 2 {
            return Err(InvalidTrainConfig::Bins(self.progress_bins));
        }
        if !self.percentile.is_finite() || !(50.0..=100.0).contains(&self.percentile) {
            return Err(InvalidTrainConfig::Percentile(self.percentile));
        }
        if self.sample_period.is_zero() {
            return Err(InvalidTrainConfig::SamplePeriod);
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid train config: {e}");
        }
    }
}

/// Why a [`TrainConfig`] was rejected by [`TrainConfig::check`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InvalidTrainConfig {
    /// The allocation grid is empty, starts below 1, or is not strictly
    /// ascending.
    Allocations,
    /// `runs_per_allocation` must be `>= 1`.
    Runs,
    /// `progress_bins` must be `>= 2`.
    Bins(usize),
    /// `percentile` must be a finite value in `[50, 100]` (NaN is
    /// rejected explicitly).
    Percentile(f64),
    /// `sample_period` must be positive.
    SamplePeriod,
}

impl fmt::Display for InvalidTrainConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidTrainConfig::Allocations => {
                write!(
                    f,
                    "allocation grid must be non-empty, >= 1 and strictly ascending"
                )
            }
            InvalidTrainConfig::Runs => write!(f, "runs_per_allocation must be >= 1"),
            InvalidTrainConfig::Bins(v) => write!(f, "progress_bins must be >= 2, got {v}"),
            InvalidTrainConfig::Percentile(v) => {
                write!(f, "percentile must be a finite value in [50, 100], got {v}")
            }
            InvalidTrainConfig::SamplePeriod => write!(f, "sample_period must be positive"),
        }
    }
}

impl std::error::Error for InvalidTrainConfig {}

/// Maps progress `p` (clamped to `[0, 1]`) onto one of `bins` buckets.
/// Shared by model queries and training-time bucketing so the two can
/// never drift apart.
fn progress_bin(p: f64, bins: usize) -> usize {
    (((p.clamp(0.0, 1.0)) * bins as f64) as usize).min(bins - 1)
}

/// A borrowed [`ProgressSink`] that folds each control-tick snapshot
/// straight into `(elapsed, progress)` pairs — the instrumentation used
/// to harvest `C(p, a)` samples from training runs, with no per-sample
/// stage-fraction clone and no lock.
struct SampleCollector<'a> {
    indicator: &'a IndicatorContext,
    samples: &'a mut Vec<(f64, f64)>,
}

impl ProgressSink for SampleCollector<'_> {
    fn sample(&mut self, _job: usize, elapsed_secs: f64, stage_fraction: &[f64]) {
        self.samples
            .push((elapsed_secs, self.indicator.progress(stage_fraction)));
    }
}

/// The trained `C(p, a)` table.
#[derive(Clone, Debug)]
pub struct CpaModel {
    allocations: Vec<u32>,
    bins: usize,
    percentile: f64,
    /// `cells[alloc_idx][bin]`: ascending-sorted remaining-time samples.
    cells: Vec<Vec<Vec<f64>>>,
    /// Dense `allocations.len() x bins` lookup table: the configured
    /// percentile of each `(allocation, bin)` cell, with the outward
    /// empty-cell fallback already resolved. [`CpaModel::remaining`] —
    /// the per-controller-tick query — reads this instead of
    /// recomputing `percentile_sorted` over raw samples. Raw `cells`
    /// are retained for explicit-percentile queries and serialization.
    table: Vec<f64>,
    /// Whether the fresh-latency column (`table[·][bin_of(0)]`) is
    /// non-increasing in allocation. When it is — the overwhelmingly
    /// common case, since more tokens never slow a job — feasibility
    /// sizing binary-searches the allocation range; a noisy
    /// non-monotone table falls back to the exhaustive scan.
    fresh_monotone: bool,
}

impl CpaModel {
    /// Trains the model by simulating `profile` (replayed through
    /// `spec`'s graph) at every allocation in the grid, indexing
    /// progress with `indicator`.
    ///
    /// Training is deterministic in `seed` and parallelized across the
    /// allocation grid.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`TrainConfig`].
    pub fn train(
        graph: &Arc<JobGraph>,
        profile: &JobProfile,
        indicator: &IndicatorContext,
        cfg: &TrainConfig,
        seed: u64,
    ) -> Self {
        cfg.validate();
        let seeds = SeedDeriver::new(seed).child("cpa-train");
        let spec = Arc::new(JobSpec::from_profile(graph.clone(), profile));

        // The grid is sharded into contiguous chunks, one worker thread
        // per chunk, each reusing a single SimWorkspace across all its
        // runs. Every shard's RNG seeds derive from (allocation index,
        // run index), so the trained cells are byte-identical for any
        // thread count.
        let n = cfg.allocations.len();
        let threads = cfg.threads.unwrap_or(n).clamp(1, n.max(1));
        let chunk = n.div_ceil(threads);
        let mut cells: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n];
        std::thread::scope(|scope| {
            for (ci, chunk_cells) in cells.chunks_mut(chunk).enumerate() {
                let spec = &spec;
                let seeds = &seeds;
                scope.spawn(move || {
                    let mut ws = SimWorkspace::new();
                    for (k, cell) in chunk_cells.iter_mut().enumerate() {
                        let ai = ci * chunk + k;
                        *cell = train_one_allocation(
                            spec,
                            indicator,
                            cfg.allocations[ai],
                            cfg,
                            seeds.child_indexed("alloc", ai as u64),
                            &mut ws,
                        );
                    }
                });
            }
        });

        for alloc_cells in &mut cells {
            for cell in alloc_cells.iter_mut() {
                cell.sort_by(f64::total_cmp);
            }
        }
        let mut model = CpaModel {
            allocations: cfg.allocations.clone(),
            bins: cfg.progress_bins,
            percentile: cfg.percentile,
            cells,
            table: Vec::new(),
            fresh_monotone: false,
        };
        model.build_table();
        model
    }

    /// Precomputes the dense query table from the raw cells: one
    /// configured-percentile value per `(allocation, bin)`, identical to
    /// what the outward-scanning [`CpaModel::remaining_at_grid`] path
    /// returns (including the all-empty-allocation `INFINITY` case), so
    /// `remaining()` is a load + interpolation per tick.
    fn build_table(&mut self) {
        let mut table = Vec::with_capacity(self.allocations.len() * self.bins);
        for ai in 0..self.allocations.len() {
            for bin in 0..self.bins {
                table.push(self.remaining_at_grid(ai, bin, self.percentile));
            }
        }
        self.table = table;
        self.check_fresh_monotone();
    }

    /// Re-derives [`CpaModel::fresh_monotone`] from the dense table.
    fn check_fresh_monotone(&mut self) {
        let bin0 = self.bin_of(0.0);
        self.fresh_monotone = (1..self.allocations.len()).all(|ai| {
            let (prev, cur) = (
                self.table[(ai - 1) * self.bins + bin0],
                self.table[ai * self.bins + bin0],
            );
            // NaN anywhere in the column disqualifies the fast path.
            prev >= cur
        });
    }

    /// The allocation grid the model was trained on.
    pub fn allocations(&self) -> &[u32] {
        &self.allocations
    }

    /// The percentile used by [`CpaModel::remaining`] queries.
    pub fn percentile(&self) -> f64 {
        self.percentile
    }

    /// Total number of stored samples (diagnostics).
    pub fn sample_count(&self) -> usize {
        self.cells.iter().flat_map(|a| a.iter().map(Vec::len)).sum()
    }

    fn bin_of(&self, p: f64) -> usize {
        progress_bin(p, self.bins)
    }

    /// The remaining-time estimate at a single grid allocation index,
    /// searching outward from the progress bin for the nearest
    /// non-empty cell.
    fn remaining_at_grid(&self, ai: usize, bin: usize, percentile: f64) -> f64 {
        let cells = &self.cells[ai];
        // Search outward: prefer the queried bin, then neighbors.
        for d in 0..self.bins {
            let candidates = [
                bin.checked_sub(d),
                bin.checked_add(d).filter(|&b| b < self.bins),
            ];
            for b in candidates.into_iter().flatten() {
                if !cells[b].is_empty() {
                    return jockey_simrt::stats::percentile_sorted(&cells[b], percentile);
                }
            }
        }
        // No samples at this allocation at all: treat it as unusably
        // slow, never as instantaneous.
        f64::INFINITY
    }

    /// `C(p, a)` at the model's configured percentile, linearly
    /// interpolated between grid allocations and clamped to the grid's
    /// endpoints outside it.
    ///
    /// This is the control loop's per-tick query: it reads the
    /// precomputed percentile table (one value per grid cell, empty-cell
    /// fallback already folded in) instead of re-running the percentile
    /// computation over raw samples. Answers are bit-identical to
    /// [`CpaModel::remaining_percentile`] at the configured percentile.
    pub fn remaining(&self, progress: f64, allocation: u32) -> f64 {
        let bin = self.bin_of(progress);
        let at = |ai: usize| self.table[ai * self.bins + bin];
        let grid = &self.allocations;
        if allocation <= grid[0] {
            return at(0);
        }
        if allocation >= *grid.last().expect("non-empty grid") {
            return at(grid.len() - 1);
        }
        // Find surrounding grid points.
        let hi = grid.partition_point(|&g| g < allocation);
        let lo = hi - 1;
        let (ga, gb) = (grid[lo], grid[hi]);
        if ga == allocation {
            return at(lo);
        }
        let (va, vb) = (at(lo), at(hi));
        let w = f64::from(allocation - ga) / f64::from(gb - ga);
        va + (vb - va) * w
    }

    /// `C(p, a)` at an explicit percentile.
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is outside `[0, 100]`.
    pub fn remaining_percentile(&self, progress: f64, allocation: u32, percentile: f64) -> f64 {
        assert!((0.0..=100.0).contains(&percentile));
        let bin = self.bin_of(progress);
        let grid = &self.allocations;
        if allocation <= grid[0] {
            return self.remaining_at_grid(0, bin, percentile);
        }
        if allocation >= *grid.last().expect("non-empty grid") {
            return self.remaining_at_grid(grid.len() - 1, bin, percentile);
        }
        // Find surrounding grid points.
        let hi = grid.partition_point(|&g| g < allocation);
        let lo = hi - 1;
        let (ga, gb) = (grid[lo], grid[hi]);
        if ga == allocation {
            return self.remaining_at_grid(lo, bin, percentile);
        }
        let va = self.remaining_at_grid(lo, bin, percentile);
        let vb = self.remaining_at_grid(hi, bin, percentile);
        let w = f64::from(allocation - ga) / f64::from(gb - ga);
        va + (vb - va) * w
    }

    /// Estimated full-job latency at allocation `a` (progress 0) — the
    /// quantity used for a-priori sizing and feasibility checks.
    pub fn fresh_latency(&self, allocation: u32) -> f64 {
        self.remaining(0.0, allocation)
    }

    /// The smallest allocation whose (pessimistic) fresh latency with
    /// multiplier `slack` meets `deadline`, if any does.
    ///
    /// When the fresh-latency grid is monotone (checked once at build
    /// time), this is a binary search over the allocation range —
    /// `fresh_latency` is a piecewise-linear interpolation of the grid
    /// column, so a non-increasing column makes the feasibility
    /// predicate monotone in `a`. Otherwise it falls back to the
    /// exhaustive ascending scan; both paths return identical answers
    /// on monotone tables.
    pub fn min_allocation_for_deadline(&self, deadline: SimDuration, slack: f64) -> Option<u32> {
        let d = deadline.as_secs_f64();
        let max = *self.allocations.last().expect("non-empty grid");
        let fits = |a: u32| self.fresh_latency(a) * slack <= d;
        if !self.fresh_monotone {
            return (1..=max).find(|&a| fits(a));
        }
        if !fits(max) {
            return None;
        }
        // Invariant: fits(hi); find the first fitting allocation.
        let (mut lo, mut hi) = (1_u32, max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if fits(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(hi)
    }

    /// Serializes the trained table to a [`jockey_simrt::table::KvStore`],
    /// so models can be trained once and shipped alongside job profiles.
    pub fn to_kv(&self) -> jockey_simrt::table::KvStore {
        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", self.bins as u64);
        kv.set_f64("percentile", self.percentile);
        kv.set_f64_list(
            "allocations",
            &self
                .allocations
                .iter()
                .map(|&a| f64::from(a))
                .collect::<Vec<_>>(),
        );
        for (ai, alloc_cells) in self.cells.iter().enumerate() {
            for (bin, cell) in alloc_cells.iter().enumerate() {
                if !cell.is_empty() {
                    kv.set_f64_list(&format!("cell.{ai}.{bin}"), cell);
                }
            }
        }
        kv
    }

    /// Deserializes a table written by [`CpaModel::to_kv`].
    pub fn from_kv(kv: &jockey_simrt::table::KvStore) -> Result<CpaModel, ModelLoadError> {
        let bins = kv
            .get_u64("bins")
            .ok_or(ModelLoadError::MissingKey("bins"))? as usize;
        let percentile = kv
            .get_f64("percentile")
            .ok_or(ModelLoadError::MissingKey("percentile"))?;
        let allocations: Vec<u32> = kv
            .get_f64_list("allocations")
            .ok_or(ModelLoadError::MissingKey("allocations"))?
            .into_iter()
            .map(|a| a as u32)
            .collect();
        if bins == 0 || allocations.is_empty() {
            return Err(ModelLoadError::EmptyModel);
        }
        if !percentile.is_finite() || !(0.0..=100.0).contains(&percentile) {
            return Err(ModelLoadError::BadPercentile(percentile));
        }
        let mut cells = vec![vec![Vec::new(); bins]; allocations.len()];
        for key in kv.keys() {
            if let Some(rest) = key.strip_prefix("cell.") {
                let bad = || ModelLoadError::BadCell(key.to_string());
                let (ai, bin) = rest.split_once('.').ok_or_else(bad)?;
                let ai: usize = ai.parse().map_err(|_| bad())?;
                let bin: usize = bin.parse().map_err(|_| bad())?;
                if ai >= allocations.len() || bin >= bins {
                    return Err(bad());
                }
                cells[ai][bin] = kv.get_f64_list(key).ok_or_else(bad)?;
            }
        }
        let mut model = CpaModel {
            allocations,
            bins,
            percentile,
            cells,
            table: Vec::new(),
            fresh_monotone: false,
        };
        model.build_table();
        Ok(model)
    }
}

/// Why a serialized `C(p, a)` table failed to load
/// ([`CpaModel::from_kv`]).
#[derive(Clone, Debug, PartialEq)]
pub enum ModelLoadError {
    /// A required key is missing or has the wrong type.
    MissingKey(&'static str),
    /// `bins` is zero or the allocation grid is empty.
    EmptyModel,
    /// The stored `percentile` is not a finite value in `[0, 100]`.
    BadPercentile(f64),
    /// A `cell.<alloc>.<bin>` key is malformed, out of range, or not a
    /// float list.
    BadCell(String),
}

impl fmt::Display for ModelLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelLoadError::MissingKey(k) => write!(f, "missing or mistyped key `{k}`"),
            ModelLoadError::EmptyModel => write!(f, "model has no bins or no allocations"),
            ModelLoadError::BadPercentile(v) => {
                write!(f, "percentile must be a finite value in [0, 100], got {v}")
            }
            ModelLoadError::BadCell(k) => write!(f, "malformed cell key `{k}`"),
        }
    }
}

impl std::error::Error for ModelLoadError {}

impl CompletionModel for CpaModel {
    fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
        self.remaining(progress, allocation)
    }

    fn max_allocation(&self) -> u32 {
        *self.allocations.last().expect("non-empty grid")
    }

    fn size_for_deadline(&self, _fs: &[f64], deadline: SimDuration, slack: f64) -> Option<u32> {
        self.min_allocation_for_deadline(deadline, slack)
    }
}

/// Simulates every training run for one allocation and buckets the
/// harvested samples. The hot path is allocation-lean: the shared spec
/// is never deep-cloned, per-job state vectors are rented from `ws`,
/// trace/profile recording is off, and snapshots flow through a
/// borrowed [`SampleCollector`] into one reused buffer.
fn train_one_allocation(
    spec: &Arc<JobSpec>,
    indicator: &IndicatorContext,
    allocation: u32,
    cfg: &TrainConfig,
    seeds: SeedDeriver,
    ws: &mut SimWorkspace,
) -> Vec<Vec<f64>> {
    let mut cells: Vec<Vec<f64>> = vec![Vec::new(); cfg.progress_bins];
    let mut samples: Vec<(f64, f64)> = Vec::new();
    for run in 0..cfg.runs_per_allocation {
        samples.clear();
        let mut sim_cfg = ClusterConfig::dedicated_with_failures(allocation);
        sim_cfg.control_period = cfg.sample_period;
        sim_cfg.max_sim_time = cfg.max_sim_time;
        let mut sim =
            ClusterSim::with_workspace(sim_cfg, seeds.seed_indexed("run", run as u64), ws);
        sim.set_record_trace(false);
        sim.set_record_profile(false);
        sim.add_job_shared(spec.clone(), Box::new(FixedAllocation(allocation)));
        let result = {
            let mut collector = SampleCollector {
                indicator,
                samples: &mut samples,
            };
            sim.run_single_hooked(RunHooks {
                sink: Some(&mut collector),
                reclaim: Some(ws),
            })
        };
        // A run that hit the simulation horizon is censored: its true
        // completion is *at least* the horizon. Using the horizon as
        // the completion time yields pessimistic-but-finite samples, so
        // starved allocations read as "very slow" rather than leaving
        // empty cells that would be misread as "instant".
        let total = match result.duration() {
            Some(d) => d.as_secs_f64(),
            None => cfg.max_sim_time.as_secs_f64(),
        };
        for &(t, p) in &samples {
            cells[progress_bin(p, cfg.progress_bins)].push((total - t).max(0.0));
        }
        // Completion itself: zero remaining at full progress (only for
        // runs that actually completed).
        if result.duration().is_some() {
            cells[cfg.progress_bins - 1].push(0.0);
        }
    }
    cells
}

/// Runs the job once on an effectively unconstrained cluster and
/// returns the relative stage windows — the `minstage-inf` indicator's
/// inputs ("a simulation of the job with no constraint on resources",
/// §5.4).
pub fn unconstrained_rel_windows(
    graph: &Arc<JobGraph>,
    profile: &JobProfile,
    seed: u64,
) -> Vec<(f64, f64)> {
    let tokens = u32::try_from(graph.total_tasks())
        .unwrap_or(u32::MAX)
        .max(1);
    let spec = JobSpec::from_profile(graph.clone(), profile);
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(tokens), seed);
    sim.add_job(spec, Box::new(FixedAllocation(tokens)));
    let result = sim.run_single();
    result
        .profile
        .stages
        .iter()
        .map(|s| (s.rel_start, s.rel_end))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressIndicator;
    use jockey_cluster::FixedAllocation;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;

    /// map(12 x 10 s) --barrier--> reduce(2 x 20 s), deterministic.
    fn fixture() -> (Arc<JobGraph>, JobProfile) {
        let mut b = JobGraphBuilder::new("train-me");
        let m = b.stage("map", 12);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        // Produce a profile by actually running the job once.
        let spec = JobSpec::uniform(graph.clone(), Constant(10.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), 3);
        sim.add_job(spec, Box::new(FixedAllocation(6)));
        let profile = sim.run_single().profile;
        (graph, profile)
    }

    fn model(graph: &Arc<JobGraph>, profile: &JobProfile) -> (CpaModel, IndicatorContext) {
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, graph, profile, None);
        let cfg = TrainConfig::fast(vec![2, 4, 8]);
        let m = CpaModel::train(graph, profile, &ind, &cfg, 42);
        (m, ind)
    }

    #[test]
    fn trained_model_has_samples_and_monotone_allocations() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        assert!(m.sample_count() > 20);
        let at = |a| m.fresh_latency(a);
        assert!(at(2) > at(4), "2 tokens {} vs 4 tokens {}", at(2), at(4));
        assert!(at(4) > at(8), "4 tokens {} vs 8 tokens {}", at(4), at(8));
    }

    #[test]
    fn fresh_latency_approximates_true_runtime() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        // True latency at 4 tokens: 3 map waves (30s+q) + 1 reduce wave
        // (20s+q) ≈ 52 s. The p90 estimate should be within ~25%.
        let est = m.fresh_latency(4);
        assert!((40.0..70.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn remaining_decreases_with_progress() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let early = m.remaining(0.05, 4);
        let late = m.remaining(0.9, 4);
        assert!(late < early, "late {late} vs early {early}");
        // At completion the remaining time is ~0.
        assert!(m.remaining(1.0, 4) < 16.0);
    }

    #[test]
    fn interpolation_between_grid_points() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let v2 = m.fresh_latency(2);
        let v3 = m.fresh_latency(3);
        let v4 = m.fresh_latency(4);
        assert!((v3 - (v2 + v4) / 2.0).abs() < 1e-9, "{v2} {v3} {v4}");
        // Outside the grid: clamped.
        assert_eq!(m.fresh_latency(1), v2);
        assert_eq!(m.fresh_latency(100), m.fresh_latency(8));
    }

    #[test]
    fn min_allocation_binary_search_matches_exhaustive_scan() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        assert!(m.fresh_monotone, "trained fixture should be monotone");
        let max = *m.allocations.last().unwrap();
        // Sweep deadlines from far-infeasible to trivially-feasible,
        // including exact grid latencies, for several slacks.
        let mut deadlines: Vec<f64> = (0..200).map(|i| 0.5 + 1.1 * f64::from(i)).collect();
        deadlines.extend((1..=max).map(|a| m.fresh_latency(a)));
        for slack in [0.8, 1.0, 1.2, 2.0] {
            for &d in &deadlines {
                let deadline = SimDuration::from_secs_f64(d);
                let fast = m.min_allocation_for_deadline(deadline, slack);
                // Reference: the pre-optimization exhaustive ascending
                // scan, over the same tick-quantized deadline.
                let dq = deadline.as_secs_f64();
                let slow = (1..=max).find(|&a| m.fresh_latency(a) * slack <= dq);
                assert_eq!(fast, slow, "deadline {d}s slack {slack}");
            }
        }
    }

    #[test]
    fn non_monotone_tables_fall_back_to_the_scan() {
        let (graph, profile) = fixture();
        let (mut m, _) = model(&graph, &profile);
        // Corrupt the fresh column so latency *rises* with allocation.
        let bin0 = m.bin_of(0.0);
        m.table[m.bins + bin0] = m.table[bin0] + 100.0;
        m.check_fresh_monotone();
        assert!(!m.fresh_monotone);
        let max = *m.allocations.last().unwrap();
        for d in [10.0, 50.0, 120.0, 500.0] {
            let deadline = SimDuration::from_secs_f64(d);
            let fast = m.min_allocation_for_deadline(deadline, 1.0);
            let slow = (1..=max).find(|&a| m.fresh_latency(a) <= d);
            assert_eq!(fast, slow, "deadline {d}s");
        }
    }

    #[test]
    fn min_allocation_for_deadline_is_minimal() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let d = SimDuration::from_secs(80);
        let a = m.min_allocation_for_deadline(d, 1.0).unwrap();
        assert!(m.fresh_latency(a) <= 80.0);
        if a > 1 {
            assert!(m.fresh_latency(a - 1) > 80.0);
        }
        // Impossible deadline -> None.
        assert_eq!(
            m.min_allocation_for_deadline(SimDuration::from_secs(1), 1.0),
            None
        );
    }

    #[test]
    fn percentile_queries_are_ordered() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let p50 = m.remaining_percentile(0.0, 4, 50.0);
        let p95 = m.remaining_percentile(0.0, 4, 95.0);
        assert!(p95 >= p50);
    }

    #[test]
    fn training_is_deterministic() {
        let (graph, profile) = fixture();
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let cfg = TrainConfig::fast(vec![2, 4]);
        let a = CpaModel::train(&graph, &profile, &ind, &cfg, 7);
        let b = CpaModel::train(&graph, &profile, &ind, &cfg, 7);
        assert_eq!(a.sample_count(), b.sample_count());
        assert_eq!(a.fresh_latency(3), b.fresh_latency(3));
    }

    /// Satellite: the trained cells must be bit-identical whether the
    /// grid is sharded over one thread or many — seeding is positional,
    /// never scheduling-dependent.
    #[test]
    fn train_is_thread_count_independent() {
        let (graph, profile) = fixture();
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let with_threads = |threads: Option<usize>| {
            let mut cfg = TrainConfig::fast(vec![2, 4, 8]);
            cfg.threads = threads;
            CpaModel::train(&graph, &profile, &ind, &cfg, 7)
        };
        let one = with_threads(Some(1));
        let three = with_threads(Some(3));
        let auto = with_threads(None);
        assert_eq!(one.cells, three.cells, "1 thread vs 3 threads");
        assert_eq!(one.cells, auto.cells, "1 thread vs one-per-allocation");
    }

    #[test]
    fn unconstrained_windows_cover_unit_interval() {
        let (graph, profile) = fixture();
        let rel = unconstrained_rel_windows(&graph, &profile, 5);
        assert_eq!(rel.len(), 2);
        // Map starts at 0; reduce ends at the job end.
        assert_eq!(rel[0].0, 0.0);
        assert!(rel[1].1 > 0.9);
        // Reduce starts after map in an unconstrained run too (barrier).
        assert!(rel[1].0 >= rel[0].1 - 0.3);
    }

    /// Satellite: `remaining()` answers from the precomputed table must
    /// be bit-identical to the raw `percentile_sorted` scan path
    /// (exposed via `remaining_percentile` at the configured percentile)
    /// across the whole trained grid — on-grid, between grid points, and
    /// clamped outside it, at every progress bin.
    #[test]
    fn table_queries_match_percentile_scan_bit_for_bit() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let max = *m.allocations().last().unwrap();
        for bin in 0..m.bins {
            // Probe a progress value inside each bin.
            let p = (bin as f64 + 0.5) / m.bins as f64;
            for a in 1..=(max + 4) {
                let fast = m.remaining(p, a);
                let slow = m.remaining_percentile(p, a, m.percentile());
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "p={p} a={a}: table {fast} vs scan {slow}"
                );
            }
        }
    }

    /// Satellite: the precomputed table folds in the outward empty-cell
    /// fallback scan exactly — sparse models answer from the nearest
    /// non-empty bin, and allocations with no samples at all read as
    /// `INFINITY`, matching `remaining_at_grid`.
    #[test]
    fn table_matches_scan_on_sparse_and_empty_cells() {
        // Hand-build a sparse model through the kv path: allocation 0
        // has samples only in bins 2 and 7; allocation 1 has none.
        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 10);
        kv.set_f64("percentile", 90.0);
        kv.set_f64_list("allocations", &[2.0, 8.0]);
        kv.set_f64_list("cell.0.2", &[5.0, 7.0, 11.0]);
        kv.set_f64_list("cell.0.7", &[1.0, 2.0]);
        let m = CpaModel::from_kv(&kv).expect("loads");
        for bin in 0..10 {
            let p = (bin as f64 + 0.5) / 10.0;
            // Allocation on-grid at 2: nearest non-empty cell answers.
            let fast = m.remaining(p, 2);
            let slow = m.remaining_at_grid(0, bin, 90.0);
            assert_eq!(fast.to_bits(), slow.to_bits(), "bin {bin}");
            assert!(fast.is_finite());
            // Allocation 8 has no samples anywhere: INFINITY, exactly as
            // the scan reports it.
            assert_eq!(m.remaining(p, 8), f64::INFINITY);
            assert_eq!(m.remaining_at_grid(1, bin, 90.0), f64::INFINITY);
            // Interpolating toward an empty allocation stays INFINITY
            // on both paths (finite + w * (inf - finite)).
            assert_eq!(
                m.remaining(p, 5).to_bits(),
                m.remaining_percentile(p, 5, 90.0).to_bits()
            );
        }
        // The queried bin itself wins when non-empty; ties between
        // equidistant neighbors prefer the lower bin — both inherited
        // from the scan, bit-for-bit.
        assert_eq!(
            m.remaining(0.25, 2),
            jockey_simrt::stats::percentile_sorted(&[5.0, 7.0, 11.0], 90.0)
        );
        assert_eq!(
            m.remaining(0.45, 2), // bin 4: closest non-empty are 2 and 7 -> bin 2 wins at d=2.
            jockey_simrt::stats::percentile_sorted(&[5.0, 7.0, 11.0], 90.0)
        );
    }

    #[test]
    fn model_implements_completion_model() {
        let (graph, profile) = fixture();
        let (m, _) = model(&graph, &profile);
        let cm: &dyn CompletionModel = &m;
        assert_eq!(cm.max_allocation(), 8);
        assert!(cm.remaining_secs(&[], 0.0, 4) > 0.0);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::progress::{IndicatorContext, ProgressIndicator};
    use jockey_cluster::FixedAllocation;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;

    #[test]
    fn kv_roundtrip_preserves_queries() {
        let mut b = JobGraphBuilder::new("persist");
        let m = b.stage("map", 8);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(10.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 3);
        sim.add_job(spec, Box::new(FixedAllocation(4)));
        let profile = sim.run_single().profile;
        let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let model = CpaModel::train(&graph, &profile, &ctx, &TrainConfig::fast(vec![2, 4]), 1);

        let round = CpaModel::from_kv(&model.to_kv()).expect("round-trips");
        assert_eq!(round.allocations(), model.allocations());
        assert_eq!(round.percentile(), model.percentile());
        assert_eq!(round.sample_count(), model.sample_count());
        for p in [0.0, 0.3, 0.7, 1.0] {
            for a in [1, 2, 3, 4, 8] {
                assert_eq!(round.remaining(p, a), model.remaining(p, a), "p={p} a={a}");
            }
        }
    }

    /// The on-disk artifact cache persists trained models through the
    /// `to_kv` → `to_text` → `from_text` → `from_kv` path, so a warm
    /// cache is only byte-equivalent to retraining if that full text
    /// round-trip is *bit*-identical — Rust's `{}` float formatting is
    /// shortest-round-trip, and this test is the proof.
    #[test]
    fn kv_text_round_trip_is_bit_identical() {
        let mut b = JobGraphBuilder::new("persist-text");
        let m = b.stage("map", 9);
        let r = b.stage("reduce", 3);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph.clone(), Constant(7.0), Constant(0.5), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 11);
        sim.add_job(spec, Box::new(FixedAllocation(4)));
        let profile = sim.run_single().profile;
        let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        let model = CpaModel::train(&graph, &profile, &ctx, &TrainConfig::fast(vec![2, 4, 6]), 5);

        let text = model.to_kv().to_text();
        let kv = jockey_simrt::table::KvStore::from_text(&text).expect("parses");
        let round = CpaModel::from_kv(&kv).expect("text round-trips");

        // Fixed point: re-serializing reproduces the exact same text,
        // which covers every stored sample bit-for-bit (any mantissa
        // drift would change the shortest-round-trip rendering).
        assert_eq!(round.to_kv().to_text(), text);

        // And the query surface agrees bitwise, at the configured and
        // at explicit percentiles.
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for a in [1, 2, 3, 4, 5, 6, 9] {
                assert_eq!(
                    round.remaining(p, a).to_bits(),
                    model.remaining(p, a).to_bits(),
                    "remaining(p={p}, a={a})"
                );
                assert_eq!(
                    round.remaining_percentile(p, a, 90.0).to_bits(),
                    model.remaining_percentile(p, a, 90.0).to_bits(),
                    "remaining_percentile(p={p}, a={a})"
                );
            }
        }
    }

    #[test]
    fn from_kv_rejects_malformed() {
        let kv = jockey_simrt::table::KvStore::new();
        assert_eq!(
            CpaModel::from_kv(&kv).unwrap_err(),
            ModelLoadError::MissingKey("bins")
        );

        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 0);
        kv.set_f64("percentile", 95.0);
        kv.set_f64_list("allocations", &[1.0]);
        assert_eq!(
            CpaModel::from_kv(&kv).unwrap_err(),
            ModelLoadError::EmptyModel
        );

        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 10);
        kv.set_f64("percentile", f64::NAN);
        kv.set_f64_list("allocations", &[1.0]);
        assert!(matches!(
            CpaModel::from_kv(&kv),
            Err(ModelLoadError::BadPercentile(v)) if v.is_nan()
        ));

        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 10);
        kv.set_f64("percentile", 95.0);
        kv.set_f64_list("allocations", &[1.0]);
        kv.set_f64_list("cell.5.0", &[1.0]); // Allocation index out of range.
        assert_eq!(
            CpaModel::from_kv(&kv).unwrap_err(),
            ModelLoadError::BadCell("cell.5.0".into())
        );

        let mut kv = jockey_simrt::table::KvStore::new();
        kv.set_u64("bins", 10);
        kv.set_f64("percentile", 95.0);
        kv.set_f64_list("allocations", &[1.0]);
        kv.set_f64_list("cell.0.not-a-bin", &[1.0]);
        assert!(matches!(
            CpaModel::from_kv(&kv),
            Err(ModelLoadError::BadCell(_))
        ));
    }

    #[test]
    fn train_config_check_rejects_bad_values() {
        assert!(TrainConfig::default().check().is_ok());

        let cfg = TrainConfig {
            allocations: vec![],
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::Allocations));

        let cfg = TrainConfig {
            allocations: vec![4, 2],
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::Allocations));

        let cfg = TrainConfig {
            runs_per_allocation: 0,
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::Runs));

        let cfg = TrainConfig {
            progress_bins: 1,
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::Bins(1)));

        // NaN must not sneak through the percentile range check.
        let cfg = TrainConfig {
            percentile: f64::NAN,
            ..TrainConfig::default()
        };
        assert!(matches!(
            cfg.check(),
            Err(InvalidTrainConfig::Percentile(v)) if v.is_nan()
        ));

        let cfg = TrainConfig {
            sample_period: SimDuration::ZERO,
            ..TrainConfig::default()
        };
        assert_eq!(cfg.check(), Err(InvalidTrainConfig::SamplePeriod));
    }
}
