//! Fair-share fallback on persistent model error (§5.6).
//!
//! "In certain cases, the job execution can significantly diverge from
//! the model … In these cases, we could … simply fall back on weighted
//! fair-sharing once the control loop detects large errors in model
//! predictions." [`FallbackGuard`] wraps any controller and watches its
//! reported completion estimate `T̂_t`: for a well-calibrated model the
//! estimate is stable, while a model that keeps *slipping* (each tick
//! pushing completion later by nearly the whole control period or more)
//! has lost predictive power. After `trigger_ticks` consecutive large
//! slips, the guard abandons the model and pins a configured fair-share
//! guarantee for the rest of the job.

use jockey_cluster::{ControlDecision, JobController, JobStatus};
use jockey_simrt::time::SimDuration;

/// Wraps a controller with the §5.6 fallback policy.
pub struct FallbackGuard<C> {
    inner: C,
    /// Guarantee applied after falling back (the job's weighted fair
    /// share).
    fair_share: u32,
    /// A slip counts when the completion estimate moves later by more
    /// than this fraction of the elapsed interval (1.0 = the estimate
    /// recedes as fast as time passes; the job is making no modelled
    /// progress).
    slip_tolerance: f64,
    /// Consecutive slips that trigger the fallback.
    trigger_ticks: u32,
    last: Option<(f64, f64, u32)>, // (elapsed, predicted completion, guarantee).
    consecutive: u32,
    fallen_back: bool,
}

impl<C: JobController> FallbackGuard<C> {
    /// Wraps `inner`, falling back to `fair_share` tokens after
    /// `trigger_ticks` consecutive prediction slips beyond
    /// `slip_tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if `trigger_ticks` is zero or `slip_tolerance` is not
    /// positive.
    pub fn new(inner: C, fair_share: u32, slip_tolerance: f64, trigger_ticks: u32) -> Self {
        assert!(trigger_ticks > 0);
        assert!(slip_tolerance > 0.0);
        FallbackGuard {
            inner,
            fair_share,
            slip_tolerance,
            trigger_ticks,
            last: None,
            consecutive: 0,
            fallen_back: false,
        }
    }

    /// True once the guard has abandoned the model.
    pub fn fallen_back(&self) -> bool {
        self.fallen_back
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: JobController> JobController for FallbackGuard<C> {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        if self.fallen_back {
            // Keep driving the inner controller's bookkeeping but pin
            // the fair share.
            let mut d = self.inner.tick(status);
            d.guarantee = self.fair_share;
            return d;
        }
        let d = self.inner.tick(status);
        let elapsed = status.elapsed.as_secs_f64();
        if let (Some((prev_elapsed, prev_pred, prev_guarantee)), Some(pred)) =
            (self.last, d.predicted_completion)
        {
            let dt = elapsed - prev_elapsed;
            // Releasing tokens legitimately pushes the estimate later;
            // only slips at non-decreasing allocation indicate model
            // error.
            if dt > 0.0 && d.guarantee >= prev_guarantee {
                let slip = (pred - prev_pred) / dt;
                if slip > self.slip_tolerance {
                    self.consecutive += 1;
                    if self.consecutive >= self.trigger_ticks {
                        self.fallen_back = true;
                        let mut d = d;
                        d.guarantee = self.fair_share;
                        return d;
                    }
                } else {
                    self.consecutive = 0;
                }
            }
        }
        if let Some(pred) = d.predicted_completion {
            self.last = Some((elapsed, pred, d.guarantee));
        }
        d
    }

    fn initial(&mut self, status: &JobStatus) -> ControlDecision {
        self.inner.initial(status)
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        self.inner.deadline_changed(new_deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::time::SimTime;

    /// A controller whose completion estimate recedes forever (a
    /// maximally wrong model).
    struct Slipping {
        pred: f64,
    }

    impl JobController for Slipping {
        fn tick(&mut self, _status: &JobStatus) -> ControlDecision {
            self.pred += 200.0; // Slips 200 s per 60 s tick.
            ControlDecision {
                guarantee: 50,
                raw: None,
                progress: None,
                predicted_completion: Some(self.pred),
            }
        }
    }

    /// A controller whose estimate is rock stable.
    struct Stable;

    impl JobController for Stable {
        fn tick(&mut self, _status: &JobStatus) -> ControlDecision {
            ControlDecision {
                guarantee: 50,
                raw: None,
                progress: None,
                predicted_completion: Some(1_000.0),
            }
        }
    }

    fn status(minute: u64) -> JobStatus {
        JobStatus {
            now: SimTime::from_mins(minute),
            elapsed: SimDuration::from_mins(minute),
            stage_fraction: vec![0.5],
            stage_completed: vec![5],
            running: 10,
            running_guaranteed: 10,
            guarantee: 50,
            work_done: 0.0,
            finished: false,
        }
    }

    #[test]
    fn persistent_slips_trigger_fallback() {
        let mut g = FallbackGuard::new(Slipping { pred: 0.0 }, 7, 1.5, 3);
        for minute in 0..3 {
            let d = g.tick(&status(minute));
            assert_eq!(d.guarantee, 50, "minute {minute} fell back early");
        }
        // Third consecutive slip (minute 3) trips the guard.
        let d = g.tick(&status(3));
        assert_eq!(d.guarantee, 7);
        assert!(g.fallen_back());
        // And it stays fallen back.
        let d = g.tick(&status(4));
        assert_eq!(d.guarantee, 7);
    }

    #[test]
    fn stable_predictions_never_fall_back() {
        let mut g = FallbackGuard::new(Stable, 7, 1.5, 3);
        for minute in 0..50 {
            let d = g.tick(&status(minute));
            assert_eq!(d.guarantee, 50);
        }
        assert!(!g.fallen_back());
    }

    #[test]
    fn intermittent_slips_reset_the_counter() {
        // Alternating slip/stable never reaches the trigger.
        struct Alternating {
            pred: f64,
            up: bool,
        }
        impl JobController for Alternating {
            fn tick(&mut self, _s: &JobStatus) -> ControlDecision {
                self.up = !self.up;
                if self.up {
                    self.pred += 200.0;
                }
                ControlDecision {
                    guarantee: 50,
                    raw: None,
                    progress: None,
                    predicted_completion: Some(self.pred),
                }
            }
        }
        let mut g = FallbackGuard::new(
            Alternating {
                pred: 0.0,
                up: false,
            },
            7,
            1.5,
            3,
        );
        for minute in 0..40 {
            g.tick(&status(minute));
        }
        assert!(!g.fallen_back());
    }
}

#[cfg(test)]
mod release_tests {
    use super::*;
    use jockey_simrt::time::SimTime;

    /// A healthy controller releasing tokens: each tick the guarantee
    /// drops and the (still-met) completion estimate moves later.
    struct Releasing {
        guarantee: u32,
        pred: f64,
    }

    impl JobController for Releasing {
        fn tick(&mut self, _s: &JobStatus) -> ControlDecision {
            self.guarantee = self.guarantee.saturating_sub(5).max(1);
            self.pred += 150.0; // Prediction recedes as tokens go back.
            ControlDecision {
                guarantee: self.guarantee,
                raw: None,
                progress: None,
                predicted_completion: Some(self.pred),
            }
        }
    }

    fn status(minute: u64) -> JobStatus {
        JobStatus {
            now: SimTime::from_mins(minute),
            elapsed: jockey_simrt::time::SimDuration::from_mins(minute),
            stage_fraction: vec![0.5],
            stage_completed: vec![5],
            running: 10,
            running_guaranteed: 10,
            guarantee: 50,
            work_done: 0.0,
            finished: false,
        }
    }

    #[test]
    fn healthy_releases_do_not_trip_the_guard() {
        let mut g = FallbackGuard::new(
            Releasing {
                guarantee: 200,
                pred: 1_000.0,
            },
            7,
            1.5,
            3,
        );
        // Guarantee decreases on every one of these ticks, so no slip
        // may be counted however fast the estimate recedes.
        for minute in 0..30 {
            g.tick(&status(minute));
        }
        assert!(!g.fallen_back(), "guard tripped on healthy releases");
    }
}
