//! Fair-share fallback on persistent model error (§5.6).
//!
//! "In certain cases, the job execution can significantly diverge from
//! the model … In these cases, we could … simply fall back on weighted
//! fair-sharing once the control loop detects large errors in model
//! predictions." [`FallbackLayer`] is a [`ControlLayer`] stacked over
//! any controller; it watches the reported completion estimate `T̂_t`:
//! for a well-calibrated model the estimate is stable, while a model
//! that keeps *slipping* (each tick pushing completion later by nearly
//! the whole control period or more) has lost predictive power. After
//! `trigger_ticks` consecutive large slips, the layer abandons the
//! model and pins a configured fair-share guarantee for the rest of the
//! job.

use jockey_cluster::{ControlDecision, JobController, JobStatus};

use crate::control::JockeyController;
use crate::layer::{ControlLayer, Layered};

/// The §5.6 fallback policy as a stackable [`ControlLayer`].
pub struct FallbackLayer {
    /// Guarantee applied after falling back (the job's weighted fair
    /// share).
    fair_share: u32,
    /// A slip counts when the completion estimate moves later by more
    /// than this fraction of the elapsed interval (1.0 = the estimate
    /// recedes as fast as time passes; the job is making no modelled
    /// progress).
    slip_tolerance: f64,
    /// Consecutive slips that trigger the fallback.
    trigger_ticks: u32,
    last: Option<(f64, f64, u32)>, // (elapsed, predicted completion, guarantee).
    consecutive: u32,
    fallen_back: bool,
}

impl FallbackLayer {
    /// A layer falling back to `fair_share` tokens after
    /// `trigger_ticks` consecutive prediction slips beyond
    /// `slip_tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if `trigger_ticks` is zero or `slip_tolerance` is not
    /// positive.
    pub fn new(fair_share: u32, slip_tolerance: f64, trigger_ticks: u32) -> Self {
        assert!(trigger_ticks > 0);
        assert!(slip_tolerance > 0.0);
        FallbackLayer {
            fair_share,
            slip_tolerance,
            trigger_ticks,
            last: None,
            consecutive: 0,
            fallen_back: false,
        }
    }

    /// True once the layer has abandoned the model.
    pub fn fallen_back(&self) -> bool {
        self.fallen_back
    }
}

impl ControlLayer for FallbackLayer {
    fn name(&self) -> &'static str {
        "fallback"
    }

    fn after_tick(&mut self, status: &JobStatus, d: ControlDecision) -> ControlDecision {
        if self.fallen_back {
            // The inner controller keeps its bookkeeping running, but
            // the fair share is pinned.
            let mut d = d;
            d.guarantee = self.fair_share;
            return d;
        }
        let elapsed = status.elapsed.as_secs_f64();
        if let (Some((prev_elapsed, prev_pred, prev_guarantee)), Some(pred)) =
            (self.last, d.predicted_completion)
        {
            let dt = elapsed - prev_elapsed;
            // Releasing tokens legitimately pushes the estimate later;
            // only slips at non-decreasing allocation indicate model
            // error.
            if dt > 0.0 && d.guarantee >= prev_guarantee {
                let slip = (pred - prev_pred) / dt;
                if slip > self.slip_tolerance {
                    self.consecutive += 1;
                    if self.consecutive >= self.trigger_ticks {
                        self.fallen_back = true;
                        let mut d = d;
                        d.guarantee = self.fair_share;
                        return d;
                    }
                } else {
                    self.consecutive = 0;
                }
            }
        }
        if let Some(pred) = d.predicted_completion {
            self.last = Some((elapsed, pred, d.guarantee));
        }
        d
    }
}

/// Wraps a controller with the §5.6 fallback policy (kept as a named
/// convenience; any stack order via [`Layered::with`] works too).
pub fn with_fallback<C: JobController>(
    inner: C,
    fair_share: u32,
    slip_tolerance: f64,
    trigger_ticks: u32,
) -> Layered<C> {
    Layered::new(inner).with(Box::new(FallbackLayer::new(
        fair_share,
        slip_tolerance,
        trigger_ticks,
    )))
}

/// The historical guarded-Jockey shape: a [`JockeyController`] under a
/// [`FallbackLayer`].
pub type GuardedController = Layered<JockeyController>;

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::time::{SimDuration, SimTime};

    /// A controller whose completion estimate recedes forever (a
    /// maximally wrong model).
    struct Slipping {
        pred: f64,
    }

    impl JobController for Slipping {
        fn tick(&mut self, _status: &JobStatus) -> ControlDecision {
            self.pred += 200.0; // Slips 200 s per 60 s tick.
            ControlDecision {
                guarantee: 50,
                raw: None,
                progress: None,
                predicted_completion: Some(self.pred),
            }
        }
    }

    /// A controller whose estimate is rock stable.
    struct Stable;

    impl JobController for Stable {
        fn tick(&mut self, _status: &JobStatus) -> ControlDecision {
            ControlDecision {
                guarantee: 50,
                raw: None,
                progress: None,
                predicted_completion: Some(1_000.0),
            }
        }
    }

    fn status(minute: u64) -> JobStatus {
        JobStatus {
            now: SimTime::from_mins(minute),
            elapsed: SimDuration::from_mins(minute),
            stage_fraction: vec![0.5],
            stage_completed: vec![5],
            running: 10,
            running_guaranteed: 10,
            guarantee: 50,
            work_done: 0.0,
            finished: false,
        }
    }

    fn fallen_back<C: JobController>(c: &Layered<C>) -> bool {
        c.layer::<FallbackLayer>().unwrap().fallen_back()
    }

    #[test]
    fn persistent_slips_trigger_fallback() {
        let mut g = with_fallback(Slipping { pred: 0.0 }, 7, 1.5, 3);
        for minute in 0..3 {
            let d = g.tick(&status(minute));
            assert_eq!(d.guarantee, 50, "minute {minute} fell back early");
        }
        // Third consecutive slip (minute 3) trips the guard.
        let d = g.tick(&status(3));
        assert_eq!(d.guarantee, 7);
        assert!(fallen_back(&g));
        // And it stays fallen back.
        let d = g.tick(&status(4));
        assert_eq!(d.guarantee, 7);
    }

    #[test]
    fn stable_predictions_never_fall_back() {
        let mut g = with_fallback(Stable, 7, 1.5, 3);
        for minute in 0..50 {
            let d = g.tick(&status(minute));
            assert_eq!(d.guarantee, 50);
        }
        assert!(!fallen_back(&g));
    }

    #[test]
    fn initial_decision_bypasses_the_guard() {
        // Admission-time sizing carries no slip signal; the layer's
        // after_initial hook is a pass-through and records nothing.
        let mut g = with_fallback(Slipping { pred: 0.0 }, 7, 1.5, 1);
        let d = g.initial(&status(0));
        assert_eq!(d.guarantee, 50);
        assert!(!fallen_back(&g));
    }

    #[test]
    fn intermittent_slips_reset_the_counter() {
        // Alternating slip/stable never reaches the trigger.
        struct Alternating {
            pred: f64,
            up: bool,
        }
        impl JobController for Alternating {
            fn tick(&mut self, _s: &JobStatus) -> ControlDecision {
                self.up = !self.up;
                if self.up {
                    self.pred += 200.0;
                }
                ControlDecision {
                    guarantee: 50,
                    raw: None,
                    progress: None,
                    predicted_completion: Some(self.pred),
                }
            }
        }
        let mut g = with_fallback(
            Alternating {
                pred: 0.0,
                up: false,
            },
            7,
            1.5,
            3,
        );
        for minute in 0..40 {
            g.tick(&status(minute));
        }
        assert!(!fallen_back(&g));
    }
}

#[cfg(test)]
mod release_tests {
    use super::*;
    use jockey_simrt::time::{SimDuration, SimTime};

    /// A healthy controller releasing tokens: each tick the guarantee
    /// drops and the (still-met) completion estimate moves later.
    struct Releasing {
        guarantee: u32,
        pred: f64,
    }

    impl JobController for Releasing {
        fn tick(&mut self, _s: &JobStatus) -> ControlDecision {
            self.guarantee = self.guarantee.saturating_sub(5).max(1);
            self.pred += 150.0; // Prediction recedes as tokens go back.
            ControlDecision {
                guarantee: self.guarantee,
                raw: None,
                progress: None,
                predicted_completion: Some(self.pred),
            }
        }
    }

    fn status(minute: u64) -> JobStatus {
        JobStatus {
            now: SimTime::from_mins(minute),
            elapsed: SimDuration::from_mins(minute),
            stage_fraction: vec![0.5],
            stage_completed: vec![5],
            running: 10,
            running_guaranteed: 10,
            guarantee: 50,
            work_done: 0.0,
            finished: false,
        }
    }

    #[test]
    fn healthy_releases_do_not_trip_the_guard() {
        let mut g = with_fallback(
            Releasing {
                guarantee: 200,
                pred: 1_000.0,
            },
            7,
            1.5,
            3,
        );
        // Guarantee decreases on every one of these ticks, so no slip
        // may be counted however fast the estimate recedes.
        for minute in 0..30 {
            g.tick(&status(minute));
        }
        assert!(
            !g.layer::<FallbackLayer>().unwrap().fallen_back(),
            "guard tripped on healthy releases"
        );
    }
}
