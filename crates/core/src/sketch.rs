//! A mergeable quantile sketch for `C(p, a)` sample cells.
//!
//! [`CellSketch`] is a deterministic fixed-capacity compacting sketch
//! in the KLL/MRL family: items live in levels, an item at level `i`
//! stands for `2^i` original samples, and every level is kept as an
//! ascending-sorted run. When a level outgrows the capacity `k`, its
//! buffer is *pair-compacted*: the sorted buffer is split into adjacent
//! pairs and one item of each pair (alternating parity across
//! compactions) is promoted to the next level with doubled weight.
//!
//! # Error bound
//!
//! One pair-compaction of the level-`i` buffer changes the weight below
//! any query point by at most `2^i` (each pair contributes either its
//! low or its high item; adjacent pairs telescope). The sketch counts
//! every compaction per level, so
//!
//! ```text
//! rank_error_bound() = Σ_i compactions[i] · 2^i
//! ```
//!
//! is a *tracked, worst-case* bound on the rank error of any quantile
//! answer, in units of original samples. Queries interpolate on the
//! expanded weighted multiset exactly as
//! [`percentile_sorted`](jockey_simrt::stats::percentile_sorted) does
//! on a raw sorted slice, so a sketch that has never compacted —
//! including every sketch in *exact* mode (`capacity == None`, level 0
//! unbounded) — answers **bit-identically** to the raw sample list.
//! That exactness is what keeps frozen offline-trained models
//! byte-identical to the pre-sketch format.
//!
//! Sketches merge level-wise in `O(items)`: merging preserves both the
//! weighted multiset and the compaction counters, so the bound above
//! survives arbitrary batch splits and absorb orders (the property
//! tests in `cpa` drive this).

use jockey_simrt::stats::percentile_sorted;

/// A mergeable, deterministic compacting quantile sketch over `f64`
/// samples. `capacity == None` is *exact* mode: level 0 is unbounded
/// and never compacts, so the sketch is just a sorted sample list.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSketch {
    /// Per-level buffer capacity; `None` = exact (unbounded level 0).
    capacity: Option<usize>,
    /// `levels[i]`: ascending-sorted items of weight `2^i`.
    levels: Vec<Vec<f64>>,
    /// Pair-compaction operations performed at each level. The low bit
    /// doubles as the next compaction's selection parity, so the
    /// counters fully determine the sketch's future behaviour — no
    /// hidden state to serialize.
    compactions: Vec<u64>,
}

/// Smallest permitted per-level capacity: below this the worst-case
/// rank error per compaction rivals the buffer itself.
pub const MIN_SKETCH_CAPACITY: usize = 8;

impl CellSketch {
    /// An empty sketch. `capacity == None` is exact mode.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is below [`MIN_SKETCH_CAPACITY`].
    pub fn new(capacity: Option<usize>) -> Self {
        if let Some(k) = capacity {
            assert!(k >= MIN_SKETCH_CAPACITY, "sketch capacity {k} too small");
        }
        CellSketch {
            capacity,
            levels: vec![Vec::new()],
            compactions: vec![0],
        }
    }

    /// Builds a sketch by bulk-loading an ascending-sorted batch.
    pub fn from_sorted(sorted: Vec<f64>, capacity: Option<usize>) -> Self {
        let mut s = CellSketch::new(capacity);
        s.levels[0] = sorted;
        s.shrink();
        s
    }

    /// Reconstructs a sketch from serialized parts. Levels are
    /// re-sorted defensively (already-sorted input round-trips
    /// bit-identically). Returns `None` when the shapes disagree.
    pub fn from_parts(
        capacity: Option<usize>,
        mut levels: Vec<Vec<f64>>,
        mut compactions: Vec<u64>,
    ) -> Option<Self> {
        if capacity.is_some_and(|k| k < MIN_SKETCH_CAPACITY) {
            return None;
        }
        if levels.is_empty() {
            levels.push(Vec::new());
        }
        if compactions.len() > levels.len() {
            return None;
        }
        compactions.resize(levels.len(), 0);
        for level in &mut levels {
            level.sort_by(f64::total_cmp);
        }
        Some(CellSketch {
            capacity,
            levels,
            compactions,
        })
    }

    /// The per-level capacity (`None` = exact mode).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The per-level sorted buffers (level `i` items weigh `2^i`).
    pub fn levels(&self) -> &[Vec<f64>] {
        &self.levels
    }

    /// Pair-compactions performed per level.
    pub fn compactions(&self) -> &[u64] {
        &self.compactions
    }

    /// Whether the sketch holds no items at all.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(Vec::is_empty)
    }

    /// Total represented sample count (the summed item weights).
    pub fn count(&self) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.len() as u64) << i)
            .sum()
    }

    /// Stored item count (the sketch's actual footprint).
    pub fn item_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Tracked worst-case rank error of any quantile answer, in units
    /// of original samples: `Σ_i compactions[i] · 2^i`. Zero for exact
    /// or never-compacted sketches.
    pub fn rank_error_bound(&self) -> u64 {
        self.compactions
            .iter()
            .enumerate()
            .map(|(i, &c)| c << i)
            .sum()
    }

    /// Inserts one sample.
    pub fn push(&mut self, v: f64) {
        let at = self.levels[0].partition_point(|&x| x.total_cmp(&v).is_lt());
        self.levels[0].insert(at, v);
        self.shrink();
    }

    /// Merges an ascending-sorted batch of samples.
    pub fn extend_sorted(&mut self, sorted: &[f64]) {
        let merged = merge_sorted(&self.levels[0], sorted);
        self.levels[0] = merged;
        self.shrink();
    }

    /// Folds `other` into `self` level-wise in `O(items)`. The weighted
    /// multisets and compaction counters add, so the merged sketch's
    /// [`CellSketch::rank_error_bound`] is the sum of both bounds plus
    /// whatever compactions the merge itself triggers.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were built with different capacities.
    pub fn merge(&mut self, other: &CellSketch) {
        assert_eq!(self.capacity, other.capacity, "incompatible sketches");
        if other.levels.len() > self.levels.len() {
            self.levels.resize(other.levels.len(), Vec::new());
            self.compactions.resize(other.levels.len(), 0);
        }
        for (i, level) in other.levels.iter().enumerate() {
            if !level.is_empty() {
                self.levels[i] = merge_sorted(&self.levels[i], level);
            }
        }
        for (i, &c) in other.compactions.iter().enumerate() {
            self.compactions[i] += c;
        }
        self.shrink();
    }

    /// The `q`-th percentile (`0..=100`) of the expanded weighted
    /// multiset, with the same rank definition and linear interpolation
    /// as [`percentile_sorted`] — to which it is bit-identical whenever
    /// every item weighs 1 (exact mode, or bounded mode before the
    /// first compaction).
    ///
    /// # Panics
    ///
    /// Panics on an empty sketch or a percentile outside `[0, 100]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=100.0).contains(&q), "percentile {q} out of range");
        assert!(!self.is_empty(), "quantile of an empty sketch");
        if self.levels[1..].iter().all(Vec::is_empty) {
            // Single-level fast path: defer to the raw-slice kernel so
            // frozen-mode answers stay bit-for-bit identical.
            return percentile_sorted(&self.levels[0], q);
        }
        let mut items: Vec<(f64, u64)> = Vec::with_capacity(self.item_count());
        for (i, level) in self.levels.iter().enumerate() {
            items.extend(level.iter().map(|&v| (v, 1_u64 << i)));
        }
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        // Rank on the expanded multiset of `total` samples, exactly as
        // percentile_sorted ranks a slice of length `total`.
        let rank = q / 100.0 * (total - 1) as f64;
        let lo = rank.floor() as u64;
        let hi = rank.ceil() as u64;
        let (vlo, vhi) = (value_at(&items, lo), value_at(&items, hi));
        vlo + (vhi - vlo) * (rank - lo as f64)
    }

    /// Compacts every over-full level, cascading promotions upward.
    fn shrink(&mut self) {
        let Some(k) = self.capacity else { return };
        let mut i = 0;
        while i < self.levels.len() {
            if self.levels[i].len() > k {
                self.compact_level(i);
            }
            i += 1;
        }
    }

    /// One pair-compaction of level `i`: promote alternate items of the
    /// sorted buffer to level `i + 1` with doubled weight. An odd
    /// trailing item stays at level `i` un-promoted (no error). The
    /// selection parity alternates with the compaction counter so
    /// successive compactions' rank errors partially cancel.
    fn compact_level(&mut self, i: usize) {
        if self.levels.len() == i + 1 {
            self.levels.push(Vec::new());
            self.compactions.push(0);
        }
        let buf = std::mem::take(&mut self.levels[i]);
        let parity = (self.compactions[i] & 1) as usize;
        let even = buf.len() & !1;
        let promoted: Vec<f64> = buf[..even]
            .iter()
            .copied()
            .skip(parity)
            .step_by(2)
            .collect();
        if even < buf.len() {
            self.levels[i].push(buf[even]);
        }
        self.compactions[i] += 1;
        self.levels[i + 1] = merge_sorted(&self.levels[i + 1], &promoted);
    }
}

/// Index into the expanded weighted multiset: the value of the item
/// covering expanded position `j` (0-based).
fn value_at(items: &[(f64, u64)], j: u64) -> f64 {
    let mut cum = 0_u64;
    for &(v, w) in items {
        cum += w;
        if j < cum {
            return v;
        }
    }
    items.last().expect("non-empty items").0
}

/// Merges two ascending-sorted slices into a new ascending-sorted
/// vector, preserving the bitwise order `f64::total_cmp` defines.
fn merge_sorted(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].total_cmp(&b[j]).is_le() {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::rng::SeedDeriver;
    use rand::Rng;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        percentile_sorted(sorted, q)
    }

    /// The sketch's documented guarantee, checked directly: for every
    /// probed percentile, the answer must lie between the exact values
    /// at ranks `rank ± (bound + w_max)` — `w_max` covering the
    /// interpolation straddle between two adjacent heavy items.
    fn assert_within_bound(sketch: &CellSketch, sorted: &[f64], q: f64) {
        let v = sketch.quantile(q);
        let n = sorted.len() as f64;
        let slop = (sketch.rank_error_bound() + (1 << (sketch.levels().len() - 1))) as f64;
        let rank = q / 100.0 * (n - 1.0);
        let lo_rank = ((rank - slop).floor().max(0.0)) as usize;
        let hi_rank = ((rank + slop).ceil() as usize).min(sorted.len() - 1);
        assert!(
            sorted[lo_rank] <= v && v <= sorted[hi_rank],
            "q={q}: {v} outside [{}, {}] (bound {slop} ranks)",
            sorted[lo_rank],
            sorted[hi_rank],
        );
    }

    #[test]
    fn exact_mode_matches_percentile_sorted_bit_for_bit() {
        let mut rng = SeedDeriver::new(7).rng("sketch-exact");
        let mut s = CellSketch::new(None);
        let mut raw: Vec<f64> = Vec::new();
        for _ in 0..257 {
            let v: f64 = rng.gen_range(-5.0..5000.0);
            s.push(v);
            raw.push(v);
        }
        raw.sort_by(f64::total_cmp);
        assert_eq!(s.levels()[0], raw);
        assert_eq!(s.rank_error_bound(), 0);
        for q in [0.0, 1.0, 37.5, 50.0, 90.0, 95.0, 99.9, 100.0] {
            assert_eq!(
                s.quantile(q).to_bits(),
                exact_quantile(&raw, q).to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn bounded_mode_stays_within_tracked_rank_error() {
        let mut rng = SeedDeriver::new(11).rng("sketch-bound");
        for k in [8, 16, 64] {
            let mut s = CellSketch::new(Some(k));
            let mut raw: Vec<f64> = Vec::new();
            for _ in 0..4000 {
                let v: f64 = rng.gen_range(0.0..1.0_f64).powi(3) * 1e4;
                s.push(v);
                raw.push(v);
            }
            raw.sort_by(f64::total_cmp);
            assert_eq!(s.count(), raw.len() as u64);
            assert!(s.item_count() <= raw.len());
            assert!(s.rank_error_bound() > 0, "k={k} never compacted");
            for q in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
                assert_within_bound(&s, &raw, q);
            }
        }
    }

    #[test]
    fn merge_is_weight_preserving_and_split_insensitive() {
        let mut rng = SeedDeriver::new(13).rng("sketch-merge");
        let vals: Vec<f64> = (0..3000).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);

        // One sketch per arbitrary chunk, merged pairwise in a skewed
        // order; the result must keep the total weight and the bound.
        for chunk in [1, 7, 128, 1000] {
            let mut merged = CellSketch::new(Some(16));
            for piece in vals.chunks(chunk) {
                let mut part = CellSketch::new(Some(16));
                for &v in piece {
                    part.push(v);
                }
                merged.merge(&part);
            }
            assert_eq!(merged.count(), vals.len() as u64, "chunk {chunk}");
            for q in [5.0, 50.0, 95.0] {
                assert_within_bound(&merged, &sorted, q);
            }
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let mut s = CellSketch::new(Some(8));
        for i in 0..100 {
            s.push(f64::from(i) * 0.5);
        }
        let rebuilt =
            CellSketch::from_parts(s.capacity(), s.levels().to_vec(), s.compactions().to_vec())
                .expect("parts are valid");
        assert_eq!(rebuilt, s);
        // Shape mismatches are rejected, not mangled.
        assert!(CellSketch::from_parts(Some(8), vec![vec![1.0]], vec![0, 0, 0]).is_none());
        assert!(CellSketch::from_parts(Some(2), vec![vec![1.0]], vec![0]).is_none());
    }

    #[test]
    fn empty_and_tiny_sketches_behave() {
        let mut s = CellSketch::new(None);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        s.push(3.5);
        assert_eq!(s.quantile(0.0), 3.5);
        assert_eq!(s.quantile(100.0), 3.5);
    }
}
