//! Job progress indicators (§4.2, §5.4).
//!
//! A progress indicator maps the per-stage completion fractions `f_s`
//! of a running job to a scalar in `[0, 1]` used to index the
//! `C(p, a)` distributions. The paper builds six and finds
//! `totalworkWithQ` — total queueing-plus-execution time of completed
//! tasks — to work best; the structural indicators (`cp`, `minstage`)
//! get "stuck" during long stages, confusing the control loop.

use jockey_jobgraph::graph::JobGraph;
use jockey_jobgraph::profile::JobProfile;

/// The six indicator families of §4.2/§5.4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProgressIndicator {
    /// `Σ_s f_s (Q_s + T_s)` — completed tasks' queueing plus execution
    /// time (Jockey's default).
    TotalWorkWithQ,
    /// `Σ_s f_s T_s` — completed tasks' execution time only.
    TotalWork,
    /// Fraction of all vertices completed.
    VertexFrac,
    /// Fraction of the critical path completed
    /// (`1 − S_t / S_0` with `S_t` from the Amdahl inputs).
    CriticalPath,
    /// The stage furthest from its typical completion time, with stage
    /// windows taken from the previous run.
    MinStage,
    /// Like `MinStage`, but stage windows come from an
    /// unconstrained-resources simulation (critical-path focused).
    MinStageInf,
}

impl ProgressIndicator {
    /// All indicator variants, in the order of the paper's Fig. 10.
    pub const ALL: [ProgressIndicator; 6] = [
        ProgressIndicator::TotalWorkWithQ,
        ProgressIndicator::TotalWork,
        ProgressIndicator::VertexFrac,
        ProgressIndicator::CriticalPath,
        ProgressIndicator::MinStage,
        ProgressIndicator::MinStageInf,
    ];

    /// The name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ProgressIndicator::TotalWorkWithQ => "totalworkWithQ",
            ProgressIndicator::TotalWork => "totalwork",
            ProgressIndicator::VertexFrac => "vertexfrac",
            ProgressIndicator::CriticalPath => "CP",
            ProgressIndicator::MinStage => "minstage",
            ProgressIndicator::MinStageInf => "minstage-inf",
        }
    }
}

/// Precomputed per-stage data enabling O(stages) progress evaluation.
///
/// Built once per (job, indicator) from the training profile; at
/// runtime only the completion fractions `f_s` change.
#[derive(Clone, Debug)]
pub struct IndicatorContext {
    kind: ProgressIndicator,
    /// `Q_s + T_s` per stage.
    work_with_q: Vec<f64>,
    /// `T_s` per stage.
    work: Vec<f64>,
    /// Task counts per stage.
    tasks: Vec<f64>,
    /// `l_s` per stage (longest task runtime).
    max_runtime: Vec<f64>,
    /// `L_s` per stage (longest path from completion to job end).
    longest_path: Vec<f64>,
    /// Critical path at job start.
    cp_total: f64,
    /// Relative stage windows `(tb_s, te_s)` from the training run.
    rel: Vec<(f64, f64)>,
    /// Relative stage windows from an unconstrained run (for
    /// `minstage-inf`); falls back to `rel` when not supplied.
    rel_inf: Vec<(f64, f64)>,
}

impl IndicatorContext {
    /// Builds a context for `kind` from a training profile.
    ///
    /// `rel_inf` supplies the unconstrained-run stage windows needed by
    /// [`ProgressIndicator::MinStageInf`]; pass `None` to fall back to
    /// the profile's own windows (see
    /// [`crate::cpa::unconstrained_rel_windows`] for the standard way
    /// to obtain them).
    ///
    /// # Panics
    ///
    /// Panics if the profile's stage count differs from the graph's, or
    /// if `rel_inf` has the wrong length.
    pub fn new(
        kind: ProgressIndicator,
        graph: &JobGraph,
        profile: &JobProfile,
        rel_inf: Option<Vec<(f64, f64)>>,
    ) -> Self {
        assert_eq!(graph.num_stages(), profile.stages.len());
        let work_with_q: Vec<f64> = profile
            .stages
            .iter()
            .map(|s| s.total_exec() + s.total_queue())
            .collect();
        let work: Vec<f64> = profile.stages.iter().map(|s| s.total_exec()).collect();
        let tasks: Vec<f64> = profile.stages.iter().map(|s| f64::from(s.tasks)).collect();
        let max_runtime = profile.max_runtimes();
        let longest_path = profile.longest_paths(graph);
        let cp_total = profile.critical_path(graph);
        let rel: Vec<(f64, f64)> = profile
            .stages
            .iter()
            .map(|s| (s.rel_start, s.rel_end))
            .collect();
        let rel_inf = match rel_inf {
            Some(r) => {
                assert_eq!(r.len(), rel.len(), "rel_inf length mismatch");
                r
            }
            None => rel.clone(),
        };
        IndicatorContext {
            kind,
            work_with_q,
            work,
            tasks,
            max_runtime,
            longest_path,
            cp_total,
            rel,
            rel_inf,
        }
    }

    /// Which indicator this context evaluates.
    pub fn kind(&self) -> ProgressIndicator {
        self.kind
    }

    /// Number of stages this context was built for.
    pub fn stage_count(&self) -> usize {
        self.tasks.len()
    }

    /// Evaluates the indicator at completion fractions `fs`, returning
    /// progress in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `fs.len()` differs from the stage count.
    pub fn progress(&self, fs: &[f64]) -> f64 {
        assert_eq!(fs.len(), self.tasks.len(), "fs length mismatch");
        let p = match self.kind {
            ProgressIndicator::TotalWorkWithQ => weighted_fraction(fs, &self.work_with_q),
            ProgressIndicator::TotalWork => weighted_fraction(fs, &self.work),
            ProgressIndicator::VertexFrac => weighted_fraction(fs, &self.tasks),
            ProgressIndicator::CriticalPath => {
                if self.cp_total <= 0.0 {
                    1.0
                } else {
                    1.0 - self.remaining_critical_path(fs) / self.cp_total
                }
            }
            ProgressIndicator::MinStage => min_stage(fs, &self.rel),
            ProgressIndicator::MinStageInf => min_stage(fs, &self.rel_inf),
        };
        p.clamp(0.0, 1.0)
    }

    /// `S_t`: the remaining critical path at fractions `fs`
    /// (§4.1: `max_{s: f_s<1} (1−f_s) l_s + L_s`).
    pub fn remaining_critical_path(&self, fs: &[f64]) -> f64 {
        let mut st: f64 = 0.0;
        for (s, &f) in fs.iter().enumerate() {
            if f < 1.0 {
                st = st.max((1.0 - f) * self.max_runtime[s] + self.longest_path[s]);
            }
        }
        st
    }
}

/// `Σ f_s w_s / Σ w_s`, or 1 when the weights sum to zero.
fn weighted_fraction(fs: &[f64], weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    fs.iter().zip(weights).map(|(&f, &w)| f * w).sum::<f64>() / total
}

/// `min_{s: f_s<1} tb_s + f_s (te_s − tb_s)`, or 1 if all finished.
fn min_stage(fs: &[f64], rel: &[(f64, f64)]) -> f64 {
    let mut min = f64::INFINITY;
    for (s, &f) in fs.iter().enumerate() {
        if f < 1.0 {
            let (tb, te) = rel[s];
            min = min.min(tb + f * (te - tb));
        }
    }
    if min.is_infinite() {
        1.0
    } else {
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_jobgraph::profile::ProfileBuilder;
    use jockey_jobgraph::StageId;

    fn fixture() -> (JobGraph, JobProfile) {
        let mut b = JobGraphBuilder::new("f");
        let m = b.stage("map", 2);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let g = b.build().unwrap();
        let mut pb = ProfileBuilder::new(&g);
        // Map: 2 tasks, 10 s each, 2 s queue. Reduce: 2 tasks, 30 s, 0 q.
        pb.record_task(StageId(0), 2.0, 10.0, false);
        pb.record_task(StageId(0), 2.0, 10.0, false);
        pb.record_task(StageId(1), 0.0, 30.0, false);
        pb.record_task(StageId(1), 0.0, 30.0, false);
        pb.record_stage_window(StageId(0), 0.0, 10.0);
        pb.record_stage_window(StageId(1), 10.0, 40.0);
        let p = pb.finish(40.0, 1.0);
        (g, p)
    }

    #[test]
    fn all_indicators_span_zero_to_one() {
        let (g, p) = fixture();
        for kind in ProgressIndicator::ALL {
            let ctx = IndicatorContext::new(kind, &g, &p, None);
            assert_eq!(ctx.progress(&[0.0, 0.0]), 0.0, "{kind:?} at start");
            assert_eq!(ctx.progress(&[1.0, 1.0]), 1.0, "{kind:?} at end");
            let mid = ctx.progress(&[1.0, 0.5]);
            assert!((0.0..=1.0).contains(&mid), "{kind:?} mid {mid}");
        }
    }

    #[test]
    fn totalwork_with_q_weights_queueing() {
        let (g, p) = fixture();
        let with_q = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &g, &p, None);
        let no_q = IndicatorContext::new(ProgressIndicator::TotalWork, &g, &p, None);
        // Map done only: withQ = 24/84, totalwork = 20/80.
        let fs = [1.0, 0.0];
        assert!((with_q.progress(&fs) - 24.0 / 84.0).abs() < 1e-12);
        assert!((no_q.progress(&fs) - 20.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn vertexfrac_counts_tasks() {
        let (g, p) = fixture();
        let ctx = IndicatorContext::new(ProgressIndicator::VertexFrac, &g, &p, None);
        assert_eq!(ctx.progress(&[0.5, 0.0]), 0.25);
    }

    #[test]
    fn critical_path_tracks_remaining_cp() {
        let (g, p) = fixture();
        let ctx = IndicatorContext::new(ProgressIndicator::CriticalPath, &g, &p, None);
        // cp_total = 10 + 30 = 40. With map done, St = 30.
        assert!((ctx.progress(&[1.0, 0.0]) - 0.25).abs() < 1e-12);
        // Map half done: St = max(0.5*10+30, 30) = 35 -> p = 0.125.
        assert!((ctx.progress(&[0.5, 0.0]) - 0.125).abs() < 1e-12);
        assert_eq!(ctx.remaining_critical_path(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cp_gets_stuck_during_long_reduce() {
        // The §5.4 pathology: while reduce tasks run (f unchanged), CP
        // reports constant progress even though work is happening.
        let (g, p) = fixture();
        let ctx = IndicatorContext::new(ProgressIndicator::CriticalPath, &g, &p, None);
        let a = ctx.progress(&[1.0, 0.0]);
        let b = ctx.progress(&[1.0, 0.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn minstage_uses_relative_windows() {
        let (g, p) = fixture();
        let ctx = IndicatorContext::new(ProgressIndicator::MinStage, &g, &p, None);
        // Map windows [0, 0.25], reduce [0.25, 1.0].
        // fs = [0.5, 0]: map term = 0.125, reduce term = 0.25 -> 0.125.
        assert!((ctx.progress(&[0.5, 0.0]) - 0.125).abs() < 1e-12);
        // Map finished: only reduce term remains.
        assert!((ctx.progress(&[1.0, 0.5]) - (0.25 + 0.5 * 0.75)).abs() < 1e-12);
    }

    #[test]
    fn minstage_inf_uses_supplied_windows() {
        let (g, p) = fixture();
        let inf = vec![(0.0, 0.5), (0.5, 1.0)];
        let ctx = IndicatorContext::new(ProgressIndicator::MinStageInf, &g, &p, Some(inf));
        assert!((ctx.progress(&[0.5, 0.0]) - 0.25).abs() < 1e-12);
        // Without supplied windows it falls back to the profile's.
        let ctx2 = IndicatorContext::new(ProgressIndicator::MinStageInf, &g, &p, None);
        assert!((ctx2.progress(&[0.5, 0.0]) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_fs_for_weighted_indicators() {
        let (g, p) = fixture();
        for kind in [
            ProgressIndicator::TotalWorkWithQ,
            ProgressIndicator::TotalWork,
            ProgressIndicator::VertexFrac,
            ProgressIndicator::CriticalPath,
        ] {
            let ctx = IndicatorContext::new(kind, &g, &p, None);
            let mut prev = -1.0;
            for i in 0..=4 {
                let f = i as f64 / 4.0;
                let v = ctx.progress(&[f, f]);
                assert!(v >= prev - 1e-12, "{kind:?} not monotone");
                prev = v;
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ProgressIndicator::TotalWorkWithQ.name(), "totalworkWithQ");
        assert_eq!(ProgressIndicator::CriticalPath.name(), "CP");
        assert_eq!(ProgressIndicator::MinStageInf.name(), "minstage-inf");
    }
}
