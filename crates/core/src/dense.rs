//! The dense training kernel: shared-stream multi-allocation
//! simulation with per-allocation state forking.
//!
//! [`CpaModel::train`](crate::cpa::CpaModel::train) runs one full
//! discrete-event simulation per `(allocation, run)` grid point. But in
//! the offline training regime — a dedicated flat cluster, a fixed
//! allocation, no spare capacity, no background load — adjacent
//! allocation levels execute *the same job against the same random
//! draws*; they differ only in how many tasks run concurrently. This
//! module exploits that:
//!
//! - [`SharedVariates`] makes every task attempt's random triple
//!   `(queue_secs, run_secs, failed)` a pure function of `(task slot,
//!   attempt index)`, so all allocation levels of one run consume
//!   *common random numbers*: attempt `k` of a task behaves
//!   identically at every allocation.
//! - [`simulate_run`] simulates the whole ascending allocation grid as
//!   one **group** holding a single shared state. The group splits at
//!   *fill divergence points*: when the ready queue is non-empty and
//!   the running count has reached the smallest member's allocation,
//!   members with larger allocations fork the state and keep filling.
//!   Groups never re-merge — but the shared prefix (job start, the
//!   common early waves, the serial tail where fewer tasks are ready
//!   than any allocation admits) is simulated once instead of once per
//!   grid point.
//!
//! A group of one member *is* the naive single-allocation simulator —
//! the same code path with no possible split — which the equivalence
//! tests use as the reference oracle: forking over the full grid must
//! reproduce each member's independent run bit for bit.
//!
//! This kernel is intentionally *not* the [`ClusterSim`] event loop: it
//! has no observer, no scheduler/failure/placement seams, no machine
//! failures and no topology. It defines its own event stream (and its
//! own RNG schedule, keyed per task slot rather than per job), so
//! models trained through it are deterministic but not byte-identical
//! to [`CpaModel::train`]'s — which keeps its historical digest.
//!
//! [`ClusterSim`]: jockey_cluster::ClusterSim

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use jockey_cluster::JobSpec;
use jockey_jobgraph::graph::{EdgeKind, JobGraph};
use jockey_simrt::dist::bernoulli;
use jockey_simrt::rng::SeedDeriver;

use crate::cpa::RunHarvest;
use crate::progress::IndicatorContext;

/// Total-order wrapper for event times (sums of finite draws; ordered
/// via `total_cmp` so the heap never panics even on pathological
/// distributions).
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A pending completion: `(finish time, start sequence, slot, failed)`.
/// The failure draw rides along so completion needs no variate lookup;
/// it never influences ordering (sequences are unique).
type PendingDone = Reverse<(OrdF64, u64, u32, bool)>;

/// The job graph flattened for dense simulation: tasks are dense
/// *slots* (stage-major), and per-stage parent edges drive readiness.
pub(crate) struct DenseJob {
    /// Slot -> stage index.
    stage_of: Vec<u32>,
    /// Stage -> first slot.
    offsets: Vec<u32>,
    /// Stage -> task count.
    tasks_in: Vec<u32>,
    /// Stage -> `(parent stage, edge kind)` list.
    parents: Vec<Vec<(usize, EdgeKind)>>,
    /// Stage -> `(child stage, edge kind)` list.
    children: Vec<Vec<(usize, EdgeKind)>>,
    total: u64,
}

impl DenseJob {
    pub(crate) fn new(graph: &JobGraph) -> Self {
        let n = graph.num_stages();
        let mut stage_of = Vec::new();
        let mut offsets = Vec::with_capacity(n);
        let mut tasks_in = Vec::with_capacity(n);
        for s in graph.stage_ids() {
            offsets.push(stage_of.len() as u32);
            let count = graph.tasks_in(s);
            tasks_in.push(count);
            stage_of.extend(std::iter::repeat_n(s.index() as u32, count as usize));
        }
        let edge_list = |pairs: &[(jockey_jobgraph::StageId, EdgeKind)]| {
            pairs
                .iter()
                .map(|&(s, k)| (s.index(), k))
                .collect::<Vec<_>>()
        };
        DenseJob {
            total: stage_of.len() as u64,
            stage_of,
            offsets,
            tasks_in,
            parents: graph
                .stage_ids()
                .map(|s| edge_list(graph.parents(s)))
                .collect(),
            children: graph
                .stage_ids()
                .map(|s| edge_list(graph.children(s)))
                .collect(),
        }
    }

    fn slot(&self, stage: usize, index: u32) -> usize {
        (self.offsets[stage] + index) as usize
    }

    fn num_stages(&self) -> usize {
        self.tasks_in.len()
    }
}

/// One task attempt's shared random draws.
#[derive(Clone, Copy)]
struct AttemptDraws {
    queue_secs: f64,
    run_secs: f64,
    failed: bool,
}

/// Per-`(slot, attempt)` random triples from one independent RNG
/// stream per task slot. A triple is a *pure function* of `(slot,
/// attempt)` — that is exactly what makes the draws common random
/// numbers: every allocation branch that asks for `(slot, k)` sees the
/// same values, regardless of ask order.
///
/// Every slot's attempt 0 is needed by every branch (a run completes
/// all tasks), so those are generated eagerly into one flat array —
/// one tight pass, no per-slot allocations. Retry attempts exist only
/// for failed draws (rare by construction); they are recomputed on
/// demand by replaying the slot's stream from the start, keeping the
/// pure-function contract without a memo table.
pub(crate) struct SharedVariates<'a> {
    spec: &'a JobSpec,
    seeds: SeedDeriver,
    first: Vec<AttemptDraws>,
}

impl<'a> SharedVariates<'a> {
    /// `seeds` scopes one run: every slot stream forks from it.
    pub(crate) fn new(spec: &'a JobSpec, job: &DenseJob, seeds: SeedDeriver) -> Self {
        let first = (0..job.stage_of.len())
            .map(|slot| Self::draw(spec, job, &seeds, slot, 0))
            .collect();
        SharedVariates { spec, seeds, first }
    }

    /// Generates attempt `k` of `slot` by replaying the slot's stream
    /// from its start. Attempts must be drawn in order within one
    /// stream, so reaching attempt `k` regenerates `0..k` first —
    /// cheap, because retries beyond the first attempt only exist for
    /// the (rare) failed draws.
    fn draw(
        spec: &JobSpec,
        job: &DenseJob,
        seeds: &SeedDeriver,
        slot: usize,
        k: u32,
    ) -> AttemptDraws {
        let mut rng = seeds.rng_indexed("slot", slot as u64);
        let stage = job.stage_of[slot] as usize;
        let mut draws = AttemptDraws {
            queue_secs: 0.0,
            run_secs: 0.0,
            failed: false,
        };
        for _ in 0..=k {
            draws = AttemptDraws {
                queue_secs: spec.stage_queues[stage].sample_with(&mut rng),
                run_secs: spec.stage_runtimes[stage].sample_with(&mut rng),
                failed: bernoulli(&mut rng, spec.task_failure_prob),
            };
        }
        draws
    }

    fn attempt(&mut self, job: &DenseJob, slot: usize, k: u32) -> AttemptDraws {
        if k == 0 {
            return self.first[slot];
        }
        Self::draw(self.spec, job, &self.seeds, slot, k)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum SlotState {
    Pending,
    Ready,
    Running,
    Done,
}

/// One allocation group's complete simulation state; cloned at fill
/// divergence points.
#[derive(Clone)]
struct GroupState {
    clock: f64,
    /// Min-heap of in-flight attempts, at most the allocation deep.
    heap: BinaryHeap<PendingDone>,
    /// In-flight attempt count (the heap's length, tracked separately
    /// so the fill loop stays a plain integer compare).
    running: u32,
    seq: u64,
    state: Vec<SlotState>,
    /// Next attempt index per slot.
    attempts: Vec<u32>,
    ready: VecDeque<u32>,
    completed: Vec<u32>,
    done_total: u64,
    next_tick: f64,
    samples: Vec<(f64, f64)>,
    frac: Vec<f64>,
    finished_at: Option<f64>,
}

impl GroupState {
    fn fresh(job: &DenseJob) -> Self {
        let mut st = GroupState {
            clock: 0.0,
            heap: BinaryHeap::new(),
            running: 0,
            seq: 0,
            state: vec![SlotState::Pending; job.stage_of.len()],
            attempts: vec![0; job.stage_of.len()],
            ready: VecDeque::new(),
            completed: vec![0; job.num_stages()],
            done_total: 0,
            next_tick: 0.0,
            samples: Vec::new(),
            frac: vec![0.0; job.num_stages()],
            finished_at: None,
        };
        // Root-stage tasks are ready at job start, in slot order — the
        // same order the engine's `initial_tasks` enqueues them.
        for stage in 0..job.num_stages() {
            if job.parents[stage].is_empty() {
                for i in 0..job.tasks_in[stage] {
                    let slot = job.slot(stage, i);
                    st.state[slot] = SlotState::Ready;
                    st.ready.push_back(slot as u32);
                }
            }
        }
        st
    }

    fn start_task(&mut self, job: &DenseJob, vars: &mut SharedVariates<'_>, slot: u32) {
        let k = self.attempts[slot as usize];
        self.attempts[slot as usize] = k + 1;
        let draws = vars.attempt(job, slot as usize, k);
        self.seq += 1;
        self.heap.push(Reverse((
            OrdF64(self.clock + draws.queue_secs + draws.run_secs),
            self.seq,
            slot,
            draws.failed,
        )));
        self.state[slot as usize] = SlotState::Running;
        self.running += 1;
    }

    /// Evaluates the indicator at the current completion fractions.
    /// Progress only changes when a task completes, so tick batches
    /// call this once and reuse the value.
    fn progress_now(&mut self, job: &DenseJob, indicator: &IndicatorContext) -> f64 {
        for stage in 0..job.num_stages() {
            self.frac[stage] = f64::from(self.completed[stage]) / f64::from(job.tasks_in[stage]);
        }
        indicator.progress(&self.frac)
    }

    /// Task-completion bookkeeping: a failed attempt requeues, a
    /// successful one completes and promotes newly-ready dependents
    /// (children in graph order, task indices ascending — the
    /// deterministic order both the forked and the naive paths share).
    fn complete(&mut self, job: &DenseJob, slot: u32, failed: bool) {
        self.running -= 1;
        if failed {
            self.state[slot as usize] = SlotState::Ready;
            self.ready.push_back(slot);
            return;
        }
        self.state[slot as usize] = SlotState::Done;
        let stage = job.stage_of[slot as usize] as usize;
        self.completed[stage] += 1;
        self.done_total += 1;
        let stage_complete = self.completed[stage] == job.tasks_in[stage];
        let index = slot - job.offsets[stage];
        for &(child, kind) in &job.children[stage] {
            match kind {
                EdgeKind::OneToOne => self.promote_if_ready(job, job.slot(child, index)),
                EdgeKind::AllToAll => {
                    if stage_complete {
                        for i in 0..job.tasks_in[child] {
                            self.promote_if_ready(job, job.slot(child, i));
                        }
                    }
                }
            }
        }
    }

    fn promote_if_ready(&mut self, job: &DenseJob, slot: usize) {
        if self.state[slot] != SlotState::Pending {
            return;
        }
        let stage = job.stage_of[slot] as usize;
        let index = (slot as u32) - job.offsets[stage];
        let ready = job.parents[stage].iter().all(|&(p, kind)| match kind {
            EdgeKind::OneToOne => self.state[job.slot(p, index)] == SlotState::Done,
            EdgeKind::AllToAll => self.completed[p] == job.tasks_in[p],
        });
        if ready {
            self.state[slot] = SlotState::Ready;
            self.ready.push_back(slot as u32);
        }
    }
}

/// Simulates one shared-stream run of `job` at every allocation in
/// `allocs` (strictly ascending) and returns one harvest per
/// allocation, in order. Progress is sampled at `t = 0` and every
/// `sample_period_secs` until the job finishes; a run that reaches
/// `horizon_secs` is censored exactly as
/// [`train_one_allocation`](crate::cpa) censors it.
///
/// Passing a single-element `allocs` runs the naive independent
/// simulator — no split is possible — which is the reference oracle
/// the fork logic is tested against.
pub(crate) fn simulate_run(
    job: &DenseJob,
    indicator: &IndicatorContext,
    allocs: &[u32],
    sample_period_secs: f64,
    horizon_secs: f64,
    vars: &mut SharedVariates<'_>,
) -> Vec<RunHarvest> {
    debug_assert!(!allocs.is_empty() && allocs.windows(2).all(|w| w[0] < w[1]));
    let mut out: Vec<Option<RunHarvest>> = (0..allocs.len()).map(|_| None).collect();
    // LIFO worklist of (member range into `allocs`, state). Lower
    // members keep the original state at a split; upper members clone.
    let mut work: Vec<(std::ops::Range<usize>, GroupState)> =
        vec![(0..allocs.len(), GroupState::fresh(job))];
    while let Some((mut members, mut st)) = work.pop() {
        loop {
            // Fill up to the smallest member's allocation; if larger
            // members could admit more, fork them off to keep filling.
            while st.running < allocs[members.start] {
                let Some(slot) = st.ready.pop_front() else {
                    break;
                };
                st.start_task(job, vars, slot);
            }
            if members.len() > 1 && !st.ready.is_empty() && st.running >= allocs[members.start] {
                work.push((members.start + 1..members.end, st.clone()));
                members = members.start..members.start + 1;
            }

            if st.done_total == job.total {
                st.finished_at = Some(st.clock);
                break;
            }
            // Drain every control tick up to the next task completion
            // (ties to the tick — it was armed earlier). Progress can't
            // change between completions, so one indicator evaluation
            // covers the whole batch.
            let next_finish = st
                .heap
                .peek()
                .map_or(f64::INFINITY, |&Reverse((t, _, _, _))| t.0);
            if st.next_tick <= next_finish {
                let p = st.progress_now(job, indicator);
                let mut censored = false;
                while st.next_tick <= next_finish {
                    if st.next_tick > horizon_secs {
                        censored = true; // The run outlived the horizon.
                        break;
                    }
                    st.clock = st.next_tick;
                    st.samples.push((st.next_tick, p));
                    st.next_tick += sample_period_secs;
                }
                if censored || next_finish == f64::INFINITY {
                    break;
                }
            }
            let Reverse((OrdF64(at), _, slot, failed)) = st.heap.pop().expect("non-empty above");
            if at > horizon_secs {
                break; // Censored.
            }
            st.clock = at;
            st.complete(job, slot, failed);
        }
        let completed = st.finished_at.is_some();
        let total_secs = st.finished_at.unwrap_or(horizon_secs);
        // Split-free groups cover several members with one identical
        // harvest: the last member takes the samples, the rest clone.
        let last = members.end - 1;
        for m in members {
            let samples = if m == last {
                std::mem::take(&mut st.samples)
            } else {
                st.samples.clone()
            };
            out[m] = Some(RunHarvest {
                samples,
                total_secs,
                completed,
            });
        }
    }
    out.into_iter()
        .map(|h| h.expect("every allocation harvested"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressIndicator;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_jobgraph::profile::ProfileBuilder;
    use jockey_jobgraph::StageId;
    use jockey_simrt::dist::Uniform;
    use std::sync::Arc;

    fn diamond_graph() -> Arc<JobGraph> {
        let mut b = JobGraphBuilder::new("dense-job");
        let m = b.stage("map", 14);
        let l = b.stage("left", 14);
        let r = b.stage("right", 5);
        let j = b.stage("join", 5);
        b.edge(m, l, EdgeKind::OneToOne);
        b.edge(m, r, EdgeKind::AllToAll);
        b.edge(l, j, EdgeKind::AllToAll);
        b.edge(r, j, EdgeKind::OneToOne);
        Arc::new(b.build().unwrap())
    }

    fn fixture(failure_prob: f64) -> (Arc<JobGraph>, JobSpec, IndicatorContext) {
        let graph = diamond_graph();
        let mut pb = ProfileBuilder::new(&graph);
        for s in 0..4 {
            for i in 0..6 {
                pb.record_task(StageId(s), 0.3 * f64::from(i), 4.0 + f64::from(i), false);
            }
        }
        let mut profile = pb.finish(60.0, 10.0);
        profile.task_failure_prob = failure_prob;
        let spec = JobSpec::from_profile(graph.clone(), &profile);
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        (graph, spec, ind)
    }

    fn run_grid(
        spec: &JobSpec,
        ind: &IndicatorContext,
        allocs: &[u32],
        seed: u64,
    ) -> Vec<RunHarvest> {
        let job = DenseJob::new(&spec.graph);
        let seeds = SeedDeriver::new(seed).child("dense-test");
        let mut vars = SharedVariates::new(spec, &job, seeds);
        simulate_run(&job, ind, allocs, 5.0, 10_000.0, &mut vars)
    }

    /// The tentpole equivalence: forking the whole ascending grid off
    /// one shared stream must reproduce, bit for bit, what each
    /// allocation's *independent* simulation (a single-member group —
    /// the same code with no possible split) produces from the same
    /// variate table.
    #[test]
    fn forked_grid_matches_naive_single_allocation_runs() {
        for failure_prob in [0.0, 0.15] {
            let (_, spec, ind) = fixture(failure_prob);
            for seed in 0..20u64 {
                let allocs = [1, 2, 3, 5, 9, 40];
                let forked = run_grid(&spec, &ind, &allocs, seed);
                for (ai, &a) in allocs.iter().enumerate() {
                    let naive = run_grid(&spec, &ind, &[a], seed);
                    assert_eq!(
                        forked[ai].samples, naive[0].samples,
                        "seed {seed} fail {failure_prob} alloc {a}: samples diverged"
                    );
                    assert_eq!(
                        forked[ai].total_secs.to_bits(),
                        naive[0].total_secs.to_bits()
                    );
                    assert_eq!(forked[ai].completed, naive[0].completed);
                }
            }
        }
    }

    /// Common random numbers make completion time monotone in
    /// allocation within one run (more tokens never slow the same
    /// draws down).
    #[test]
    fn shared_stream_completion_is_monotone_in_allocation() {
        let (_, spec, ind) = fixture(0.1);
        for seed in 0..10u64 {
            let harvests = run_grid(&spec, &ind, &[1, 2, 4, 8, 16], seed);
            for w in harvests.windows(2) {
                assert!(
                    w[1].total_secs <= w[0].total_secs + 1e-9,
                    "seed {seed}: completion not monotone: {} then {}",
                    w[0].total_secs,
                    w[1].total_secs
                );
            }
        }
    }

    /// An allocation too small to finish by the horizon is censored —
    /// `completed: false` with the horizon as its total — while larger
    /// members of the same group finish normally.
    #[test]
    fn horizon_censors_starved_members_only() {
        let (_, spec, ind) = fixture(0.0);
        let job = DenseJob::new(&spec.graph);
        let seeds = SeedDeriver::new(3).child("dense-test");
        let mut vars = SharedVariates::new(&spec, &job, seeds);
        let harvests = simulate_run(&job, &ind, &[1, 30], 5.0, 60.0, &mut vars);
        assert!(!harvests[0].completed, "1 token cannot finish in 60s");
        assert_eq!(harvests[0].total_secs, 60.0);
        assert!(harvests[1].completed, "30 tokens finishes well inside");
        assert!(harvests[1].total_secs < 60.0);
    }

    /// Failed attempts consume exactly one variate triple and rerun
    /// with the next one: with a fixed failure sequence the job still
    /// finishes and every sample stream stays deterministic.
    #[test]
    fn failures_rerun_until_done_deterministically() {
        let (_, spec, ind) = fixture(0.3);
        let a = run_grid(&spec, &ind, &[2, 6], 7);
        let b = run_grid(&spec, &ind, &[2, 6], 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.samples, y.samples);
            assert_eq!(x.total_secs.to_bits(), y.total_secs.to_bits());
        }
        assert!(a.iter().all(|h| h.completed));
    }

    /// Wide-open allocations admit every ready task at once: the run
    /// completes in roughly the critical path of stage waves.
    #[test]
    fn unconstrained_allocation_tracks_the_critical_path() {
        let (_, spec, ind) = fixture(0.0);
        let h = run_grid(&spec, &ind, &[64], 11);
        // 4 stage waves, task times in [4.3, 9.0] with queue <= 1.5 each:
        // the end-to-end time must sit in the waves' feasible envelope.
        assert!(h[0].completed);
        assert!(
            h[0].total_secs > 4.0 * 4.0 && h[0].total_secs < 4.0 * 11.0,
            "total {}",
            h[0].total_secs
        );
    }

    #[test]
    fn uniform_distributions_share_variates_across_allocations() {
        // Uniform draws (not empirical resampling) through the same
        // kernel: slot streams must be identical whichever member
        // generates them first, so a reversed-order naive run matches.
        let graph = diamond_graph();
        let spec = JobSpec::uniform(
            graph.clone(),
            Uniform::new(2.0, 9.0),
            Uniform::new(0.0, 1.0),
            0.05,
        );
        let profile = ProfileBuilder::new(&graph).finish(1.0, 0.0);
        let ind = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
        for seed in [0u64, 1, 2] {
            let forked = run_grid(&spec, &ind, &[3, 7], seed);
            let naive_hi = run_grid(&spec, &ind, &[7], seed);
            let naive_lo = run_grid(&spec, &ind, &[3], seed);
            assert_eq!(forked[1].samples, naive_hi[0].samples, "seed {seed}");
            assert_eq!(forked[0].samples, naive_lo[0].samples, "seed {seed}");
        }
    }
}
