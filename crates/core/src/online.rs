//! The online model lifecycle: versioned `C(p, a)` models that keep
//! learning after deployment.
//!
//! Three pieces turn the frozen offline table into a living model:
//!
//! - [`ModelStore`] owns the evolving master model. Every completed
//!   run folds in through [`CpaModel::absorb_observations`] (`O(cells)`,
//!   no simulation) and publishes a fresh snapshot behind an atomic
//!   generation counter, so readers — the control plane's refresh, the
//!   admission ledger's sizing — swap tables between ticks without ever
//!   blocking on a learner. This reuses the control plane's
//!   snapshot-swap idiom: writers prepare a complete immutable value,
//!   then replace one pointer.
//! - [`DriftDetector`] watches completed runs. The master model
//!   predicts completions at a high percentile `P`, so under a
//!   stationary workload an observed completion should exceed its
//!   admission-time prediction with probability about `q = 1 − P/100`.
//!   The detector keeps the last `K` exceedance indicators and fires
//!   when their count leaves the one-sided binomial acceptance region
//!   `K·q + z·sqrt(K·q·(1−q))` — a windowed sign-test that needs no
//!   distributional assumptions about the latencies themselves. A fire
//!   rebuilds the master from the retained recent-run window (absorb is
//!   cheap, so "retraining" is re-absorbing), restoring a model that
//!   reflects current behaviour.
//! - [`PriorLibrary`] gives first-run jobs a borrowed model keyed by
//!   plan structure ([`structure_hash`]): stage count, DAG shape and
//!   barrier pattern — deliberately *not* task counts or names, so a
//!   structural sibling at a different scale still matches. When no
//!   neighbor exists the caller falls back to the floor model (e.g. the
//!   Amdahl estimate) demoted beneath any learned table via
//!   [`ModelHandle`].

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use jockey_jobgraph::graph::{EdgeKind, JobGraph};
use jockey_simrt::time::SimDuration;

use crate::cpa::{CpaModel, RunObservation};
use crate::predict::CompletionModel;

/// Shared lifecycle counters, updated atomically by stores and prior
/// libraries and summed into `PlaneStats` / service reports.
#[derive(Debug, Default)]
pub struct ModelLifecycleStats {
    /// Model snapshots published (generation bumps).
    pub generations_swapped: AtomicU64,
    /// Drift-detector fires (each triggers a window retrain).
    pub drift_detections: AtomicU64,
    /// Prior-library lookups that found a structural neighbor.
    pub prior_hits: AtomicU64,
    /// Prior-library lookups that found nothing.
    pub prior_misses: AtomicU64,
    /// Completed runs absorbed into a master model.
    pub absorbed_runs: AtomicU64,
    /// Samples those runs contributed.
    pub absorbed_samples: AtomicU64,
}

impl ModelLifecycleStats {
    /// A fresh zeroed counter block behind an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

/// Drift-detector configuration. `percentile` must match the model's
/// query percentile — it defines the null exceedance rate the sign-test
/// is calibrated against.
#[derive(Clone, Copy, Debug)]
pub struct DriftConfig {
    /// Completions in the sliding window (`K`).
    pub window: usize,
    /// Minimum completions before the test may fire.
    pub min_observations: usize,
    /// One-sided z-threshold on the exceedance count; ~4 keeps the
    /// stationary false-positive rate negligible.
    pub z_threshold: f64,
    /// The model's query percentile `P`; null exceedance rate is
    /// `1 − P/100`.
    pub percentile: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 32,
            min_observations: 16,
            z_threshold: 4.0,
            percentile: 95.0,
        }
    }
}

/// Windowed sign-test over observed vs. predicted completions (see the
/// module docs for the statistic).
#[derive(Clone, Debug)]
pub struct DriftDetector {
    cfg: DriftConfig,
    /// Exceedance indicators for the last `K` completions.
    window: VecDeque<bool>,
}

impl DriftDetector {
    /// A detector with the given configuration.
    pub fn new(cfg: DriftConfig) -> Self {
        DriftDetector {
            cfg,
            window: VecDeque::with_capacity(cfg.window.max(1)),
        }
    }

    /// Records one completed run and returns whether drift fired. The
    /// window is cleared on fire so one regime change is reported once,
    /// not on every subsequent completion.
    pub fn record(&mut self, observed_secs: f64, predicted_secs: f64) -> bool {
        self.window.push_back(observed_secs > predicted_secs);
        while self.window.len() > self.cfg.window.max(1) {
            self.window.pop_front();
        }
        if self.window.len() < self.cfg.min_observations {
            return false;
        }
        let k = self.window.len() as f64;
        let q = (1.0 - self.cfg.percentile / 100.0).clamp(0.0, 1.0);
        let exceeded = self.window.iter().filter(|&&e| e).count() as f64;
        let threshold = k * q + self.cfg.z_threshold * (k * q * (1.0 - q)).sqrt();
        if exceeded > threshold {
            self.window.clear();
            true
        } else {
            false
        }
    }

    /// Completions currently in the window.
    pub fn observation_count(&self) -> usize {
        self.window.len()
    }
}

/// One completed (or censored) run, as fed back into a [`ModelStore`].
#[derive(Clone, Debug)]
pub struct RecordedRun {
    /// Per-tick observations over the run's lifetime.
    pub observations: Vec<RunObservation>,
    /// Observed total latency (seconds).
    pub total_secs: f64,
    /// Whether the run completed (vs. was abandoned/censored).
    pub completed: bool,
    /// The model's admission-time latency prediction for this run, in
    /// seconds — the drift detector's reference point. `NAN` when no
    /// prediction was made (e.g. the job was admitted off a floor
    /// model); such runs still absorb but don't enter the drift window.
    pub predicted_secs: f64,
}

/// [`ModelStore`] configuration.
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Drift-detection parameters; set `drift.percentile` to the
    /// model's query percentile.
    pub drift: DriftConfig,
    /// Completed runs retained for drift-triggered window retrains.
    pub retain_runs: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            drift: DriftConfig::default(),
            retain_runs: 64,
        }
    }
}

/// What one [`ModelStore::record_completion`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbsorbOutcome {
    /// The generation of the snapshot published by this call.
    pub generation: u64,
    /// Samples folded into the master model.
    pub samples_added: usize,
    /// Whether drift fired and the master was rebuilt from the
    /// retained run window.
    pub drift_retrained: bool,
}

/// The mutable learner state, serialized behind one lock so absorbs
/// from concurrent workers interleave deterministically per-run.
struct StoreInner {
    master: CpaModel,
    detector: DriftDetector,
    recent: VecDeque<RecordedRun>,
    retain: usize,
}

/// Owns the evolving master model and publishes immutable snapshots.
///
/// Readers call [`ModelStore::current`] (a lock-held `Arc` clone, no
/// contention with learners beyond the pointer swap) and never observe
/// a half-updated table; each absorb bumps [`ModelStore::generation`]
/// so consumers can cheaply detect staleness.
pub struct ModelStore {
    current: RwLock<Arc<CpaModel>>,
    generation: AtomicU64,
    stats: Arc<ModelLifecycleStats>,
    inner: Mutex<StoreInner>,
}

impl ModelStore {
    /// A store seeded with `model` (generation 0) using fresh counters.
    pub fn new(model: CpaModel, cfg: OnlineConfig) -> Self {
        Self::with_stats(model, cfg, ModelLifecycleStats::shared())
    }

    /// A store publishing into shared lifecycle counters.
    pub fn with_stats(model: CpaModel, cfg: OnlineConfig, stats: Arc<ModelLifecycleStats>) -> Self {
        ModelStore {
            current: RwLock::new(Arc::new(model.clone())),
            generation: AtomicU64::new(0),
            stats,
            inner: Mutex::new(StoreInner {
                master: model,
                detector: DriftDetector::new(cfg.drift),
                recent: VecDeque::with_capacity(cfg.retain_runs.min(1024)),
                retain: cfg.retain_runs.max(1),
            }),
        }
    }

    /// The latest published snapshot.
    pub fn current(&self) -> Arc<CpaModel> {
        self.current.read().expect("model lock").clone()
    }

    /// The published model generation (0 = the seed model).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The lifecycle counters this store reports into.
    pub fn stats(&self) -> Arc<ModelLifecycleStats> {
        self.stats.clone()
    }

    /// Folds one completed run into the master model, runs the drift
    /// test, rebuilds from the retained window when it fires, and
    /// publishes the new snapshot. `O(cells)` on the quiet path.
    pub fn record_completion(&self, run: RecordedRun) -> AbsorbOutcome {
        let mut inner = self.inner.lock().expect("store lock");
        let samples_added =
            inner
                .master
                .absorb_observations(&run.observations, run.total_secs, run.completed);
        self.stats.absorbed_runs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .absorbed_samples
            .fetch_add(samples_added as u64, Ordering::Relaxed);

        let check_drift = run.completed && run.predicted_secs.is_finite();
        let (observed, predicted) = (run.total_secs, run.predicted_secs);
        inner.recent.push_back(run);
        while inner.recent.len() > inner.retain {
            inner.recent.pop_front();
        }

        let drift_retrained = check_drift && inner.detector.record(observed, predicted);
        if drift_retrained {
            self.stats.drift_detections.fetch_add(1, Ordering::Relaxed);
            // "Retrain" = re-absorb the retained window into a vacant
            // copy: the stale history beyond the window is dropped and
            // the model snaps to current behaviour, without a single
            // simulation run.
            let mut fresh = inner.master.vacant_copy();
            for r in &inner.recent {
                fresh.absorb_observations(&r.observations, r.total_secs, r.completed);
            }
            inner.master = fresh;
        }

        let snapshot = Arc::new(inner.master.clone());
        let generation = self.publish(snapshot);
        AbsorbOutcome {
            generation,
            samples_added,
            drift_retrained,
        }
    }

    /// Replaces the published snapshot and bumps the generation.
    fn publish(&self, snapshot: Arc<CpaModel>) -> u64 {
        *self.current.write().expect("model lock") = snapshot;
        self.stats
            .generations_swapped
            .fetch_add(1, Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// A [`CompletionModel`] view over a [`ModelStore`], resolving the
/// current snapshot per call so every consumer — sizing, refresh,
/// per-tick control — always reads the latest generation without
/// holding any reference across ticks.
///
/// An optional *floor* model answers wherever the learned table cannot
/// (infinite predictions from vacant cells, infeasible sizing): the
/// cold-start posture is "borrowed or floor first, learned as soon as
/// samples exist", with the floor demoted automatically because a
/// finite learned answer always wins.
#[derive(Clone)]
pub struct ModelHandle {
    store: Arc<ModelStore>,
    floor: Option<Arc<dyn CompletionModel>>,
}

impl ModelHandle {
    /// A handle with no floor: unanswerable queries stay infinite.
    pub fn new(store: Arc<ModelStore>) -> Self {
        ModelHandle { store, floor: None }
    }

    /// A handle that falls back to `floor` where the learned model has
    /// no answer.
    pub fn with_floor(store: Arc<ModelStore>, floor: Arc<dyn CompletionModel>) -> Self {
        ModelHandle {
            store,
            floor: Some(floor),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<ModelStore> {
        &self.store
    }
}

impl CompletionModel for ModelHandle {
    fn remaining_secs(&self, fs: &[f64], progress: f64, allocation: u32) -> f64 {
        let v = self.store.current().remaining(progress, allocation);
        if v.is_finite() {
            return v;
        }
        match &self.floor {
            Some(floor) => floor.remaining_secs(fs, progress, allocation),
            None => v,
        }
    }

    fn max_allocation(&self) -> u32 {
        let learned = self.store.current().max_allocation();
        match &self.floor {
            Some(floor) => learned.max(floor.max_allocation()),
            None => learned,
        }
    }

    fn size_for_deadline(&self, fs: &[f64], deadline: SimDuration, slack: f64) -> Option<u32> {
        // Size over the *blended* per-allocation curve: the learned
        // model vetoes allocations it has evidence against, and the
        // floor answers only where the learned model is silent. Asking
        // the learned model for a complete sizing first would collapse
        // to the floor's (typically optimistic) answer the moment any
        // learned row pushes past the deadline — discarding exactly the
        // evidence an adapting model has gathered.
        let d = deadline.as_secs_f64();
        crate::predict::min_feasible_allocation(self.max_allocation(), false, |a| {
            self.remaining_secs(fs, 0.0, a) * slack <= d
        })
    }
}

/// FNV-1a over a canonical description of the plan structure.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hashes the *structure* of a plan graph: stage count, edge shape
/// (producer, consumer, data-flow kind) and the barrier pattern.
/// Task counts and names are deliberately excluded so jobs that share
/// a template at different scales key to the same prior.
pub fn structure_hash(graph: &JobGraph) -> u64 {
    let mut canon = format!("stages={};", graph.num_stages());
    for e in graph.edges() {
        let kind = match e.kind {
            EdgeKind::OneToOne => "1:1",
            EdgeKind::AllToAll => "all",
        };
        canon.push_str(&format!("e={}>{}:{kind};", e.from.0, e.to.0));
    }
    canon.push_str("barriers=");
    for s in graph.stage_ids() {
        canon.push(if graph.is_barrier_stage(s) { '1' } else { '0' });
    }
    fnv1a(canon.as_bytes())
}

/// Cold-start priors: learned models indexed by [`structure_hash`],
/// borrowed by first-run jobs until they earn their own samples.
pub struct PriorLibrary {
    priors: Mutex<HashMap<u64, Arc<CpaModel>>>,
    stats: Arc<ModelLifecycleStats>,
}

impl PriorLibrary {
    /// An empty library with fresh counters.
    pub fn new() -> Self {
        Self::with_stats(ModelLifecycleStats::shared())
    }

    /// An empty library reporting into shared lifecycle counters.
    pub fn with_stats(stats: Arc<ModelLifecycleStats>) -> Self {
        PriorLibrary {
            priors: Mutex::new(HashMap::new()),
            stats,
        }
    }

    /// Looks up a structural neighbor for `graph`, counting the hit or
    /// miss.
    pub fn lookup(&self, graph: &JobGraph) -> Option<Arc<CpaModel>> {
        let found = self
            .priors
            .lock()
            .expect("prior lock")
            .get(&structure_hash(graph))
            .cloned();
        let counter = if found.is_some() {
            &self.stats.prior_hits
        } else {
            &self.stats.prior_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Registers (or replaces) the prior for `graph`'s structure.
    pub fn insert(&self, graph: &JobGraph, model: Arc<CpaModel>) {
        self.priors
            .lock()
            .expect("prior lock")
            .insert(structure_hash(graph), model);
    }

    /// Number of distinct structures with a prior.
    pub fn len(&self) -> usize {
        self.priors.lock().expect("prior lock").len()
    }

    /// Whether the library holds no priors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The lifecycle counters this library reports into.
    pub fn stats(&self) -> Arc<ModelLifecycleStats> {
        self.stats.clone()
    }
}

impl Default for PriorLibrary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpa::TrainConfig;
    use jockey_jobgraph::graph::JobGraphBuilder;

    fn cfg() -> TrainConfig {
        TrainConfig {
            progress_bins: 20,
            ..TrainConfig::fast(vec![2, 4, 8])
        }
    }

    /// A run at `allocation` completing in `total` seconds with evenly
    /// spaced observations.
    fn run(allocation: u32, total: f64, predicted: f64) -> RecordedRun {
        let observations = (0..10)
            .map(|i| RunObservation {
                elapsed_secs: f64::from(i) / 10.0 * total,
                progress: f64::from(i) / 10.0,
                allocation,
            })
            .collect();
        RecordedRun {
            observations,
            total_secs: total,
            completed: true,
            predicted_secs: predicted,
        }
    }

    fn seeded_store(nominal: f64) -> ModelStore {
        let mut model = CpaModel::empty(&cfg());
        for a in [2_u32, 4, 8] {
            for _ in 0..4 {
                let r = run(a, nominal, f64::NAN);
                model.absorb_observations(&r.observations, r.total_secs, r.completed);
            }
        }
        let online = OnlineConfig {
            drift: DriftConfig {
                window: 16,
                min_observations: 8,
                z_threshold: 3.0,
                percentile: 90.0,
            },
            retain_runs: 32,
        };
        ModelStore::new(model, online)
    }

    #[test]
    fn absorb_bumps_generation_and_updates_snapshot() {
        let store = seeded_store(100.0);
        assert_eq!(store.generation(), 0);
        let before = store.current();

        let outcome = store.record_completion(run(4, 100.0, 120.0));
        assert_eq!(outcome.generation, 1);
        assert!(!outcome.drift_retrained);
        assert_eq!(outcome.samples_added, 11);
        assert_eq!(store.generation(), 1);

        let after = store.current();
        assert!(!Arc::ptr_eq(&before, &after), "snapshot was republished");
        assert_eq!(
            after.sample_count(),
            before.sample_count() + outcome.samples_added
        );
        let stats = store.stats();
        assert_eq!(stats.generations_swapped.load(Ordering::Relaxed), 1);
        assert_eq!(stats.absorbed_runs.load(Ordering::Relaxed), 1);
        assert_eq!(stats.absorbed_samples.load(Ordering::Relaxed), 11);
        assert_eq!(stats.drift_detections.load(Ordering::Relaxed), 0);
    }

    /// Satellite: a seeded drift scenario where the detector fires —
    /// the workload slows 3x against its admission predictions, and the
    /// window retrain snaps the published model to the new regime.
    #[test]
    fn drift_fires_and_window_retrain_tracks_new_regime() {
        let store = seeded_store(100.0);
        let stale_estimate = store.current().fresh_latency(4);
        assert!(stale_estimate <= 110.0, "seed model predicts ~100s");

        let mut fired_at = None;
        for i in 0..16 {
            // Observed 300s vs the stale model's ~100s prediction.
            let outcome = store.record_completion(run(4, 300.0, stale_estimate));
            if outcome.drift_retrained {
                fired_at = Some(i);
                break;
            }
        }
        let fired_at = fired_at.expect("drift should fire within the window");
        assert!(fired_at >= 7, "min_observations gates early fires");
        assert_eq!(store.stats().drift_detections.load(Ordering::Relaxed), 1);

        // The retrained model reflects the 300s regime: the retained
        // window holds only slow runs, so the stale 100s samples are
        // gone from the published table.
        let retrained = store.current().fresh_latency(4);
        assert!(
            (250.0..=320.0).contains(&retrained),
            "retrained fresh latency {retrained} should track 300s"
        );
    }

    /// Satellite: a stationary soak where the detector provably stays
    /// quiet. Exceedances arrive at *exactly* the null rate for a p90
    /// predictor (every 10th completion), so every 32-completion window
    /// holds at most 4 exceedances — far below the z=4 threshold of
    /// ~10 — and no window can ever fire: no retrain storms under
    /// stationarity, deterministically.
    #[test]
    fn stationary_soak_never_fires() {
        let drift_cfg = DriftConfig {
            window: 32,
            min_observations: 16,
            z_threshold: 4.0,
            percentile: 90.0,
        };
        let mut det = DriftDetector::new(drift_cfg);
        for i in 0..2000_u32 {
            let exceeded = i % 10 == 9;
            let (observed, predicted) = if exceeded {
                (120.0, 100.0)
            } else {
                (80.0, 100.0)
            };
            assert!(!det.record(observed, predicted), "false positive at {i}");
        }
        assert_eq!(det.observation_count(), 32);

        // The same detector has teeth: exceedances at 3x the null rate
        // cross the threshold within one window.
        let mut fired = false;
        for i in 0..64_u32 {
            let exceeded = i % 3 != 0; // ~2/3 exceedance rate
            let (observed, predicted) = if exceeded {
                (120.0, 100.0)
            } else {
                (80.0, 100.0)
            };
            fired |= det.record(observed, predicted);
        }
        assert!(fired, "sustained drift must fire");
    }

    #[test]
    fn detector_clears_window_after_fire() {
        let drift_cfg = DriftConfig {
            window: 8,
            min_observations: 4,
            z_threshold: 1.0,
            percentile: 90.0,
        };
        let mut det = DriftDetector::new(drift_cfg);
        let mut fires = 0;
        for _ in 0..4 {
            if det.record(200.0, 100.0) {
                fires += 1;
            }
        }
        assert_eq!(fires, 1, "one fire for one regime change");
        assert_eq!(det.observation_count(), 0, "window cleared on fire");
    }

    #[test]
    fn censored_and_unpredicted_runs_absorb_without_drift_checks() {
        let store = seeded_store(100.0);
        for _ in 0..20 {
            let mut r = run(4, 500.0, f64::NAN); // no admission prediction
            r.completed = false; // censored
            store.record_completion(r);
        }
        assert_eq!(store.stats().drift_detections.load(Ordering::Relaxed), 0);
        assert_eq!(store.stats().absorbed_runs.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn model_handle_floors_vacant_answers() {
        struct Flat;
        impl CompletionModel for Flat {
            fn remaining_secs(&self, _fs: &[f64], _p: f64, a: u32) -> f64 {
                1000.0 / f64::from(a.max(1))
            }
            fn max_allocation(&self) -> u32 {
                8
            }
        }

        let store = Arc::new(ModelStore::new(
            CpaModel::empty(&cfg()),
            OnlineConfig::default(),
        ));
        let bare = ModelHandle::new(store.clone());
        assert_eq!(bare.remaining_secs(&[], 0.0, 4), f64::INFINITY);
        assert_eq!(
            bare.size_for_deadline(&[], SimDuration::from_secs(600), 1.0),
            None
        );

        let floored = ModelHandle::with_floor(store.clone(), Arc::new(Flat));
        assert_eq!(floored.remaining_secs(&[], 0.0, 4), 250.0);
        assert_eq!(
            floored.size_for_deadline(&[], SimDuration::from_secs(600), 1.0),
            Some(2)
        );

        // Once the learned model has samples, it wins over the floor.
        store.record_completion(run(4, 80.0, f64::NAN));
        let learned = floored.remaining_secs(&[], 0.0, 4);
        assert!(learned <= 80.0 + 1e-9, "learned answer {learned}");
    }

    #[test]
    fn prior_library_keys_on_structure_not_scale() {
        let build = |tasks: u32, kind: EdgeKind| {
            let mut b = JobGraphBuilder::new("prior");
            let m = b.stage("map", tasks);
            let r = b.stage("reduce", if kind == EdgeKind::OneToOne { tasks } else { 2 });
            b.edge(m, r, kind);
            Arc::new(b.build().unwrap())
        };
        let small = build(8, EdgeKind::AllToAll);
        let large = build(800, EdgeKind::AllToAll);
        let pipeline = build(8, EdgeKind::OneToOne);
        assert_eq!(structure_hash(&small), structure_hash(&large));
        assert_ne!(structure_hash(&small), structure_hash(&pipeline));

        let lib = PriorLibrary::new();
        assert!(lib.lookup(&small).is_none());
        lib.insert(&small, Arc::new(CpaModel::empty(&cfg())));
        assert!(lib.lookup(&large).is_some(), "different scale still hits");
        assert!(lib.lookup(&pipeline).is_none(), "different shape misses");
        assert_eq!(lib.len(), 1);

        let stats = lib.stats();
        assert_eq!(stats.prior_hits.load(Ordering::Relaxed), 1);
        assert_eq!(stats.prior_misses.load(Ordering::Relaxed), 2);
    }
}
