//! Layer-composition integration tests.
//!
//! The control-layer refactor replaced the bespoke `FallbackGuard<C>`
//! and `RecalibratingController` wrapper structs with stackable
//! [`ControlLayer`] decorators over a plain [`JockeyController`]. These
//! tests pin down the two properties that refactor promised:
//!
//! 1. **Behavioral equivalence.** The layered stacks are tick-for-tick
//!    identical to the pre-refactor wrappers on a seeded closed-loop
//!    run. The old wrappers are embedded here verbatim as reference
//!    implementations, so any future drift in the layers shows up as a
//!    decision-by-decision diff.
//! 2. **Documented stacking precedence.** Hooks run outside-in before
//!    the inner tick and inside-out after it, so the *outermost* layer
//!    has the final say on the decision. Layers that act in disjoint
//!    phases (recalibration = `before_tick`, fallback = `after_tick`)
//!    commute; layers that rewrite the same decision do not, and the
//!    outermost wins.

use std::sync::Arc;

use jockey_cluster::{
    ClusterConfig, ClusterSim, ControlDecision, FixedAllocation, JobController, JobSpec, JobStatus,
};
use jockey_core::control::{ControlParams, JockeyController};
use jockey_core::cpa::{CpaModel, TrainConfig};
use jockey_core::fallback::{with_fallback, FallbackLayer};
use jockey_core::layer::Layered;
use jockey_core::predict::CompletionModel;
use jockey_core::progress::{IndicatorContext, ProgressIndicator};
use jockey_core::recal::{recalibrated, RecalibrationLayer, ScaledModel};
use jockey_core::utility::UtilityFunction;
use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
use jockey_simrt::dist::Constant;
use jockey_simrt::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------
// Reference implementations: the pre-refactor wrapper structs, kept
// verbatim (minus doc prose) as executable specifications.
// ---------------------------------------------------------------------

/// The pre-refactor §5.6 `FallbackGuard<C>` wrapper.
struct ReferenceFallbackGuard<C> {
    inner: C,
    fair_share: u32,
    slip_tolerance: f64,
    trigger_ticks: u32,
    last: Option<(f64, f64, u32)>,
    consecutive: u32,
    fallen_back: bool,
}

impl<C: JobController> ReferenceFallbackGuard<C> {
    fn new(inner: C, fair_share: u32, slip_tolerance: f64, trigger_ticks: u32) -> Self {
        assert!(trigger_ticks > 0);
        assert!(slip_tolerance > 0.0);
        ReferenceFallbackGuard {
            inner,
            fair_share,
            slip_tolerance,
            trigger_ticks,
            last: None,
            consecutive: 0,
            fallen_back: false,
        }
    }
}

impl<C: JobController> JobController for ReferenceFallbackGuard<C> {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        if self.fallen_back {
            let mut d = self.inner.tick(status);
            d.guarantee = self.fair_share;
            return d;
        }
        let d = self.inner.tick(status);
        let elapsed = status.elapsed.as_secs_f64();
        if let (Some((prev_elapsed, prev_pred, prev_guarantee)), Some(pred)) =
            (self.last, d.predicted_completion)
        {
            let dt = elapsed - prev_elapsed;
            if dt > 0.0 && d.guarantee >= prev_guarantee {
                let slip = (pred - prev_pred) / dt;
                if slip > self.slip_tolerance {
                    self.consecutive += 1;
                    if self.consecutive >= self.trigger_ticks {
                        self.fallen_back = true;
                        let mut d = d;
                        d.guarantee = self.fair_share;
                        return d;
                    }
                } else {
                    self.consecutive = 0;
                }
            }
        }
        if let Some(pred) = d.predicted_completion {
            self.last = Some((elapsed, pred, d.guarantee));
        }
        d
    }

    fn initial(&mut self, status: &JobStatus) -> ControlDecision {
        self.inner.initial(status)
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        self.inner.deadline_changed(new_deadline);
    }
}

/// The pre-refactor `RecalibratingController` (λ inflation tracking
/// fused into the controller struct).
struct ReferenceRecalibratingController {
    jockey: JockeyController,
    scaled: Arc<ScaledModel>,
    indicator: IndicatorContext,
    ema: f64,
    last: Option<(f64, f64)>,
    pending_dt: f64,
    pending_advance: f64,
}

impl ReferenceRecalibratingController {
    fn new(
        model: Arc<CpaModel>,
        indicator: IndicatorContext,
        utility: UtilityFunction,
        params: ControlParams,
    ) -> Self {
        let scaled = ScaledModel::new(model);
        let jockey = JockeyController::new(
            scaled.clone() as Arc<dyn CompletionModel>,
            indicator.clone(),
            utility,
            params,
        );
        ReferenceRecalibratingController {
            jockey,
            scaled,
            indicator,
            ema: 0.2,
            last: None,
            pending_dt: 0.0,
            pending_advance: 0.0,
        }
    }

    fn update_lambda(&mut self, status: &JobStatus) {
        let elapsed = status.elapsed.as_secs_f64();
        let p = self.indicator.progress(&status.stage_fraction);
        let Some((p_prev, elapsed_prev)) = self.last.replace((p, elapsed)) else {
            return;
        };
        let dt = elapsed - elapsed_prev;
        if dt <= 0.0 {
            return;
        }
        let a = status.guarantee.max(1);
        let base = self.scaled.base();
        let modelled_advance = (base.remaining_percentile(p_prev, a, 50.0)
            - base.remaining_percentile(p, a, 50.0))
        .max(0.0);
        self.pending_dt += dt;
        self.pending_advance += modelled_advance;

        let enough_signal = self.pending_advance >= 45.0;
        let long_silence = self.pending_dt >= 600.0;
        if !enough_signal && !long_silence {
            return;
        }
        let denom = self.pending_advance.max(self.pending_dt / 3.0);
        let observed = (self.pending_dt / denom).clamp(1.0 / 3.0, 3.0);
        self.pending_dt = 0.0;
        self.pending_advance = 0.0;
        let current = self.scaled.scale();
        self.scaled
            .set_scale(current + self.ema * (observed - current));
    }
}

impl JobController for ReferenceRecalibratingController {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        self.update_lambda(status);
        self.jockey.tick(status)
    }

    fn initial(&mut self, status: &JobStatus) -> ControlDecision {
        self.jockey.initial(status)
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        self.jockey.deadline_changed(new_deadline);
    }
}

// ---------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------

/// Trains a small two-stage C(p, a) model (same fixture as the recal
/// unit tests, fixed seeds throughout).
fn trained() -> (Arc<CpaModel>, IndicatorContext) {
    let mut b = JobGraphBuilder::new("layering");
    let m = b.stage("map", 24);
    let r = b.stage("reduce", 2);
    b.edge(m, r, EdgeKind::AllToAll);
    let graph = Arc::new(b.build().unwrap());
    let spec = JobSpec::uniform(graph.clone(), Constant(30.0), Constant(0.5), 0.0);
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), 3);
    sim.add_job(spec, Box::new(FixedAllocation(6)));
    let profile = sim.run_single().profile;
    let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
    let model = Arc::new(CpaModel::train(
        &graph,
        &profile,
        &ctx,
        &TrainConfig::fast(vec![1, 2, 4, 8]),
        7,
    ));
    (model, ctx)
}

fn status(minute: u64, map_frac: f64, guarantee: u32) -> JobStatus {
    JobStatus {
        now: SimTime::from_mins(minute),
        elapsed: SimDuration::from_mins(minute),
        stage_fraction: vec![map_frac, 0.0],
        stage_completed: vec![(map_frac * 24.0) as u32, 0],
        running: guarantee,
        running_guaranteed: guarantee,
        guarantee,
        work_done: map_frac * 24.0 * 30.0,
        finished: false,
    }
}

/// A seeded 40-minute progress script: jittered climb (LCG-driven, no
/// external RNG) with a 13-minute stall in the middle — long enough for
/// the controller to saturate its allocation, after which frozen
/// progress makes the completion estimate slip tick for tick.
fn script() -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    let mut frac: f64 = 0.0;
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    for minute in 1..=40 {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let jitter = (x >> 40) as f64 / (1_u64 << 24) as f64;
        if !(12..=24).contains(&minute) {
            frac = (frac + 0.01 + 0.02 * jitter).min(1.0);
        }
        out.push((minute, frac));
    }
    out
}

/// Drives a controller closed-loop over the script (each tick sees the
/// guarantee the previous decision granted), returning every decision.
fn drive<C: JobController>(c: &mut C) -> Vec<ControlDecision> {
    let mut out = Vec::new();
    let d0 = c.initial(&status(0, 0.0, 0));
    let mut guarantee = d0.guarantee;
    out.push(d0);
    for (minute, frac) in script() {
        let d = c.tick(&status(minute, frac, guarantee));
        guarantee = d.guarantee;
        out.push(d);
    }
    out
}

fn jockey(model: Arc<dyn CompletionModel>, ctx: &IndicatorContext) -> JockeyController {
    JockeyController::new(
        model,
        ctx.clone(),
        UtilityFunction::deadline(SimDuration::from_mins(45)),
        ControlParams::default(),
    )
}

// ---------------------------------------------------------------------
// Equivalence: layered stacks vs. the pre-refactor wrappers.
// ---------------------------------------------------------------------

#[test]
fn fallback_layer_matches_pre_refactor_wrapper_tick_for_tick() {
    let (model, ctx) = trained();
    // Tolerance 0.5 < the slip≈1.0 a stalled job produces once its
    // allocation saturates, so the mid-script stall trips both guards.
    let mut reference = ReferenceFallbackGuard::new(
        jockey(model.clone() as Arc<dyn CompletionModel>, &ctx),
        11,
        0.5,
        3,
    );
    let mut layered = with_fallback(jockey(model as Arc<dyn CompletionModel>, &ctx), 11, 0.5, 3);

    let expect = drive(&mut reference);
    let got = drive(&mut layered);
    assert_eq!(got.len(), expect.len());
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert_eq!(g, e, "decision diverged at tick {i}");
    }
    // The run exercised the interesting path: both guards tripped.
    assert!(reference.fallen_back, "reference guard never tripped");
    assert!(
        layered.layer::<FallbackLayer>().unwrap().fallen_back(),
        "layered guard never tripped"
    );
}

#[test]
fn recalibration_layer_matches_pre_refactor_controller_tick_for_tick() {
    let (model, ctx) = trained();
    let mut reference = ReferenceRecalibratingController::new(
        model.clone(),
        ctx.clone(),
        UtilityFunction::deadline(SimDuration::from_mins(45)),
        ControlParams::default(),
    );
    let mut layered = recalibrated(
        model,
        ctx,
        UtilityFunction::deadline(SimDuration::from_mins(45)),
        ControlParams::default(),
    );

    let expect = drive(&mut reference);
    let got = drive(&mut layered);
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert_eq!(g, e, "decision diverged at tick {i}");
    }
    // λ followed the same trajectory, bit for bit, and actually moved
    // (the stall registers as inflation).
    let ref_lambda = reference.scaled.scale();
    let new_lambda = layered.layer::<RecalibrationLayer>().unwrap().inflation();
    assert_eq!(ref_lambda.to_bits(), new_lambda.to_bits());
    assert!(ref_lambda > 1.0, "stall did not register as inflation");
}

// ---------------------------------------------------------------------
// Stacking order.
// ---------------------------------------------------------------------

/// Recalibration acts in `before_tick` (feeding λ into the model the
/// inner controller consults) and fallback acts in `after_tick`
/// (rewriting the decision); the phases are disjoint, so the two
/// stacking orders produce identical runs.
#[test]
fn disjoint_phase_layers_commute() {
    let (model, ctx) = trained();
    let build = |recal_inner: bool| {
        let scaled = ScaledModel::new(model.clone());
        let inner = jockey(scaled.clone() as Arc<dyn CompletionModel>, &ctx);
        let recal = Box::new(RecalibrationLayer::new(scaled, ctx.clone()));
        let guard = Box::new(FallbackLayer::new(11, 0.5, 3));
        let stack = Layered::new(inner);
        if recal_inner {
            stack.with(recal).with(guard)
        } else {
            stack.with(guard).with(recal)
        }
    };
    let a = drive(&mut build(true));
    let b = drive(&mut build(false));
    assert_eq!(a, b, "disjoint-phase layers did not commute");
}

/// Two layers rewriting the same decision do not commute: after hooks
/// run inside-out, so the outermost layer has the final say.
#[test]
fn outermost_layer_wins_on_the_same_phase() {
    let (model, ctx) = trained();
    let build = |outer_fair: u32, inner_fair: u32| {
        // Tolerance low enough that both guards see the stall slip.
        Layered::new(jockey(model.clone() as Arc<dyn CompletionModel>, &ctx))
            .with(Box::new(FallbackLayer::new(inner_fair, 0.5, 3)))
            .with(Box::new(FallbackLayer::new(outer_fair, 0.5, 3)))
    };
    let mut seven_outside = build(7, 13);
    let last = drive(&mut seven_outside).last().unwrap().guarantee;
    assert_eq!(last, 7, "outermost fair share should win");

    let mut thirteen_outside = build(13, 7);
    let last = drive(&mut thirteen_outside).last().unwrap().guarantee;
    assert_eq!(last, 13, "outermost fair share should win after swap");
}
