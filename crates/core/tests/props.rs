//! Property-based tests of Jockey's models, indicators, utilities and
//! control loop.

use std::sync::Arc;

use jockey_cluster::{ControlDecision, JobController, JobStatus};
use jockey_core::control::{ControlParams, JockeyController};
use jockey_core::predict::CompletionModel;
use jockey_core::progress::{IndicatorContext, ProgressIndicator};
use jockey_core::utility::UtilityFunction;
use jockey_jobgraph::graph::{EdgeKind, JobGraph, JobGraphBuilder, StageId};
use jockey_jobgraph::profile::ProfileBuilder;
use jockey_simrt::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// A simple two-stage fixture with parameterized weights.
fn fixture(
    map_tasks: u32,
    reduce_tasks: u32,
    map_secs: f64,
    reduce_secs: f64,
) -> (JobGraph, jockey_jobgraph::profile::JobProfile) {
    let mut b = JobGraphBuilder::new("prop");
    let m = b.stage("map", map_tasks);
    let r = b.stage("reduce", reduce_tasks);
    b.edge(m, r, EdgeKind::AllToAll);
    let g = b.build().unwrap();
    let mut pb = ProfileBuilder::new(&g);
    for _ in 0..map_tasks {
        pb.record_task(StageId(0), 0.5, map_secs, false);
    }
    for _ in 0..reduce_tasks {
        pb.record_task(StageId(1), 0.5, reduce_secs, false);
    }
    pb.record_stage_window(StageId(0), 0.0, map_secs);
    pb.record_stage_window(StageId(1), map_secs, map_secs + reduce_secs);
    let p = pb.finish(map_secs + reduce_secs, 1.0);
    (g, p)
}

/// An analytic model: remaining = (1 − p)·W/a, used to probe the
/// control loop in isolation.
struct Toy {
    work: f64,
}

impl CompletionModel for Toy {
    fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
        (1.0 - progress) * self.work / f64::from(allocation.max(1))
    }
    fn max_allocation(&self) -> u32 {
        100
    }
}

fn status(frac: f64, elapsed_secs: f64) -> JobStatus {
    JobStatus {
        now: SimTime::from_secs_f64(elapsed_secs),
        elapsed: SimDuration::from_secs_f64(elapsed_secs),
        stage_fraction: vec![frac],
        stage_completed: vec![(frac * 10.0) as u32],
        running: 1,
        running_guaranteed: 1,
        guarantee: 1,
        work_done: 0.0,
        finished: frac >= 1.0,
    }
}

fn one_stage_indicator() -> IndicatorContext {
    let mut b = JobGraphBuilder::new("one");
    b.stage("only", 10);
    let g = b.build().unwrap();
    let mut pb = ProfileBuilder::new(&g);
    for _ in 0..10 {
        pb.record_task(StageId(0), 0.5, 5.0, false);
    }
    let p = pb.finish(50.0, 1.0);
    IndicatorContext::new(ProgressIndicator::VertexFrac, &g, &p, None)
}

proptest! {
    /// Deadline utilities are non-increasing and flat-at-1 before the
    /// deadline.
    #[test]
    fn utility_monotone_nonincreasing(
        deadline_mins in 1_u64..1000,
        t1 in 0.0_f64..1e6,
        t2 in 0.0_f64..1e6,
    ) {
        let u = UtilityFunction::deadline(SimDuration::from_mins(deadline_mins));
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        prop_assert!(u.eval(lo) >= u.eval(hi) - 1e-9);
        prop_assert_eq!(u.eval(0.0), 1.0);
        prop_assert_eq!(u.eval(deadline_mins as f64 * 60.0), 1.0);
    }

    /// Shifting left by D makes the utility everywhere ≤ the original
    /// at the same time (deadlines only tighten).
    #[test]
    fn shifted_utility_dominated(
        deadline_mins in 2_u64..500,
        shift_mins in 0_u64..100,
        t in 0.0_f64..1e5,
    ) {
        let u = UtilityFunction::deadline(SimDuration::from_mins(deadline_mins));
        let s = u.shifted_left(SimDuration::from_mins(shift_mins));
        prop_assert!(s.eval(t) <= u.eval(t) + 1e-9);
    }

    /// Every indicator is bounded in [0, 1] for arbitrary fractions,
    /// and weighted indicators are monotone when all stages advance.
    #[test]
    fn indicators_bounded_and_monotone(
        map_tasks in 1_u32..50,
        reduce_tasks in 1_u32..50,
        map_secs in 0.1_f64..60.0,
        reduce_secs in 0.1_f64..60.0,
        f1 in 0.0_f64..1.0,
        f2 in 0.0_f64..1.0,
    ) {
        let (g, p) = fixture(map_tasks, reduce_tasks, map_secs, reduce_secs);
        for kind in ProgressIndicator::ALL {
            let ctx = IndicatorContext::new(kind, &g, &p, None);
            let v = ctx.progress(&[f1, f2]);
            prop_assert!((0.0..=1.0).contains(&v), "{:?} out of range: {}", kind, v);
        }
        // Uniform advancement is monotone for the weighted family.
        let (lo, hi) = (f1.min(f2), f1.max(f2));
        for kind in [
            ProgressIndicator::TotalWorkWithQ,
            ProgressIndicator::TotalWork,
            ProgressIndicator::VertexFrac,
            ProgressIndicator::CriticalPath,
        ] {
            let ctx = IndicatorContext::new(kind, &g, &p, None);
            prop_assert!(
                ctx.progress(&[lo, lo]) <= ctx.progress(&[hi, hi]) + 1e-9,
                "{:?} not monotone", kind
            );
        }
    }

    /// The control loop's raw allocation is monotone in urgency: less
    /// progress at the same elapsed time never yields a smaller raw
    /// allocation.
    #[test]
    fn raw_allocation_monotone_in_urgency(
        work in 100.0_f64..100_000.0,
        deadline_mins in 10_u64..200,
        p1 in 0.0_f64..1.0,
        p2 in 0.0_f64..1.0,
        elapsed_frac in 0.0_f64..0.9,
    ) {
        let params = ControlParams {
            slack: 1.0,
            hysteresis: 1.0,
            dead_zone: SimDuration::ZERO,
            min_allocation: 1,
        };
        let c = JockeyController::new(
            Arc::new(Toy { work }),
            one_stage_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(deadline_mins)),
            params,
        );
        let tr = deadline_mins as f64 * 60.0 * elapsed_frac;
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a_less_done = c.raw_allocation(&[lo], lo, tr);
        let a_more_done = c.raw_allocation(&[hi], hi, tr);
        prop_assert!(a_less_done >= a_more_done);
    }

    /// The applied guarantee always lies within [min_allocation, max].
    #[test]
    fn guarantee_stays_in_bounds(
        work in 100.0_f64..1e6,
        deadline_mins in 5_u64..100,
        fracs in proptest::collection::vec(0.0_f64..1.0, 1..20),
    ) {
        let mut c = JockeyController::new(
            Arc::new(Toy { work }),
            one_stage_indicator(),
            UtilityFunction::deadline(SimDuration::from_mins(deadline_mins)),
            ControlParams::default(),
        );
        let mut sorted = fracs.clone();
        sorted.sort_by(f64::total_cmp);
        for (i, &f) in sorted.iter().enumerate() {
            let d: ControlDecision = c.tick(&status(f, i as f64 * 60.0));
            prop_assert!(d.guarantee >= 1 && d.guarantee <= 100);
            if let Some(p) = d.progress {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
