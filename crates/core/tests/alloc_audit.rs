//! Counting-allocator audit of the training hot path.
//!
//! The `C(p, a)` training loop runs the same job thousands of times;
//! every per-run heap allocation multiplies accordingly. The workspace
//! pooling (task tables, queues, status scratch, event queue) plus the
//! empty profile builder are supposed to leave only a small constant
//! number of unavoidable per-run allocations (policy boxes, the result
//! and its name, the harvested sample vector). This test pins that
//! budget with a counting `#[global_allocator]`: it fails if a change
//! reintroduces per-event or per-task allocations into the loop.
//!
//! Integration tests are separate binaries, so the global allocator
//! here affects no other test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jockey_cluster::{ClusterConfig, ClusterSim, FixedAllocation, JobSpec, RunHooks, SimWorkspace};
use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
use jockey_simrt::dist::Uniform;
use jockey_simrt::observe::ProgressSink;
use jockey_simrt::time::{SimDuration, SimTime};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A sink that only counts samples — mirrors training's borrowed
/// collector without the indicator dependency.
struct CountSink(u64);

impl ProgressSink for CountSink {
    fn sample(&mut self, _job: usize, _elapsed_secs: f64, _stage_fraction: &[f64]) {
        self.0 += 1;
    }
}

fn training_spec() -> Arc<JobSpec> {
    let mut b = JobGraphBuilder::new("alloc-audit");
    let m = b.stage("map", 40);
    let mid = b.stage("mid", 40);
    let r = b.stage("reduce", 8);
    b.edge(m, mid, EdgeKind::OneToOne);
    b.edge(mid, r, EdgeKind::AllToAll);
    Arc::new(JobSpec::uniform(
        Arc::new(b.build().unwrap()),
        Uniform::new(4.0, 12.0),
        Uniform::new(0.0, 1.0),
        0.05,
    ))
}

/// One training-shaped run: pooled workspace, recording off, borrowed
/// sink — exactly the shape of `train_one_allocation`'s inner loop.
fn one_run(spec: &Arc<JobSpec>, ws: &mut SimWorkspace, seed: u64) {
    let mut cfg = ClusterConfig::dedicated_with_failures(12);
    cfg.control_period = SimDuration::from_secs(15);
    cfg.max_sim_time = SimTime::from_mins(12 * 60);
    let mut sim = ClusterSim::with_workspace(cfg, seed, ws);
    sim.set_record_trace(false);
    sim.set_record_profile(false);
    sim.add_job_shared(spec.clone(), Box::new(FixedAllocation(12)));
    let mut sink = CountSink(0);
    let result = sim.run_single_hooked(RunHooks {
        sink: Some(&mut sink),
        reclaim: Some(ws),
    });
    assert!(result.completed_at.is_some(), "audit job must finish");
    assert!(sink.0 > 0, "training sink must observe samples");
}

#[test]
fn training_loop_allocations_are_pooled_and_constant_per_run() {
    let spec = training_spec();
    let mut ws = SimWorkspace::new();
    // Warm the pool: first runs grow the task table, the ready/running
    // buffers, the event queue's ladder and the status scratch to this
    // job's high-water marks.
    for seed in 0..8 {
        one_run(&spec, &mut ws, seed);
    }

    // Steady state: measure two disjoint batches over fresh seeds.
    const BATCH: u64 = 16;
    let before_a = allocations();
    for seed in 100..100 + BATCH {
        one_run(&spec, &mut ws, seed);
    }
    let batch_a = allocations() - before_a;
    let before_b = allocations();
    for seed in 200..200 + BATCH {
        one_run(&spec, &mut ws, seed);
    }
    let batch_b = allocations() - before_b;

    let per_run_a = batch_a.div_ceil(BATCH);
    let per_run_b = batch_b.div_ceil(BATCH);
    // The job runs 88 tasks / ~90+ events per run; a pooled loop must
    // stay under a small constant that could never cover per-event or
    // per-task allocation. The exact count (boxes for the scheduler,
    // failure model, observer, placement policy and controller; the
    // result, its name, the job vector, the floor vector, the sample
    // growth) sits well under this bound — the bound is deliberately
    // loose so unrelated refactors don't thrash it, while still
    // catching any O(tasks) regression.
    assert!(
        per_run_a <= 40,
        "training run allocates too much: {per_run_a} allocations/run (batch {batch_a})"
    );
    // And the count is steady — nothing accumulates run over run.
    let spread = per_run_a.abs_diff(per_run_b);
    assert!(
        spread <= 8,
        "per-run allocations drift between batches: {per_run_a} vs {per_run_b}"
    );
}
