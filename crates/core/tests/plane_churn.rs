//! Control-plane churn soaks: the plane as a long-lived service.
//!
//! The unit tests in `plane.rs` pin each lifecycle mechanism in
//! isolation; these tests drive the whole admit → tick → finish →
//! release cycle the way the SLO service does — from many threads at
//! once — and assert the three service invariants:
//!
//! 1. **Nothing leaks.** After sustained churn the reservation ledger
//!    drains to zero, the active fleet drains to zero, and the slot
//!    table is bounded by peak concurrency (not total jobs served).
//! 2. **Arbitration stays amortized.** In a steady phase the budget
//!    split is recomputed about once per control period across the
//!    fleet, not once per tick.
//! 3. **Deadline changes are never stale.** A tick issued after
//!    `deadline_changed` returns always reflects the post-change
//!    split, even while concurrent tickers are winning refresh
//!    elections with pre-change state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use jockey_cluster::{JobController, JobStatus};
use jockey_core::predict::CompletionModel;
use jockey_core::progress::{IndicatorContext, ProgressIndicator};
use jockey_core::ControlPlane;
use jockey_jobgraph::graph::JobGraphBuilder;
use jockey_jobgraph::profile::ProfileBuilder;
use jockey_jobgraph::StageId;
use jockey_simrt::time::{SimDuration, SimTime};

/// Closed-form model: `remaining = work · (1 − p) / a`.
struct Toy {
    work: f64,
}

impl CompletionModel for Toy {
    fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
        self.work * (1.0 - progress) / f64::from(allocation.max(1))
    }
    fn max_allocation(&self) -> u32 {
        100
    }
}

fn toy_indicator() -> IndicatorContext {
    let mut b = JobGraphBuilder::new("churn-toy");
    b.stage("only", 10);
    let g = b.build().unwrap();
    let mut pb = ProfileBuilder::new(&g);
    for _ in 0..10 {
        pb.record_task(StageId(0), 1.0, 10.0, false);
    }
    let p = pb.finish(100.0, 1.0);
    IndicatorContext::new(ProgressIndicator::VertexFrac, &g, &p, None)
}

fn status(minute: u64, frac: f64, guarantee: u32) -> JobStatus {
    JobStatus {
        now: SimTime::from_mins(minute),
        elapsed: SimDuration::from_mins(minute),
        stage_fraction: vec![frac],
        stage_completed: vec![(frac * 10.0) as u32],
        running: guarantee,
        running_guaranteed: guarantee,
        guarantee,
        work_done: frac * 100.0,
        finished: frac >= 1.0,
    }
}

#[test]
fn multithreaded_churn_drains_ledger_and_bounds_slots() {
    const THREADS: usize = 4;
    const POOL: usize = 4;
    const CYCLES: usize = 400;

    // Budget holds every thread's pool at ~2 tokens per job with room
    // to spare, so admissions almost always succeed and churn is high.
    let plane = ControlPlane::new(64);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let plane = plane.clone();
            scope.spawn(move || {
                let mut live = Vec::new();
                let mut admitted = 0_usize;
                let mut seq = 0_usize;
                while admitted < CYCLES {
                    while live.len() < POOL && admitted < CYCLES {
                        let name = format!("t{t}-c{seq}");
                        seq += 1;
                        // 7 200 s of work, 60 min deadline ⇒ 2 tokens.
                        match plane.try_add_job(
                            &name,
                            Arc::new(Toy { work: 7_200.0 }),
                            toy_indicator(),
                            SimDuration::from_mins(60),
                            1.0,
                        ) {
                            Ok(h) => {
                                admitted += 1;
                                live.push((h, 0_u64));
                            }
                            Err(e) => panic!("admission under capacity failed: {e}"),
                        }
                    }
                    // Tick each pooled job once; jobs run 3 ticks.
                    let mut i = 0;
                    while i < live.len() {
                        let (h, ticks) = &mut live[i];
                        *ticks += 1;
                        let frac = (*ticks as f64 / 3.0).min(1.0);
                        let d = h.tick(&status(*ticks, frac, 2));
                        assert!(d.guarantee >= 1);
                        if h.is_released() {
                            live.swap_remove(i);
                        } else {
                            i += 1;
                        }
                    }
                    assert!(
                        plane.slot_count() <= THREADS * POOL,
                        "slot table exceeded peak concurrency: {}",
                        plane.slot_count()
                    );
                }
            });
        }
    });

    // The service invariants after ~1.6k admit→finish cycles:
    assert_eq!(plane.reserved(), 0, "ledger failed to drain");
    assert_eq!(plane.active_jobs(), 0, "active fleet failed to drain");
    assert!(plane.slot_count() <= THREADS * POOL);
    let stats = plane.stats();
    assert_eq!(
        stats.over_committed_rounds, 0,
        "admission-guarded plane over-committed: {stats:?}"
    );
    // Refreshes stayed amortized even under churn: well below one per
    // tick (the per-tick-arbiter pathology this plane exists to avoid).
    assert!(
        stats.refreshes < stats.ticks / 2,
        "refresh storm under churn: {stats:?}"
    );
}

#[test]
fn steady_state_refresh_cadence_is_once_per_control_period() {
    // Eight long-lived SLO jobs, no churn: driving R whole control
    // rounds (every job ticks once per round) must recompute the split
    // exactly once per round — the paper's control cadence at 1/N of
    // the per-tick arbitration cost.
    let plane = ControlPlane::new(16);
    let mut handles: Vec<_> = (0..8)
        .map(|i| {
            plane
                .try_add_job(
                    &format!("steady-{i}"),
                    Arc::new(Toy { work: 7_200.0 }),
                    toy_indicator(),
                    SimDuration::from_mins(60),
                    1.0,
                )
                .expect("fits")
        })
        .collect();
    let before = plane.stats();
    const ROUNDS: u64 = 30;
    for round in 0..ROUNDS {
        for h in &mut handles {
            // Far from finished: pure steady state.
            h.tick(&status(round, 0.01, 2));
        }
    }
    let after = plane.stats();
    assert_eq!(after.ticks - before.ticks, ROUNDS * 8);
    let refreshes = after.refreshes - before.refreshes;
    assert!(
        (ROUNDS - 1..=ROUNDS + 2).contains(&refreshes),
        "expected ~{ROUNDS} refreshes (one per round), got {refreshes}"
    );
}

#[test]
fn no_tick_ever_observes_a_stale_post_deadline_change_split() {
    // Two jobs with identical work on a 20-token budget. When A's
    // deadline is 30 min it needs the whole budget (36 000 s / 1 800 s
    // = 20 tokens); at 120 min it needs only 5. A background thread
    // hammers B's ticks — constantly winning refresh elections, some
    // gathered before a change lands — while the main thread flips A's
    // deadline and immediately ticks it. Every post-change tick must
    // see the post-change split: tight ⇒ A's raw share ≥ 12, loose ⇒
    // ≤ 8. Before the generation fence, a lost force-refresh could
    // serve the stale split for a full epoch.
    let plane = ControlPlane::new(20);
    let mut a = plane
        .try_add_job(
            "flipper",
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            SimDuration::from_mins(120),
            1.0,
        )
        .expect("fits");
    let mut b = plane
        .try_add_job(
            "bystander",
            Arc::new(Toy { work: 36_000.0 }),
            toy_indicator(),
            SimDuration::from_mins(120),
            1.0,
        )
        .expect("fits");

    let stop = Arc::new(AtomicBool::new(false));
    let bystander_ticks = Arc::new(AtomicU64::new(0));
    let ticker = {
        let stop = stop.clone();
        let ticks = bystander_ticks.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                b.tick(&status(0, 0.0, 1));
                ticks.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    // Make sure the election contention is real: don't start flipping
    // until the bystander is actually ticking.
    while bystander_ticks.load(Ordering::Relaxed) == 0 {
        std::hint::spin_loop();
    }

    for flip in 0..200 {
        let tight = flip % 2 == 0;
        let mins = if tight { 30 } else { 120 };
        a.deadline_changed(SimDuration::from_mins(mins));
        let raw = a.tick(&status(0, 0.0, 1)).raw.expect("live job");
        if tight {
            assert!(raw >= 12.0, "flip {flip}: stale loose split {raw} served");
        } else {
            assert!(raw <= 8.0, "flip {flip}: stale tight split {raw} served");
        }
    }
    stop.store(true, Ordering::Relaxed);
    ticker.join().expect("ticker panicked");
    assert!(bystander_ticks.load(Ordering::Relaxed) > 0);
}
