//! Conditioner-stage integration tests.
//!
//! Each §4.3 conditioning mechanism — slack, dead-zone gate,
//! hysteresis EWMA, min clamp — is checked in isolation against its
//! closed form, and the standard pipeline composed with the pure
//! argmin policy is checked to reproduce [`JockeyController`]
//! decision-for-decision on a Fig. 6-style run (a mid-job stage
//! slowdown under a deadline utility).

use std::sync::Arc;

use jockey_cluster::{
    ClusterConfig, ClusterSim, FixedAllocation, JobController, JobSpec, JobStatus,
};
use jockey_core::alloc::{AllocationPolicy, ArgminPolicy};
use jockey_core::conditioner::{
    ConditionStage, ConditionerPipeline, DeadZoneGate, HysteresisEwma, MinClamp, SlackStage,
    StageCtx,
};
use jockey_core::control::{ControlParams, JockeyController};
use jockey_core::cpa::{CpaModel, TrainConfig};
use jockey_core::predict::CompletionModel;
use jockey_core::progress::{IndicatorContext, ProgressIndicator};
use jockey_core::utility::UtilityFunction;
use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
use jockey_simrt::dist::Constant;
use jockey_simrt::time::{SimDuration, SimTime};

/// Closed-form model: `remaining = W · (1 − p) / a`.
struct Toy {
    work: f64,
}

impl CompletionModel for Toy {
    fn remaining_secs(&self, _fs: &[f64], progress: f64, allocation: u32) -> f64 {
        self.work * (1.0 - progress) / f64::from(allocation.max(1))
    }
    fn max_allocation(&self) -> u32 {
        100
    }
}

fn toy_ctx<'a>(
    model: &'a dyn CompletionModel,
    utility: &'a UtilityFunction,
    progress: f64,
    elapsed_secs: f64,
    inflation: f64,
    in_force: Option<f64>,
) -> StageCtx<'a> {
    StageCtx {
        fs: &[],
        progress,
        elapsed_secs,
        model,
        utility,
        inflation,
        in_force,
    }
}

// ---------------------------------------------------------------------
// Per-stage closed forms.
// ---------------------------------------------------------------------

/// §4.3 argmin with the linear toy model: the minimum allocation that
/// makes the deadline is `⌈S·W·(1−p) / (D − t)⌉`.
#[test]
fn argmin_matches_the_ceiling_closed_form() {
    let work = 36_000.0;
    let deadline = 3_600.0;
    let policy = ArgminPolicy::new(
        Arc::new(Toy { work }) as Arc<dyn CompletionModel>,
        UtilityFunction::deadline(SimDuration::from_secs_f64(deadline)),
        1,
    );
    for &(progress, elapsed, inflation) in &[
        (0.0, 0.0, 1.0),
        (0.0, 0.0, 1.2),
        (0.5, 600.0, 1.0),
        (0.5, 600.0, 1.6),
        (0.9, 3_000.0, 1.2),
    ] {
        let expect = (inflation * work * (1.0 - progress) / (deadline - elapsed)).ceil() as u32;
        let got = policy.raw_allocation(&[], progress, elapsed, inflation);
        assert_eq!(got, expect.max(1), "p={progress} t={elapsed} S={inflation}");
    }
}

#[test]
fn slack_inflates_predictions_not_allocations() {
    let mut stage = SlackStage { slack: 1.4 };
    assert_eq!(stage.inflation(), 1.4);
    // Allocations pass through the stage untouched...
    let model = Toy { work: 36_000.0 };
    let utility = UtilityFunction::deadline(SimDuration::from_mins(60));
    let ctx = toy_ctx(&model, &utility, 0.0, 0.0, 1.4, None);
    assert_eq!(stage.condition(5.3, &ctx), 5.3);
    // ...while the inflation raises the raw argmin: 36000/3600 = 10
    // tokens without slack, ⌈1.5·10⌉ = 15 with S = 1.5.
    let policy = ArgminPolicy::new(
        Arc::new(Toy { work: 36_000.0 }) as Arc<dyn CompletionModel>,
        UtilityFunction::deadline(SimDuration::from_mins(60)),
        1,
    );
    assert_eq!(policy.raw_allocation(&[], 0.0, 0.0, 1.0), 10);
    assert_eq!(policy.raw_allocation(&[], 0.0, 0.0, 1.5), 15);
}

#[test]
fn dead_zone_gates_increases_on_the_behind_boundary() {
    let model = Toy { work: 36_000.0 };
    let utility = UtilityFunction::deadline(SimDuration::from_secs_f64(3_600.0));
    let mut gate = DeadZoneGate {
        dead_zone: SimDuration::from_secs_f64(300.0),
        min_allocation: 1,
    };
    // In force: 4 tokens. Behind iff t + W(1−p)/4 > D − Z = 3300 s.
    // p = 0.6 → remaining 3600 s > 3300: behind, the increase passes.
    let ctx = toy_ctx(&model, &utility, 0.6, 0.0, 1.0, Some(4.0));
    assert_eq!(gate.condition(6.0, &ctx), 6.0);
    // p = 0.9 → remaining 900 s < 3300: on schedule, increase blocked.
    let ctx = toy_ctx(&model, &utility, 0.9, 0.0, 1.0, Some(4.0));
    assert_eq!(gate.condition(6.0, &ctx), 4.0);
    // Decreases always pass (Fig. 6(c): releases are never delayed).
    assert_eq!(gate.condition(2.0, &ctx), 2.0);
    // First decision (nothing in force) adopts the proposal outright.
    let ctx = toy_ctx(&model, &utility, 0.9, 0.0, 1.0, None);
    assert_eq!(gate.condition(6.0, &ctx), 6.0);
}

#[test]
fn hysteresis_follows_the_ewma_closed_form() {
    let model = Toy { work: 36_000.0 };
    let utility = UtilityFunction::deadline(SimDuration::from_mins(60));
    let ctx = toy_ctx(&model, &utility, 0.0, 0.0, 1.0, None);
    let mut h = HysteresisEwma::new(0.25);
    assert_eq!(h.in_force(), None);
    // First decision jumps to the target.
    assert_eq!(h.condition(8.0, &ctx), 8.0);
    // A^s ← A^s + α(A^r − A^s): 8 + 0.25·(4−8) = 7, then 6.25.
    assert_eq!(h.condition(4.0, &ctx), 7.0);
    assert_eq!(h.condition(4.0, &ctx), 6.25);
    assert_eq!(h.in_force(), Some(6.25));
    // Reset forgets the smoothed state: the next decision jumps again.
    h.reset();
    assert_eq!(h.condition(4.0, &ctx), 4.0);
}

#[test]
fn min_clamp_ceils_and_floors() {
    let model = Toy { work: 36_000.0 };
    let utility = UtilityFunction::deadline(SimDuration::from_mins(60));
    let ctx = toy_ctx(&model, &utility, 0.0, 0.0, 1.0, None);
    let mut clamp = MinClamp { min_allocation: 2 };
    assert_eq!(clamp.condition(3.2, &ctx), 4.0);
    assert_eq!(clamp.condition(5.0, &ctx), 5.0);
    assert_eq!(clamp.condition(0.4, &ctx), 2.0);
}

// ---------------------------------------------------------------------
// The full pipeline vs. the controller on a Fig. 6-style run.
// ---------------------------------------------------------------------

fn trained() -> (Arc<CpaModel>, IndicatorContext) {
    let mut b = JobGraphBuilder::new("conditioning");
    let m = b.stage("map", 24);
    let r = b.stage("reduce", 6);
    b.edge(m, r, EdgeKind::AllToAll);
    let graph = Arc::new(b.build().unwrap());
    let spec = JobSpec::uniform(graph.clone(), Constant(30.0), Constant(20.0), 0.0);
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(6), 3);
    sim.add_job(spec, Box::new(FixedAllocation(6)));
    let profile = sim.run_single().profile;
    let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
    let model = Arc::new(CpaModel::train(
        &graph,
        &profile,
        &ctx,
        &TrainConfig::fast(vec![1, 2, 4, 8]),
        7,
    ));
    (model, ctx)
}

fn status(minute: u64, map_frac: f64, reduce_frac: f64, guarantee: u32) -> JobStatus {
    JobStatus {
        now: SimTime::from_mins(minute),
        elapsed: SimDuration::from_mins(minute),
        stage_fraction: vec![map_frac, reduce_frac],
        stage_completed: vec![(map_frac * 24.0) as u32, (reduce_frac * 6.0) as u32],
        running: guarantee,
        running_guaranteed: guarantee,
        guarantee,
        work_done: map_frac * 24.0 * 30.0 + reduce_frac * 6.0 * 20.0,
        finished: false,
    }
}

/// Fig. 6(b)'s scenario shape: the map stage runs on model, then the
/// reduce stage crawls at a fraction of its training rate, forcing the
/// controller to re-size mid-job.
fn fig6_script() -> Vec<(u64, f64, f64)> {
    let mut out = Vec::new();
    for minute in 1..=40 {
        let map = (minute as f64 / 12.0).min(1.0);
        let reduce = if minute <= 12 {
            0.0
        } else {
            ((minute - 12) as f64 * 0.015).min(1.0) // ~10x slower than trained.
        };
        out.push((minute, map, reduce));
    }
    out
}

#[test]
fn standard_pipeline_reproduces_the_controller_on_fig6() {
    let (model, indicator) = trained();
    let params = ControlParams::default();
    let utility = UtilityFunction::deadline(SimDuration::from_mins(45));

    let mut controller = JockeyController::new(
        model.clone() as Arc<dyn CompletionModel>,
        indicator.clone(),
        utility.clone(),
        params,
    );

    // The same decomposition the controller is built from, assembled
    // by hand: pure argmin core + the standard conditioning stack.
    let policy = ArgminPolicy::new(
        model.clone() as Arc<dyn CompletionModel>,
        utility.shifted_left(params.dead_zone),
        params.min_allocation,
    );
    let mut pipeline = ConditionerPipeline::standard(&params);

    let mut guarantee = 0;
    for (minute, map, reduce) in fig6_script() {
        let st = status(minute, map, reduce, guarantee);
        let got = controller.tick(&st);

        let tr = st.elapsed.as_secs_f64();
        let fs = &st.stage_fraction;
        let p = indicator.progress(fs);
        let inflation = pipeline.inflation();
        let raw = policy.raw_allocation(fs, p, tr, inflation);
        let ctx = StageCtx {
            fs,
            progress: p,
            elapsed_secs: tr,
            model: &*model,
            utility: &utility,
            inflation,
            in_force: pipeline.in_force(),
        };
        let conditioned = pipeline.run(f64::from(raw), &ctx);
        let expect_guarantee = (conditioned as u32).max(params.min_allocation);
        let expect_predicted = tr + model.remaining_secs(fs, p, expect_guarantee);

        assert_eq!(got.raw, Some(f64::from(raw)), "raw diverged at {minute}");
        assert_eq!(
            got.guarantee, expect_guarantee,
            "guarantee diverged at minute {minute}"
        );
        assert_eq!(
            got.predicted_completion,
            Some(expect_predicted),
            "prediction diverged at minute {minute}"
        );
        guarantee = got.guarantee;
    }

    // The run actually exercised the slowdown: the controller's trace
    // shows a mid-run behind-schedule stretch with a re-sized grant.
    let trace = controller.trace();
    assert!(trace
        .iter()
        .any(|t| t.behind && t.elapsed_secs > 12.0 * 60.0));
    // And its per-stage attribution survived alongside (one record per
    // tick, every stage accounted for).
    assert_eq!(controller.pipeline_trace().len(), trace.len());
}
