//! Prints a digest of a fixed-seed `C(p, a)` training table — a quick
//! way to confirm training determinism across code changes:
//!
//! ```text
//! cargo run --release -p jockey-core --example train_digest
//! ```

use std::sync::Arc;

use jockey_cluster::{ClusterConfig, ClusterSim, FixedAllocation, JobSpec};
use jockey_core::cpa::{CpaModel, TrainConfig};
use jockey_core::progress::{IndicatorContext, ProgressIndicator};
use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
use jockey_simrt::dist::Uniform;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let mut b = JobGraphBuilder::new("digest-job");
    let m = b.stage("map", 24);
    let mid = b.stage("mid", 24);
    let r = b.stage("reduce", 4);
    b.edge(m, mid, EdgeKind::OneToOne);
    b.edge(mid, r, EdgeKind::AllToAll);
    let graph = Arc::new(b.build().unwrap());

    let spec = JobSpec::uniform(
        graph.clone(),
        Uniform::new(5.0, 15.0),
        Uniform::new(0.0, 1.0),
        0.05,
    );
    let mut sim = ClusterSim::new(ClusterConfig::dedicated_with_failures(12), 77);
    sim.add_job(spec, Box::new(FixedAllocation(12)));
    let profile = sim.run_single().profile;

    let ctx = IndicatorContext::new(ProgressIndicator::TotalWorkWithQ, &graph, &profile, None);
    let cfg = TrainConfig {
        allocations: vec![2, 4, 8, 16],
        runs_per_allocation: 6,
        ..TrainConfig::fast(vec![2])
    };
    let model = CpaModel::train(&graph, &profile, &ctx, &cfg, 1234);
    let text = model.to_kv().to_text();
    println!("profile_work={:.9}", profile.total_work());
    println!("samples={}", model.sample_count());
    println!("digest={:016x}", fnv1a(text.as_bytes()));
}
