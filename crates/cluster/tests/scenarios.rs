//! Scenario tests for the cluster simulator's control-facing paths:
//! deadline-change events, controller interaction, multi-job
//! contention, and token-class accounting.

use std::sync::{Arc, Mutex};

use jockey_cluster::{
    ClusterConfig, ClusterSim, ControlDecision, FixedAllocation, JobController, JobSpec, JobStatus,
};
use jockey_jobgraph::graph::{EdgeKind, JobGraph, JobGraphBuilder};
use jockey_simrt::dist::Constant;
use jockey_simrt::time::{SimDuration, SimTime};

fn graph(map: u32, reduce: u32) -> Arc<JobGraph> {
    let mut b = JobGraphBuilder::new("scenario");
    let m = b.stage("map", map);
    let r = b.stage("reduce", reduce);
    b.edge(m, r, EdgeKind::AllToAll);
    Arc::new(b.build().unwrap())
}

fn spec(map: u32, reduce: u32, secs: f64) -> JobSpec {
    JobSpec::uniform(graph(map, reduce), Constant(secs), Constant(0.0), 0.0)
}

/// Records every status it sees and answers with a fixed allocation.
struct Spy {
    allocation: u32,
    log: Arc<Mutex<Vec<(f64, u32)>>>,
    deadline_changes: Arc<Mutex<Vec<f64>>>,
}

impl JobController for Spy {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        self.log
            .lock()
            .unwrap()
            .push((status.elapsed.as_secs_f64(), status.running));
        ControlDecision::simple(self.allocation)
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        self.deadline_changes
            .lock()
            .unwrap()
            .push(new_deadline.as_secs_f64());
    }
}

#[test]
fn deadline_change_event_reaches_controller_at_the_right_time() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let changes = Arc::new(Mutex::new(Vec::new()));
    let controller = Spy {
        allocation: 2,
        log: log.clone(),
        deadline_changes: changes.clone(),
    };
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
    let idx = sim.add_job(spec(20, 2, 30.0), Box::new(controller));
    sim.schedule_deadline_change(idx, SimTime::from_mins(2), SimDuration::from_mins(7));
    let r = sim.run_single();
    assert!(r.completed_at.is_some());
    let changes = changes.lock().unwrap();
    assert_eq!(changes.as_slice(), &[420.0]);
    // The controller also got regular ticks before and after.
    let log = log.lock().unwrap();
    assert!(log.iter().any(|&(t, _)| t < 120.0));
    assert!(log.iter().any(|&(t, _)| t > 120.0));
}

#[test]
fn controller_sees_monotone_elapsed_and_bounded_running() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let controller = Spy {
        allocation: 3,
        log: log.clone(),
        deadline_changes: Arc::new(Mutex::new(Vec::new())),
    };
    let mut cfg = ClusterConfig::dedicated(3);
    cfg.control_period = SimDuration::from_secs(15);
    let mut sim = ClusterSim::new(cfg, 2);
    sim.add_job(spec(12, 2, 10.0), Box::new(controller));
    sim.run();
    let log = log.lock().unwrap();
    assert!(log.len() >= 3);
    let mut prev = -1.0;
    for &(t, running) in log.iter() {
        assert!(t >= prev, "elapsed went backwards");
        prev = t;
        assert!(running <= 3, "more tasks running than tokens");
    }
}

#[test]
fn two_jobs_with_guarantees_make_proportional_progress() {
    // 10 tokens, two identical jobs with guarantees 6 and 2: the
    // 6-token job must finish first, and roughly 3x sooner on its
    // map phase.
    let mut cfg = ClusterConfig::dedicated(8);
    cfg.max_guarantee = 8;
    cfg.spare_enabled = false;
    let mut sim = ClusterSim::new(cfg, 3);
    let fast = sim.add_job(spec(36, 2, 10.0), Box::new(FixedAllocation(6)));
    let slow = sim.add_job(spec(36, 2, 10.0), Box::new(FixedAllocation(2)));
    let results = sim.run();
    let fast_done = results[fast].completed_at.unwrap();
    let slow_done = results[slow].completed_at.unwrap();
    assert!(fast_done < slow_done);
    // 36 tasks at 6 tokens = 6 waves (60 s) + 10 s reduce = 70 s;
    // at 2 tokens = 18 waves (180 s) + 10 s = 190 s.
    assert_eq!(fast_done, SimTime::from_secs(70));
    assert_eq!(slow_done, SimTime::from_secs(190));
}

#[test]
fn spare_tasks_upgrade_when_guarantee_rises() {
    // A controller that starts at 1 token and jumps to 8 at t=60s.
    struct Stepper;
    impl JobController for Stepper {
        fn tick(&mut self, status: &JobStatus) -> ControlDecision {
            ControlDecision::simple(if status.elapsed < SimDuration::from_secs(60) {
                1
            } else {
                8
            })
        }
    }
    let mut cfg = ClusterConfig::dedicated(16);
    cfg.max_guarantee = 8;
    cfg.spare_enabled = true; // Idle tokens flow to the job as spare.
    let mut sim = ClusterSim::new(cfg, 4);
    sim.add_job(spec(64, 2, 20.0), Box::new(Stepper));
    let r = sim.run_single();
    assert!(r.completed_at.is_some());
    // Early tasks ran as spare; after the jump most run guaranteed.
    assert!(r.spare_task_count > 0, "no spare tasks at low guarantee");
    assert!(
        r.guaranteed_task_count > 0,
        "no guaranteed tasks after the step"
    );
    assert_eq!(r.guaranteed_task_count + r.spare_task_count, 66);
}

#[test]
fn work_conservation_across_classes() {
    // Recorded work is actual token occupancy, so a spare-assisted run
    // finishes sooner but books at least as many task-seconds (spare
    // tasks carry the 1.25x class penalty).
    let run = |spare: bool| {
        let mut cfg = ClusterConfig::dedicated(12);
        cfg.max_guarantee = 4;
        cfg.spare_enabled = spare;
        let mut sim = ClusterSim::new(cfg, 5);
        sim.add_job(spec(24, 2, 10.0), Box::new(FixedAllocation(4)));
        sim.run_single()
    };
    let with_spare = run(true);
    let without = run(false);
    assert!(with_spare.completed_at.unwrap() < without.completed_at.unwrap());
    // Guaranteed-only run's work is exactly the clean total.
    assert_eq!(without.work_done_secs, 24.0 * 10.0 + 2.0 * 10.0);
    // The spare run is slower per task (1.25x class penalty) so its
    // recorded occupancy is at least the clean total.
    assert!(with_spare.work_done_secs >= without.work_done_secs);
}

#[test]
fn zero_guarantee_job_still_finishes_via_spare() {
    let mut cfg = ClusterConfig::dedicated(8);
    cfg.spare_enabled = true;
    let mut sim = ClusterSim::new(cfg, 6);
    sim.add_job(spec(8, 1, 5.0), Box::new(FixedAllocation(0)));
    let r = sim.run_single();
    assert!(r.completed_at.is_some(), "spare-only job wedged");
    assert_eq!(r.guaranteed_task_count, 0);
    assert_eq!(r.spare_task_count, 9);
}

#[test]
fn staggered_jobs_share_cleanly() {
    let mut cfg = ClusterConfig::dedicated(4);
    cfg.max_guarantee = 4;
    cfg.spare_enabled = false;
    let mut sim = ClusterSim::new(cfg, 7);
    let first = sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(2)));
    let second = sim.add_job_at(
        spec(8, 2, 10.0),
        Box::new(FixedAllocation(2)),
        SimTime::from_secs(30),
    );
    let results = sim.run();
    assert!(results[first].completed_at.is_some());
    assert!(results[second].completed_at.is_some());
    assert_eq!(results[second].started_at, SimTime::from_secs(30));
    // Each held at most its 2-token guarantee: identical durations.
    assert_eq!(
        results[first].duration().unwrap(),
        results[second].duration().unwrap()
    );
}

#[test]
fn placement_model_slows_remote_tasks() {
    use jockey_cluster::PlacementConfig;
    let run = |placement: Option<PlacementConfig>| {
        let mut cfg = ClusterConfig::dedicated(8);
        cfg.placement = placement;
        let mut sim = ClusterSim::new(cfg, 11);
        sim.add_job(spec(64, 2, 10.0), Box::new(FixedAllocation(8)));
        sim.run_single()
    };
    let local = run(None);
    let remote_heavy = run(Some(PlacementConfig {
        machines: 10,
        locality_fraction: 0.0, // Every placement pays the penalty.
        remote_penalty: 1.5,
    }));
    let base = local.duration().unwrap().as_secs_f64();
    let slow = remote_heavy.duration().unwrap().as_secs_f64();
    assert!(
        (slow / base - 1.5).abs() < 0.05,
        "expected ~1.5x slowdown, got {}",
        slow / base
    );
    // Fully-local placement behaves exactly like the abstract model.
    let fully_local = run(Some(PlacementConfig {
        machines: 10,
        locality_fraction: 1.0,
        remote_penalty: 1.5,
    }));
    assert_eq!(fully_local.duration(), local.duration());
}

#[test]
fn machine_failures_with_placement_kill_co_resident_tasks() {
    use jockey_cluster::{FailureConfig, PlacementConfig};
    let mut cfg = ClusterConfig::dedicated(8);
    cfg.placement = Some(PlacementConfig {
        machines: 4, // Few machines: failures hit multiple tasks.
        locality_fraction: 0.9,
        remote_penalty: 1.2,
    });
    cfg.failures = FailureConfig {
        task_failure_prob: Some(0.0),
        machine_failure_rate_per_hour: 120.0,
        tasks_per_machine: 2, // Ignored by the placement path.
        data_loss_prob: 0.0,
        rack_failure_rate_per_hour: 0.0,
        replica_loss_prob: 0.0,
    };
    let mut sim = ClusterSim::new(cfg, 13);
    sim.add_job(spec(40, 4, 8.0), Box::new(FixedAllocation(8)));
    let r = sim.run_single();
    assert!(
        r.completed_at.is_some(),
        "job must survive machine failures"
    );
    assert!(r.wasted_secs > 0.0, "machine failures should waste work");
}
