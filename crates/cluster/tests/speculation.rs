//! Integration tests of the speculation subsystem: the
//! speculation-off path is *event-for-event* identical to the
//! pre-speculation engine, clone-on-slow strictly improves tail
//! latency on a heavy-tailed stage at equal total token budget, and
//! kill-on-first-finish conserves tokens under the per-step invariant
//! checker.

use std::sync::Arc;

use jockey_cluster::{
    ClusterConfig, ClusterSim, FixedAllocation, JobSpec, NoSpeculation, SpeculationConfig,
};
use jockey_jobgraph::graph::{EdgeKind, JobGraph, JobGraphBuilder};
use jockey_simrt::dist::{Constant, Dist, LogNormal};
use jockey_simrt::event::QueueBackend;
use proptest::prelude::*;

/// Random fork/chain DAGs (same shape family as `props.rs`).
fn arb_graph() -> impl Strategy<Value = Arc<JobGraph>> {
    (
        proptest::collection::vec((1_usize..4, 1_u32..8), 1..5),
        any::<u64>(),
    )
        .prop_map(|(segments, link_seed)| {
            let mut b = JobGraphBuilder::new("spec-equiv");
            let mut last = Vec::new();
            for (si, &(len, tasks)) in segments.iter().enumerate() {
                let mut prev = None;
                for k in 0..len {
                    let s = b.stage(format!("s{si}_{k}"), tasks);
                    if let Some(p) = prev {
                        b.edge(p, s, EdgeKind::OneToOne);
                    }
                    prev = Some(s);
                }
                last.push(prev.expect("non-empty segment"));
            }
            for si in 1..last.len() {
                let from = (link_seed as usize + si) % si;
                let first_idx: usize = segments[..si].iter().map(|&(l, _)| l).sum();
                b.edge(
                    last[from],
                    jockey_jobgraph::StageId(first_idx),
                    EdgeKind::AllToAll,
                );
            }
            Arc::new(b.build().expect("valid by construction"))
        })
}

/// Runs `spec` on `cfg` and returns the full journal dump plus the
/// scalar outcome. `explicit_off` swaps in the [`NoSpeculation`]
/// policy; the default arm keeps the stock `CloneOnSlow` (inert
/// without a `cfg.speculation`). Batching is disabled so the journals
/// are comparable line for line.
fn journal_run(
    cfg: &ClusterConfig,
    spec: &JobSpec,
    alloc: u32,
    seed: u64,
    explicit_off: bool,
) -> (String, (Option<jockey_simrt::time::SimTime>, f64, f64, u64)) {
    let mut sim = ClusterSim::new(cfg.clone(), seed);
    sim.set_batching(false);
    if explicit_off {
        sim.set_speculation_policy(Box::new(NoSpeculation));
    }
    let journal = sim.attach_journal(1 << 18);
    sim.add_job(spec.clone(), Box::new(FixedAllocation(alloc)));
    let r = sim.run_single();
    (
        journal.dump(),
        (
            r.completed_at,
            r.work_done_secs,
            r.wasted_secs,
            r.spare_task_count,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With no `SpeculationConfig`, the default engine (stock
    /// `CloneOnSlow` policy) is event-for-event identical — the whole
    /// journal, every dispatched event and transition in order — to an
    /// engine with speculation explicitly replaced by `NoSpeculation`,
    /// across random DAGs, seeds, noisy configs and all three queue
    /// backends. This pins the bit-identical contract: an inert
    /// speculation seam leaves no trace in the event stream.
    #[test]
    fn speculation_off_is_event_for_event_identical(
        graph in arb_graph(),
        fail_prob in 0.0_f64..0.3,
        seed in any::<u64>(),
    ) {
        let spec = JobSpec::uniform(
            graph,
            LogNormal::from_median_p90(3.0, 8.0),
            Constant(0.2),
            fail_prob,
        );
        for backend in [QueueBackend::BinaryHeap, QueueBackend::Bucketed, QueueBackend::Adaptive] {
            let mut cfg = ClusterConfig::production();
            cfg.total_tokens = 24;
            cfg.max_guarantee = 8;
            cfg.queue_backend = backend;
            let (jd, rd) = journal_run(&cfg, &spec, 6, seed, false);
            let (jn, rn) = journal_run(&cfg, &spec, 6, seed, true);
            prop_assert_eq!(rd, rn, "results diverged on {:?}", backend);
            prop_assert_eq!(jd, jn, "journals diverged on {:?}", backend);
        }
    }
}

/// A single heavy-tailed map stage: runtimes are mostly fast with an
/// occasional straggler drawn from a Pareto tail (alpha 1.5 keeps the
/// mean finite, as the speculation machinery requires, while the far
/// quantiles run into the thousands of seconds).
fn heavy_tailed_spec(tasks: u32, p_straggle: f64) -> JobSpec {
    let mut b = JobGraphBuilder::new("straggler-map");
    b.stage("map", tasks);
    let graph = Arc::new(b.build().unwrap());
    let runtime = Dist::mixture(
        Constant(10.0),
        jockey_simrt::dist::Pareto::new(300.0, 1.5),
        p_straggle,
    );
    JobSpec::new(graph, vec![runtime], vec![Constant(0.0).into()], 0.0, 0.0)
}

/// Latency of one run, in seconds (the horizon if it never finished).
fn run_latency(cfg: &ClusterConfig, spec: &JobSpec, alloc: u32, seed: u64) -> f64 {
    let mut sim = ClusterSim::new(cfg.clone(), seed);
    sim.add_job(spec.clone(), Box::new(FixedAllocation(alloc)));
    let r = sim.run_single();
    r.duration()
        .map(|d| d.as_secs_f64())
        .unwrap_or_else(|| cfg.max_sim_time.as_secs_f64())
}

/// The `q`-quantile by rank on a sorted copy (nearest-rank method).
fn quantile(mut xs: Vec<f64>, q: f64) -> f64 {
    xs.sort_by(f64::total_cmp);
    let idx = ((xs.len() as f64 * q).ceil() as usize).clamp(1, xs.len()) - 1;
    xs[idx]
}

/// Clone-on-slow strictly improves p99 completion on a heavy-tailed
/// stage *at equal total token budget*: the no-speculation arm gets
/// the same 20 tokens as guarantee headroom (useless — the stage is
/// only 16 wide), the speculative arm holds 16 guaranteed plus the
/// 4-token clone budget. Both arms draw identical original runtimes
/// (clone draws happen after all first attempts), so speculation can
/// only shorten each seed's run — and at these seeds it strictly
/// shortens the tail.
#[test]
fn clone_on_slow_improves_p99_at_equal_token_budget() {
    let tasks = 16;
    let spec = heavy_tailed_spec(tasks, 0.25);

    let mut off = ClusterConfig::dedicated(20);
    off.max_guarantee = 20;
    let mut on = ClusterConfig::dedicated(20);
    on.max_guarantee = 16;
    on.speculation = Some(SpeculationConfig::clone_on_slow(1.5, 4));

    let seeds: Vec<u64> = (0..40).map(|i| 1000 + 17 * i).collect();
    let lat_off: Vec<f64> = seeds
        .iter()
        .map(|&s| run_latency(&off, &spec, 20, s))
        .collect();
    let lat_on: Vec<f64> = seeds
        .iter()
        .map(|&s| run_latency(&on, &spec, 16, s))
        .collect();

    for (i, (&a, &b)) in lat_off.iter().zip(&lat_on).enumerate() {
        assert!(
            b <= a + 1e-9,
            "seed {}: speculation made the run slower ({b} vs {a})",
            seeds[i]
        );
    }
    let (p99_off, p99_on) = (
        quantile(lat_off.clone(), 0.99),
        quantile(lat_on.clone(), 0.99),
    );
    assert!(
        p99_on < p99_off,
        "p99 did not strictly improve: on {p99_on} vs off {p99_off}"
    );
    let (p50_off, p50_on) = (quantile(lat_off, 0.50), quantile(lat_on, 0.50));
    assert!(
        p50_on <= p50_off,
        "median regressed: on {p50_on} vs off {p50_off}"
    );
}

/// Kill-on-first-finish conserves tokens: the run executes with the
/// per-step invariant checker enabled (token conservation including
/// the clone class, per-stage sibling accounting, clone-budget cap),
/// so any orphan clone or token leak panics mid-run. The counters
/// prove the machinery actually engaged: clones launched, races won,
/// and every losing sibling's partial work accounted as waste.
#[test]
fn kill_on_first_finish_conserves_tokens_under_invariants() {
    let spec = heavy_tailed_spec(24, 0.3);
    let mut cfg = ClusterConfig::dedicated(32);
    cfg.max_guarantee = 24;
    cfg.speculation = Some(SpeculationConfig::clone_on_slow(1.5, 8));
    let mut sim = ClusterSim::new(cfg, 11);
    sim.set_invariant_checks(true);
    sim.add_job(spec, Box::new(FixedAllocation(24)));
    let r = sim.run_single();
    assert!(r.completed_at.is_some(), "job must finish");
    assert!(r.clone_task_count > 0, "stragglers must be cloned");
    assert!(r.clone_wins > 0, "some clone must win its race");
    assert!(
        r.wasted_secs > 0.0,
        "losing siblings' partial work must be wasted"
    );
    // Work conservation: completed work is exactly the sum of winning
    // attempts; no double-count from killed siblings.
    assert!(r.work_done_secs > 0.0);
}
