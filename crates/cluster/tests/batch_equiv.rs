//! Equivalence of the batched dense-regime run loop against the
//! event-granular reference.
//!
//! The engine's completion batching (`ClusterSim::set_batching`)
//! drains same-instant `TaskDone` events as one batch and runs a
//! single merged scheduler pass. Its contract is *bit-identical
//! results*: task state, RNG streams, results, traces and progress
//! samples all match per-event stepping — only observer/journal line
//! interleaving may differ. These tests pin that contract across
//! random DAGs, seeds, queue backends, a rack topology and a
//! multi-job cluster, comparing everything a run returns except
//! journals.

use std::sync::Arc;

use jockey_cluster::{
    ClusterConfig, ClusterSim, FixedAllocation, JobResult, JobSpec, RunHooks, TopologyConfig,
};
use jockey_jobgraph::graph::{EdgeKind, JobGraph, JobGraphBuilder};
use jockey_simrt::dist::{Constant, LogNormal};
use jockey_simrt::event::QueueBackend;
use jockey_simrt::observe::ProgressSink;
use proptest::prelude::*;

/// One progress-sample record: `(job, elapsed_secs, stage_fractions)`.
type Sample = (usize, f64, Vec<f64>);

/// Collects every progress sample a run emits, exactly as training's
/// borrowed sink sees them.
#[derive(Default)]
struct SampleLog(Vec<Sample>);

impl ProgressSink for SampleLog {
    fn sample(&mut self, job: usize, elapsed_secs: f64, stage_fraction: &[f64]) {
        self.0.push((job, elapsed_secs, stage_fraction.to_vec()));
    }
}

/// Random fork/chain DAGs with consistent one-to-one task counts
/// (same shape family as `props.rs`).
fn arb_graph() -> impl Strategy<Value = Arc<JobGraph>> {
    (
        proptest::collection::vec((1_usize..4, 1_u32..8), 1..5),
        any::<u64>(),
    )
        .prop_map(|(segments, link_seed)| {
            let mut b = JobGraphBuilder::new("batch-equiv");
            let mut last = Vec::new();
            for (si, &(len, tasks)) in segments.iter().enumerate() {
                let mut prev = None;
                for k in 0..len {
                    let s = b.stage(format!("s{si}_{k}"), tasks);
                    if let Some(p) = prev {
                        b.edge(p, s, EdgeKind::OneToOne);
                    }
                    prev = Some(s);
                }
                last.push(prev.expect("non-empty segment"));
            }
            for si in 1..last.len() {
                let from = (link_seed as usize + si) % si;
                let first_idx: usize = segments[..si].iter().map(|&(l, _)| l).sum();
                b.edge(
                    last[from],
                    jockey_jobgraph::StageId(first_idx),
                    EdgeKind::AllToAll,
                );
            }
            Arc::new(b.build().expect("valid by construction"))
        })
}

/// Runs `spec` once and returns the results plus the sample stream.
/// The batched arm turns invariant checks off (they force per-event
/// stepping); the reference arm leaves them on, so every compared run
/// also passes the per-step invariants.
fn run_arm(
    cfg: &ClusterConfig,
    specs: &[(JobSpec, u32)],
    seed: u64,
    batched: bool,
) -> (Vec<JobResult>, Vec<Sample>) {
    let mut sim = ClusterSim::new(cfg.clone(), seed);
    sim.set_batching(batched);
    sim.set_invariant_checks(!batched);
    for (spec, alloc) in specs {
        sim.add_job(spec.clone(), Box::new(FixedAllocation(*alloc)));
    }
    let mut sink = SampleLog::default();
    let results = sim.run_hooked(RunHooks {
        sink: Some(&mut sink),
        reclaim: None,
    });
    (results, sink.0)
}

/// Asserts two runs returned bit-identical observable outcomes:
/// result fields, traces, profiles and the progress-sample stream.
fn assert_equivalent(cfg: &ClusterConfig, specs: &[(JobSpec, u32)], seed: u64) {
    let (reference, ref_samples) = run_arm(cfg, specs, seed, false);
    let (batched, batch_samples) = run_arm(cfg, specs, seed, true);
    assert_eq!(reference.len(), batched.len());
    for (r, b) in reference.iter().zip(&batched) {
        assert_eq!(r.name, b.name);
        assert_eq!(r.started_at, b.started_at);
        assert_eq!(r.completed_at, b.completed_at, "completion for {}", r.name);
        assert_eq!(
            r.work_done_secs.to_bits(),
            b.work_done_secs.to_bits(),
            "work for {}",
            r.name
        );
        assert_eq!(
            r.wasted_secs.to_bits(),
            b.wasted_secs.to_bits(),
            "waste for {}",
            r.name
        );
        assert_eq!(r.guaranteed_task_count, b.guaranteed_task_count);
        assert_eq!(r.spare_task_count, b.spare_task_count);
        assert_eq!(r.trace.guarantee, b.trace.guarantee);
        assert_eq!(r.trace.raw_allocation, b.trace.raw_allocation);
        assert_eq!(r.trace.running, b.trace.running);
        assert_eq!(r.trace.progress, b.trace.progress);
        assert_eq!(r.trace.predicted_completion, b.trace.predicted_completion);
        assert_eq!(r.trace.background_util, b.trace.background_util);
        assert_eq!(r.trace.stage_fractions, b.trace.stage_fractions);
        assert_eq!(r.profile, b.profile, "profile for {}", r.name);
    }
    assert_eq!(ref_samples, batch_samples, "progress sample streams");
}

/// The dense training regime: a dedicated failure-prone cluster where
/// the gate holds and batches actually form.
fn training_cfg(backend: QueueBackend) -> ClusterConfig {
    let mut cfg = ClusterConfig::dedicated_with_failures(8);
    cfg.queue_backend = backend;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched == reference over random DAGs, seeds and failure rates
    /// on every queue backend, in the gated (dedicated) regime where
    /// same-instant completion batches actually form (constant
    /// runtimes make whole stage waves finish at one instant).
    #[test]
    fn batched_matches_reference_dense(
        graph in arb_graph(),
        fail_prob in 0.0_f64..0.3,
        seed in any::<u64>(),
    ) {
        let spec = JobSpec::uniform(graph, Constant(4.0), Constant(0.2), fail_prob);
        for backend in [QueueBackend::BinaryHeap, QueueBackend::Bucketed, QueueBackend::Adaptive] {
            assert_equivalent(&training_cfg(backend), &[(spec.clone(), 8)], seed);
        }
    }

    /// Batched == reference with jittered runtimes (batches are rarer
    /// and interleave with per-event steps) and two competing jobs
    /// sharing the merged scheduler pass.
    #[test]
    fn batched_matches_reference_two_jobs(
        graph_a in arb_graph(),
        graph_b in arb_graph(),
        seed in any::<u64>(),
    ) {
        let a = JobSpec::uniform(
            graph_a,
            LogNormal::from_median_p90(3.0, 8.0),
            Constant(0.2),
            0.05,
        );
        let b = JobSpec::uniform(graph_b, Constant(5.0), Constant(0.0), 0.0);
        let cfg = training_cfg(QueueBackend::Adaptive);
        assert_equivalent(&cfg, &[(a, 5), (b, 3)], seed);
    }

    /// Enabling batching under a disqualifying config (spare capacity,
    /// background load) is a no-op: the static gate keeps the run on
    /// the per-event path, so results still match exactly.
    #[test]
    fn batching_is_inert_when_gated_off(graph in arb_graph(), seed in any::<u64>()) {
        let spec = JobSpec::uniform(
            graph,
            LogNormal::from_median_p90(2.0, 6.0),
            Constant(0.1),
            0.05,
        );
        let mut cfg = ClusterConfig::production();
        cfg.total_tokens = 60;
        cfg.max_guarantee = 10;
        assert_equivalent(&cfg, &[(spec, 6)], seed);
    }
}

/// Topology runs are statically gated off the batch path: machine
/// placement reads the free slots live, and a merged pass — which
/// frees every same-instant completion's slot before placing the
/// first replacement — genuinely places differently than interleaved
/// per-event passes (observed as divergent completion times before
/// the gate grew its topology arm). Enabling batching must therefore
/// be a no-op here, with results still matching exactly.
#[test]
fn batching_is_inert_on_topology() {
    let mut b = JobGraphBuilder::new("batch-equiv-topo");
    let m = b.stage("map", 24);
    let r = b.stage("reduce", 6);
    b.edge(m, r, EdgeKind::AllToAll);
    let graph = Arc::new(b.build().unwrap());
    let spec = JobSpec::uniform(graph, Constant(6.0), Constant(0.3), 0.05);
    for seed in [1_u64, 9, 42, 1234] {
        let mut cfg = training_cfg(QueueBackend::Adaptive);
        cfg.topology = Some(TopologyConfig::google_mix(2));
        assert_equivalent(&cfg, &[(spec.clone(), 8)], seed);
    }
}
