//! Black-box behavioral tests of the simulator through its public API:
//! exact latencies on dedicated slices, barrier/pipeline semantics,
//! token/spare/background interactions, failures, determinism, and
//! result/trace/profile reporting.

use jockey_cluster::{
    BackgroundConfig, ClusterConfig, ClusterSim, FailureConfig, FixedAllocation, JobSpec,
};
use jockey_jobgraph::graph::{EdgeKind, JobGraph, JobGraphBuilder};
use jockey_simrt::dist::Constant;
use jockey_simrt::time::{SimDuration, SimTime};
use std::sync::Arc;

fn two_stage_graph(map_tasks: u32, reduce_tasks: u32) -> Arc<JobGraph> {
    let mut b = JobGraphBuilder::new("test-job");
    let m = b.stage("map", map_tasks);
    let r = b.stage("reduce", reduce_tasks);
    b.edge(m, r, EdgeKind::AllToAll);
    Arc::new(b.build().unwrap())
}

fn spec(map_tasks: u32, reduce_tasks: u32, secs: f64) -> JobSpec {
    JobSpec::uniform(
        two_stage_graph(map_tasks, reduce_tasks),
        Constant(secs),
        Constant(0.0),
        0.0,
    )
}

#[test]
fn dedicated_run_completes_with_exact_latency() {
    // 8 map tasks of 10 s on 4 tokens = 2 waves (20 s); then 2
    // reduce tasks of 10 s in parallel (10 s). Total 30 s.
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
    sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
    let r = sim.run();
    assert_eq!(r[0].completed_at, Some(SimTime::from_secs(30)));
    assert_eq!(r[0].duration(), Some(SimDuration::from_secs(30)));
    assert_eq!(r[0].work_done_secs, 100.0);
    assert_eq!(r[0].wasted_secs, 0.0);
    assert_eq!(r[0].guaranteed_task_count, 10);
    assert_eq!(r[0].spare_task_count, 0);
}

#[test]
fn barrier_serializes_stages() {
    // 2 map tasks, 10 s each, 10 tokens: reduce cannot overlap map.
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(10), 1);
    sim.add_job(spec(2, 2, 10.0), Box::new(FixedAllocation(10)));
    let r = sim.run();
    assert_eq!(r[0].completed_at, Some(SimTime::from_secs(20)));
}

#[test]
fn one_to_one_edges_pipeline() {
    let mut b = JobGraphBuilder::new("pipe");
    let a = b.stage("a", 2);
    let c = b.stage("b", 2);
    b.edge(a, c, EdgeKind::OneToOne);
    let graph = Arc::new(b.build().unwrap());
    let spec = JobSpec::uniform(graph, Constant(10.0), Constant(0.0), 0.0);
    // 2 tokens: both chains run fully parallel; 20 s total (no barrier).
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(2), 1);
    sim.add_job(spec, Box::new(FixedAllocation(2)));
    let r = sim.run();
    assert_eq!(r[0].completed_at, Some(SimTime::from_secs(20)));
}

#[test]
fn fewer_tokens_make_jobs_slower() {
    let latency = |tokens: u32| {
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(tokens), 1);
        sim.add_job(spec(16, 2, 10.0), Box::new(FixedAllocation(tokens)));
        sim.run()[0].duration().unwrap()
    };
    assert!(latency(2) > latency(4));
    assert!(latency(4) > latency(16));
}

#[test]
fn queue_latency_delays_completion() {
    let graph = two_stage_graph(1, 1);
    let spec = JobSpec::uniform(graph, Constant(10.0), Constant(3.0), 0.0);
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(2), 1);
    sim.add_job(spec, Box::new(FixedAllocation(2)));
    let r = sim.run();
    // Two serial tasks, each 3 s queue + 10 s run.
    assert_eq!(r[0].completed_at, Some(SimTime::from_secs(26)));
}

#[test]
fn task_failures_cause_retries_and_waste() {
    let graph = two_stage_graph(20, 2);
    let spec = JobSpec::uniform(graph, Constant(5.0), Constant(0.0), 0.3);
    let mut sim = ClusterSim::new(ClusterConfig::dedicated_with_failures(4), 3);
    sim.add_job(spec, Box::new(FixedAllocation(4)));
    let r = sim.run();
    assert!(r[0].completed_at.is_some());
    assert!(r[0].wasted_secs > 0.0, "failures should waste work");
    assert_eq!(r[0].work_done_secs, 110.0);
    // The profile should have recorded failed attempts.
    assert!(r[0].profile.task_failure_prob > 0.05);
}

#[test]
fn spare_capacity_accelerates_beyond_guarantee() {
    let mut cfg = ClusterConfig::production();
    cfg.total_tokens = 100;
    cfg.max_guarantee = 10;
    cfg.background = BackgroundConfig::none();
    cfg.failures = FailureConfig::none();
    // All 100 tokens idle; guarantee only 2 of them.
    let mut sim = ClusterSim::new(cfg, 5);
    sim.add_job(spec(40, 2, 10.0), Box::new(FixedAllocation(2)));
    let r = sim.run();
    // With only 2 guaranteed tokens this would take 40/2*10 + 10 = 210 s;
    // spare tokens (even at 1.25x slowdown) must beat that easily.
    let d = r[0].duration().unwrap();
    assert!(d < SimDuration::from_secs(60), "took {d:?}");
    assert!(r[0].spare_task_count > 0);
}

#[test]
fn disabled_spare_keeps_job_at_guarantee() {
    let mut cfg = ClusterConfig::dedicated(100);
    cfg.max_guarantee = 100;
    cfg.spare_enabled = false;
    let mut sim = ClusterSim::new(cfg, 5);
    sim.add_job(spec(40, 2, 10.0), Box::new(FixedAllocation(2)));
    let r = sim.run();
    assert_eq!(r[0].spare_task_count, 0);
    assert_eq!(
        r[0].duration().unwrap(),
        SimDuration::from_secs(40 / 2 * 10 + 10)
    );
}

#[test]
fn background_load_squeezes_spare_and_evicts() {
    let mut cfg = ClusterConfig::production();
    cfg.total_tokens = 50;
    cfg.max_guarantee = 4;
    cfg.background.mean_util = 0.9;
    cfg.background.volatility = 0.1;
    cfg.background.overload_rate_per_hour = 20.0;
    cfg.background.overload_duration_mins = 3.0;
    cfg.failures = FailureConfig::none();
    let mut sim = ClusterSim::new(cfg, 11);
    sim.add_job(spec(60, 2, 20.0), Box::new(FixedAllocation(4)));
    let r = sim.run();
    assert!(r[0].completed_at.is_some());
    // Evictions show up as wasted seconds without task failures.
    assert!(r[0].wasted_secs > 0.0, "expected spare evictions");
}

#[test]
fn machine_failures_do_not_wedge_the_job() {
    let mut cfg = ClusterConfig::dedicated(8);
    cfg.failures = FailureConfig {
        task_failure_prob: Some(0.0),
        machine_failure_rate_per_hour: 120.0, // Very frequent.
        tasks_per_machine: 3,
        data_loss_prob: 1.0,
        rack_failure_rate_per_hour: 0.0,
        replica_loss_prob: 0.0,
    };
    let mut sim = ClusterSim::new(cfg, 13);
    sim.add_job(spec(30, 5, 8.0), Box::new(FixedAllocation(8)));
    let r = sim.run();
    assert!(r[0].completed_at.is_some(), "job must still finish");
    assert!(r[0].wasted_secs > 0.0);
    assert_eq!(r[0].work_done_secs, 30.0 * 8.0 + 5.0 * 8.0);
}

#[test]
fn determinism_same_seed_same_result() {
    let run = |seed| {
        let mut cfg = ClusterConfig::production();
        cfg.total_tokens = 60;
        cfg.max_guarantee = 10;
        let mut sim = ClusterSim::new(cfg, seed);
        sim.add_job(spec(30, 3, 12.0), Box::new(FixedAllocation(6)));
        sim.run()[0].completed_at
    };
    assert_eq!(run(42), run(42));
    assert!(run(42).is_some());
}

#[test]
fn different_seeds_vary_under_noise() {
    let run = |seed| {
        let mut cfg = ClusterConfig::production();
        cfg.total_tokens = 60;
        cfg.max_guarantee = 10;
        let mut sim = ClusterSim::new(cfg, seed);
        sim.add_job(spec(30, 3, 12.0), Box::new(FixedAllocation(6)));
        sim.run()[0].completed_at.unwrap()
    };
    let outcomes: std::collections::HashSet<_> = (0..5).map(run).collect();
    assert!(outcomes.len() > 1, "noise should differentiate seeds");
}

#[test]
fn multiple_jobs_share_the_cluster() {
    let mut cfg = ClusterConfig::dedicated(8);
    cfg.max_guarantee = 4;
    let mut sim = ClusterSim::new(cfg, 7);
    sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
    sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
    let r = sim.run();
    assert!(r[0].completed_at.is_some());
    assert!(r[1].completed_at.is_some());
    assert_eq!(r[0].completed_at, r[1].completed_at);
}

#[test]
fn delayed_submission_starts_later() {
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
    sim.add_job_at(
        spec(4, 1, 10.0),
        Box::new(FixedAllocation(4)),
        SimTime::from_mins(5),
    );
    let r = sim.run();
    assert_eq!(r[0].started_at, SimTime::from_mins(5));
    assert_eq!(
        r[0].completed_at,
        Some(SimTime::from_mins(5) + SimDuration::from_secs(20))
    );
    assert_eq!(r[0].duration(), Some(SimDuration::from_secs(20)));
}

#[test]
fn horizon_reports_unfinished_jobs() {
    let mut cfg = ClusterConfig::dedicated(1);
    cfg.max_sim_time = SimTime::from_secs(15);
    let mut sim = ClusterSim::new(cfg, 1);
    sim.add_job(spec(100, 1, 10.0), Box::new(FixedAllocation(1)));
    let r = sim.run();
    assert_eq!(r[0].completed_at, None);
    assert!(r[0].work_done_secs < 100.0 * 10.0);
}

#[test]
fn oracle_allocation_matches_formula() {
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
    sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
    let r = sim.run();
    // T = 100 s of work; d = 50 s -> ceil(2) = 2 tokens.
    assert_eq!(r[0].oracle_allocation(SimDuration::from_secs(50)), 2);
    assert_eq!(r[0].oracle_allocation(SimDuration::from_secs(30)), 4);
}

#[test]
fn run_single_returns_the_only_job() {
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
    sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
    let r = sim.run_single();
    assert_eq!(r.completed_at, Some(SimTime::from_secs(30)));
    assert_eq!(r.name, "test-job");
}

#[test]
#[should_panic(expected = "run_single on a simulation with 2 jobs")]
fn run_single_rejects_multi_job_sims() {
    let mut cfg = ClusterConfig::dedicated(8);
    cfg.max_guarantee = 4;
    let mut sim = ClusterSim::new(cfg, 7);
    sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
    sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
    let _ = sim.run_single();
}

#[test]
fn run_profile_is_usable_as_training_data() {
    let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
    sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
    let r = sim.run();
    let p = &r[0].profile;
    assert_eq!(p.stages.len(), 2);
    assert_eq!(p.stages[0].runtimes.len(), 8);
    assert_eq!(p.total_work(), 100.0);
    assert!(p.duration >= 29.0 && p.duration <= 31.0);
    // Stage windows: map [0, 20], reduce [20, 30] relative to 30 s.
    assert!(p.stages[1].rel_start > 0.6 && p.stages[1].rel_start < 0.7);
}

#[test]
fn trace_records_control_ticks() {
    let mut cfg = ClusterConfig::dedicated(4);
    cfg.control_period = SimDuration::from_secs(10);
    let mut sim = ClusterSim::new(cfg, 1);
    sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
    let r = sim.run();
    // Ticks at 0, 10, 20 (+ final sample at 30).
    assert!(r[0].trace.guarantee.len() >= 3);
    assert_eq!(r[0].trace.guarantee.points()[0].1, 4.0);
    assert_eq!(r[0].trace.last_guarantee(), 4.0);
}

#[test]
fn disabling_recording_keeps_the_run_identical_but_lean() {
    let run = |record: bool| {
        let mut cfg = ClusterConfig::production();
        cfg.total_tokens = 60;
        cfg.max_guarantee = 10;
        let mut sim = ClusterSim::new(cfg, 21);
        sim.set_record_trace(record);
        sim.set_record_profile(record);
        sim.add_job(spec(30, 3, 12.0), Box::new(FixedAllocation(6)));
        sim.run_single()
    };
    let full = run(true);
    let lean = run(false);
    // Recording is pure observation: the simulated run is unchanged.
    assert_eq!(full.completed_at, lean.completed_at);
    assert_eq!(full.work_done_secs, lean.work_done_secs);
    assert_eq!(full.wasted_secs, lean.wasted_secs);
    // But the lean run carries no trace or per-task samples.
    assert!(!full.trace.guarantee.is_empty());
    assert_eq!(lean.trace.guarantee.len(), 0);
    assert!(!full.profile.stages[0].runtimes.is_empty());
    // The lean profile is structurally empty: its builder was the
    // allocation-free empty one, so not even stage skeletons exist.
    assert!(lean.profile.stages.is_empty());
}

#[test]
fn guarantee_is_capped_by_config() {
    let mut cfg = ClusterConfig::dedicated(4);
    cfg.max_guarantee = 3;
    let mut sim = ClusterSim::new(cfg, 1);
    sim.add_job(spec(9, 1, 10.0), Box::new(FixedAllocation(100)));
    let r = sim.run();
    assert_eq!(r[0].trace.max_guarantee(), 3.0);
    // 9 tasks at 3 tokens = 3 waves of 10 s, plus 10 s reduce.
    assert_eq!(r[0].completed_at, Some(SimTime::from_secs(40)));
}
