//! Property-based tests of the cluster simulator's conservation and
//! robustness invariants under arbitrary job shapes and noise.

use std::sync::Arc;

use jockey_cluster::{
    BackgroundConfig, ClusterConfig, ClusterSim, FailureConfig, FixedAllocation, JobSpec,
};
use jockey_jobgraph::graph::{EdgeKind, JobGraph, JobGraphBuilder};
use jockey_simrt::dist::{Constant, LogNormal};
use proptest::prelude::*;

/// Random fork/chain DAGs with consistent one-to-one task counts.
fn arb_graph() -> impl Strategy<Value = Arc<JobGraph>> {
    (
        proptest::collection::vec((1_usize..4, 1_u32..8), 1..5),
        any::<u64>(),
    )
        .prop_map(|(segments, link_seed)| {
            let mut b = JobGraphBuilder::new("cluster-prop");
            let mut last = Vec::new();
            for (si, &(len, tasks)) in segments.iter().enumerate() {
                let mut prev = None;
                for k in 0..len {
                    let s = b.stage(format!("s{si}_{k}"), tasks);
                    if let Some(p) = prev {
                        b.edge(p, s, EdgeKind::OneToOne);
                    }
                    prev = Some(s);
                }
                last.push(prev.expect("non-empty segment"));
            }
            for si in 1..last.len() {
                let from = (link_seed as usize + si) % si;
                // First stage of segment si.
                let first_idx: usize = segments[..si].iter().map(|&(l, _)| l).sum();
                b.edge(
                    last[from],
                    jockey_jobgraph::StageId(first_idx),
                    EdgeKind::AllToAll,
                );
            }
            Arc::new(b.build().expect("valid by construction"))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With failures enabled the job still finishes, and the work
    /// accounting identity holds: completed work equals the failure-free
    /// total, with waste strictly accounting for the extra attempts.
    #[test]
    fn failure_runs_finish_and_account_work(
        graph in arb_graph(),
        fail_prob in 0.0_f64..0.4,
        seed in any::<u64>(),
    ) {
        let spec = JobSpec::uniform(graph.clone(), Constant(4.0), Constant(0.2), fail_prob);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated_with_failures(6), seed);
        sim.add_job(spec, Box::new(FixedAllocation(6)));
        let r = sim.run_single();
        prop_assert!(r.completed_at.is_some(), "wedged with fail_prob {}", fail_prob);
        let clean_work = graph.total_tasks() as f64 * 4.0;
        prop_assert!((r.work_done_secs - clean_work).abs() < 1e-6);
        if fail_prob == 0.0 {
            prop_assert_eq!(r.wasted_secs, 0.0);
        }
    }

    /// Under any background-noise setting the job completes, and the
    /// eviction machinery never loses completed work permanently.
    #[test]
    fn noisy_cluster_never_wedges(
        graph in arb_graph(),
        mean_util in 0.3_f64..0.99,
        volatility in 0.0_f64..0.2,
        seed in any::<u64>(),
    ) {
        let spec = JobSpec::uniform(
            graph.clone(),
            LogNormal::from_median_p90(3.0, 8.0),
            Constant(0.3),
            0.02,
        );
        let cfg = ClusterConfig {
            placement: None,
            topology: None,
            speculation: None,
            total_tokens: 40,
            max_guarantee: 8,
            spare_enabled: true,
            spare_slowdown: 1.3,
            control_period: jockey_simrt::time::SimDuration::from_secs(30),
            background: BackgroundConfig {
                enabled: true,
                mean_util,
                volatility,
                reversion: 0.1,
                overload_rate_per_hour: 4.0,
                overload_duration_mins: 2.0,
                overload_util: 1.0,
                tick: jockey_simrt::time::SimDuration::from_secs(15),
                slowdown_knee: 0.8,
                slowdown_slope: 2.0,
                diurnal_amplitude: 0.0,
                diurnal_period: jockey_simrt::time::SimDuration::from_mins(24 * 60),
                diurnal_phase: 0.0,
            },
            failures: FailureConfig {
                task_failure_prob: None,
                machine_failure_rate_per_hour: 6.0,
                tasks_per_machine: 2,
                data_loss_prob: 0.5,
                rack_failure_rate_per_hour: 0.0,
                replica_loss_prob: 0.0,
            },
            max_sim_time: jockey_simrt::time::SimTime::from_mins(24 * 60),
            queue_backend: Default::default(),
        };
        let mut sim = ClusterSim::new(cfg, seed);
        sim.add_job(spec, Box::new(FixedAllocation(8)));
        let r = sim.run_single();
        prop_assert!(r.completed_at.is_some(), "job wedged under noise");
        // All tasks completed exactly once at the end.
        let total_attempt_runtime: f64 = r
            .profile
            .stages
            .iter()
            .map(|s| s.runtimes.iter().sum::<f64>())
            .sum();
        prop_assert!(total_attempt_runtime + 1e-6 >= r.work_done_secs);
    }

    /// Guarantee capping: the applied guarantee never exceeds the
    /// configured maximum, whatever the controller requests.
    #[test]
    fn guarantee_is_always_capped(
        graph in arb_graph(),
        request in 1_u32..1000,
        cap in 1_u32..16,
    ) {
        let spec = JobSpec::uniform(graph, Constant(2.0), Constant(0.0), 0.0);
        let mut cfg = ClusterConfig::dedicated(16);
        cfg.max_guarantee = cap;
        let mut sim = ClusterSim::new(cfg, 1);
        sim.add_job(spec, Box::new(FixedAllocation(request)));
        let r = sim.run_single();
        prop_assert!(r.trace.max_guarantee() <= f64::from(cap));
        prop_assert!(r.completed_at.is_some());
    }

    /// Determinism under full noise: identical seeds give identical
    /// traces.
    #[test]
    fn full_noise_determinism(graph in arb_graph(), seed in any::<u64>()) {
        let run = || {
            let spec = JobSpec::uniform(
                graph.clone(),
                LogNormal::from_median_p90(2.0, 6.0),
                Constant(0.1),
                0.05,
            );
            let mut cfg = ClusterConfig::production();
            cfg.total_tokens = 60;
            cfg.max_guarantee = 10;
            let mut sim = ClusterSim::new(cfg, seed);
            sim.add_job(spec, Box::new(FixedAllocation(6)));
            let r = sim.run_single();
            (r.completed_at, r.work_done_secs, r.wasted_secs, r.spare_task_count)
        };
        prop_assert_eq!(run(), run());
    }
}
