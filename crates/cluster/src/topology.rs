//! Physical cluster topology: racks of machines with heterogeneous
//! capacity classes, replicated input placement, and pluggable
//! placement policies.
//!
//! The legacy abstraction ([`crate::placement::PlacementConfig`]) draws
//! a uniform machine id and flips a locality coin per task. This module
//! replaces the coin with geometry: a [`TopologyConfig`] declares racks
//! × machine classes (the Google-trace 0.25/0.5/1.0 capacity mix),
//! every stage's input is cut into `data_splits` splits with
//! `data_copies` replicas placed on concrete machines, and a
//! [`PlacementPolicy`] decides where each task runs. A task's runtime
//! multiplier then *derives* from where it landed: the inverse of its
//! machine's capacity, times a locality factor (1 on a replica holder,
//! `rack_penalty` in the same rack as one, `remote_penalty` otherwise).
//!
//! Topology is opt-in via `ClusterConfig::topology`; when `None` the
//! engine's event and RNG streams are bit-identical to the flat model.

use rand::rngs::StdRng;
use rand::Rng;

/// One machine class in the heterogeneous mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineClass {
    /// Relative capacity (1.0 = full-speed). A task placed on this
    /// class runs `1 / capacity` times its nominal duration.
    pub capacity: f64,
    /// Machines of this class in every rack.
    pub count_per_rack: u32,
}

/// Declarative cluster-topology configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyConfig {
    /// Number of racks; a whole rack can fail as one correlated event.
    pub racks: u32,
    /// Machine-class mix replicated in every rack.
    pub classes: Vec<MachineClass>,
    /// Concurrent tasks one machine can host (placement-policy hint;
    /// also bounds total tokens in `ClusterConfig::validate`).
    pub slots_per_machine: u32,
    /// Input splits per stage: task `i` of a stage reads split
    /// `i % data_splits`.
    pub data_splits: u32,
    /// Replicas placed per split (on distinct machines).
    pub data_copies: u32,
    /// Runtime multiplier for a task scheduled off its replicas but in
    /// the same rack as one (`>= 1`).
    pub rack_penalty: f64,
    /// Runtime multiplier for a task with no replica in its rack
    /// (`>= rack_penalty`).
    pub remote_penalty: f64,
}

impl TopologyConfig {
    /// The Google-trace mix (SNIPPETS.md §2): per rack of ten, five
    /// full machines, three at half capacity, two at a quarter.
    pub fn google_mix(racks: u32) -> Self {
        TopologyConfig {
            racks,
            classes: vec![
                MachineClass {
                    capacity: 1.0,
                    count_per_rack: 5,
                },
                MachineClass {
                    capacity: 0.5,
                    count_per_rack: 3,
                },
                MachineClass {
                    capacity: 0.25,
                    count_per_rack: 2,
                },
            ],
            slots_per_machine: 4,
            data_splits: 8,
            data_copies: 3,
            rack_penalty: 1.1,
            remote_penalty: 1.3,
        }
    }

    /// A homogeneous topology: `racks` racks of `per_rack` full-speed
    /// machines.
    pub fn uniform(racks: u32, per_rack: u32) -> Self {
        TopologyConfig {
            racks,
            classes: vec![MachineClass {
                capacity: 1.0,
                count_per_rack: per_rack,
            }],
            slots_per_machine: 4,
            data_splits: 8,
            data_copies: 3,
            rack_penalty: 1.1,
            remote_penalty: 1.3,
        }
    }

    /// Machines in one rack.
    pub fn machines_per_rack(&self) -> u32 {
        self.classes.iter().map(|c| c.count_per_rack).sum()
    }

    /// Machines in the whole topology.
    pub fn machine_count(&self) -> u32 {
        self.racks * self.machines_per_rack()
    }

    /// Checks internal consistency (cross-field checks against failure
    /// and token configuration live in `ClusterConfig::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if self.racks == 0 {
            return Err("racks must be >= 1".into());
        }
        if self.classes.is_empty() {
            return Err("classes must be non-empty".into());
        }
        for (i, c) in self.classes.iter().enumerate() {
            if !c.capacity.is_finite() || c.capacity <= 0.0 {
                return Err(format!("class {i} capacity must be finite and > 0"));
            }
        }
        if self.machines_per_rack() == 0 {
            return Err("each rack must hold at least one machine".into());
        }
        if self.slots_per_machine == 0 {
            return Err("slots_per_machine must be >= 1".into());
        }
        if self.data_splits == 0 {
            return Err("data_splits must be >= 1".into());
        }
        if self.data_copies == 0 {
            return Err("data_copies must be >= 1".into());
        }
        if self.data_copies > self.machine_count() {
            return Err(format!(
                "data_copies ({}) exceeds machine count ({})",
                self.data_copies,
                self.machine_count()
            ));
        }
        for (name, p) in [
            ("rack_penalty", self.rack_penalty),
            ("remote_penalty", self.remote_penalty),
        ] {
            if !p.is_finite() || p < 1.0 {
                return Err(format!("{name} must be finite and >= 1"));
            }
        }
        if self.remote_penalty < self.rack_penalty {
            return Err("remote_penalty must be >= rack_penalty".into());
        }
        Ok(())
    }
}

/// A realized topology: the flat machine table the engine indexes by
/// machine id. Layout is rack-major — rack `r` owns the contiguous id
/// range `[r * machines_per_rack, (r + 1) * machines_per_rack)` — so
/// rack membership is arithmetic, not a lookup.
#[derive(Clone, Debug)]
pub struct ClusterTopology {
    cfg: TopologyConfig,
    /// Per-machine capacity, rack-major, classes in declaration order.
    capacity: Vec<f64>,
}

impl ClusterTopology {
    /// Realizes a validated config into the flat machine table.
    pub fn build(cfg: &TopologyConfig) -> Self {
        let mut capacity = Vec::with_capacity(cfg.machine_count() as usize);
        for _rack in 0..cfg.racks {
            for class in &cfg.classes {
                for _ in 0..class.count_per_rack {
                    capacity.push(class.capacity);
                }
            }
        }
        ClusterTopology {
            cfg: cfg.clone(),
            capacity,
        }
    }

    /// The configuration this topology was built from.
    pub fn config(&self) -> &TopologyConfig {
        &self.cfg
    }

    /// Total machines.
    pub fn machine_count(&self) -> u32 {
        self.capacity.len() as u32
    }

    /// Total racks.
    pub fn rack_count(&self) -> u32 {
        self.cfg.racks
    }

    /// The rack hosting `machine`.
    pub fn rack_of(&self, machine: u32) -> u32 {
        machine / self.cfg.machines_per_rack()
    }

    /// Machine ids in `rack` (rack-major layout: a contiguous range).
    pub fn machines_in_rack(&self, rack: u32) -> std::ops::Range<u32> {
        let per = self.cfg.machines_per_rack();
        rack * per..(rack + 1) * per
    }

    /// Relative capacity of `machine`.
    pub fn capacity_of(&self, machine: u32) -> f64 {
        self.capacity[machine as usize]
    }

    /// Input splits per stage.
    pub fn data_splits(&self) -> u32 {
        self.cfg.data_splits
    }

    /// Picks `data_copies` distinct machines to host one split's
    /// replicas (uniform without replacement).
    pub fn assign_replicas(&self, rng: &mut StdRng) -> Vec<u32> {
        let copies = self.cfg.data_copies.min(self.machine_count()) as usize;
        let mut replicas: Vec<u32> = Vec::with_capacity(copies);
        while replicas.len() < copies {
            let m = rng.gen_range(0..self.machine_count());
            if !replicas.contains(&m) {
                replicas.push(m);
            }
        }
        replicas
    }

    /// The runtime multiplier for a task on `machine` whose input
    /// replicas live on `replicas`: machine-class slowdown (`1 /
    /// capacity`) times the locality factor (1 on a replica holder,
    /// `rack_penalty` beside one, `remote_penalty` otherwise).
    pub fn runtime_multiplier(&self, machine: u32, replicas: &[u32]) -> f64 {
        let class_slow = 1.0 / self.capacity_of(machine);
        let locality = if replicas.contains(&machine) {
            1.0
        } else if replicas
            .iter()
            .any(|&r| self.rack_of(r) == self.rack_of(machine))
        {
            self.cfg.rack_penalty
        } else {
            self.cfg.remote_penalty
        };
        class_slow * locality
    }
}

/// Decides which machine hosts a task, given the realized topology,
/// the current per-machine running-task counts, and the machines
/// holding the task's input replicas.
///
/// Implementations must be deterministic functions of their arguments
/// and the RNG stream: the engine hands each job's placement RNG
/// (`rng_queue`) to `place`, so a policy that draws is still
/// reproducible per seed.
pub trait PlacementPolicy: Send {
    /// Short name for traces and scenario listings.
    fn name(&self) -> &'static str {
        "custom"
    }

    /// Picks the machine for one task attempt.
    fn place(
        &self,
        topo: &ClusterTopology,
        load: &[u32],
        replicas: &[u32],
        rng: &mut StdRng,
    ) -> u32;
}

/// The default policy: run on the least-loaded replica holder with a
/// free slot; failing that, the least-loaded machine overall. Ties
/// break toward the lowest machine id, so placement consumes no RNG.
#[derive(Debug, Default)]
pub struct LocalityFirst;

impl PlacementPolicy for LocalityFirst {
    fn name(&self) -> &'static str {
        "locality-first"
    }

    fn place(
        &self,
        topo: &ClusterTopology,
        load: &[u32],
        replicas: &[u32],
        _rng: &mut StdRng,
    ) -> u32 {
        let slots = topo.config().slots_per_machine;
        let local = replicas
            .iter()
            .copied()
            .filter(|&m| load[m as usize] < slots)
            .min_by_key(|&m| (load[m as usize], m));
        if let Some(m) = local {
            return m;
        }
        (0..topo.machine_count())
            .min_by_key(|&m| (load[m as usize], m))
            .expect("topology has at least one machine")
    }
}

/// A replica-blind baseline: uniform over all machines. Useful in
/// scenarios isolating how much locality-aware placement buys.
#[derive(Debug, Default)]
pub struct RandomPlacement;

impl PlacementPolicy for RandomPlacement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place(
        &self,
        topo: &ClusterTopology,
        _load: &[u32],
        _replicas: &[u32],
        rng: &mut StdRng,
    ) -> u32 {
        rng.gen_range(0..topo.machine_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::rng::SeedDeriver;

    #[test]
    fn google_mix_realizes_rack_major_with_class_order() {
        let cfg = TopologyConfig::google_mix(3);
        cfg.validate().unwrap();
        let topo = ClusterTopology::build(&cfg);
        assert_eq!(topo.machine_count(), 30);
        assert_eq!(topo.rack_count(), 3);
        // Rack 1 owns ids 10..20; class order is 5x1.0, 3x0.5, 2x0.25.
        assert_eq!(topo.machines_in_rack(1), 10..20);
        assert_eq!(topo.capacity_of(10), 1.0);
        assert_eq!(topo.capacity_of(15), 0.5);
        assert_eq!(topo.capacity_of(18), 0.25);
        assert_eq!(topo.rack_of(9), 0);
        assert_eq!(topo.rack_of(10), 1);
    }

    #[test]
    fn validate_rejects_inconsistent_configs() {
        let mut cfg = TopologyConfig::google_mix(2);
        cfg.data_copies = 21;
        assert!(cfg.validate().unwrap_err().contains("data_copies"));
        let mut cfg = TopologyConfig::google_mix(2);
        cfg.remote_penalty = 1.05; // below rack_penalty 1.1
        assert!(cfg.validate().is_err());
        let mut cfg = TopologyConfig::google_mix(2);
        cfg.classes.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = TopologyConfig::google_mix(2);
        cfg.classes[0].capacity = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn runtime_multiplier_derives_from_geometry() {
        let topo = ClusterTopology::build(&TopologyConfig::google_mix(2));
        // Replica on machine 0 (rack 0, capacity 1.0).
        let replicas = [0u32];
        assert_eq!(topo.runtime_multiplier(0, &replicas), 1.0);
        // Same rack, full machine: rack penalty only.
        assert_eq!(topo.runtime_multiplier(1, &replicas), 1.1);
        // Same rack, quarter machine: class slowdown x rack penalty.
        assert!((topo.runtime_multiplier(8, &replicas) - 4.0 * 1.1).abs() < 1e-12);
        // Other rack, full machine: remote penalty.
        assert_eq!(topo.runtime_multiplier(10, &replicas), 1.3);
    }

    #[test]
    fn assign_replicas_picks_distinct_machines() {
        let topo = ClusterTopology::build(&TopologyConfig::google_mix(2));
        let mut rng = SeedDeriver::new(7).rng("replicas");
        for _ in 0..100 {
            let r = topo.assign_replicas(&mut rng);
            assert_eq!(r.len(), 3);
            let mut sorted = r.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate replica in {r:?}");
            assert!(r.iter().all(|&m| m < 20));
        }
    }

    #[test]
    fn locality_first_prefers_free_replica_then_least_loaded() {
        let topo = ClusterTopology::build(&TopologyConfig::google_mix(1));
        let mut rng = SeedDeriver::new(8).rng("place");
        let mut load = vec![0u32; 10];
        let replicas = [4u32, 7];
        // Free replicas: least-loaded replica wins.
        load[4] = 2;
        load[7] = 1;
        assert_eq!(LocalityFirst.place(&topo, &load, &replicas, &mut rng), 7);
        // All replicas saturated (4 slots): falls back to the globally
        // least-loaded machine, lowest id on ties.
        load[4] = 4;
        load[7] = 4;
        load[0] = 1;
        assert_eq!(LocalityFirst.place(&topo, &load, &replicas, &mut rng), 1);
    }
}
