//! The controller interface between the cluster and Jockey.
//!
//! Every [`crate::sim::ClusterSim`] job carries a [`JobController`];
//! the simulator invokes it once per control period with a
//! [`JobStatus`] snapshot and applies the returned guarantee. Jockey's
//! adaptive policies (in `jockey-core`) implement this trait; the
//! static baselines live here.

use jockey_simrt::time::{SimDuration, SimTime};

/// A point-in-time snapshot of one job's execution state, handed to
/// its controller each control period (§4.3's control-loop inputs 1–2;
/// the utility function and model are the controller's own state).
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// Current simulation time.
    pub now: SimTime,
    /// Time since the job started (`t_r`).
    pub elapsed: SimDuration,
    /// Fraction of completed tasks per stage (`f_s`).
    pub stage_fraction: Vec<f64>,
    /// Completed-task counts per stage.
    pub stage_completed: Vec<u32>,
    /// Tasks currently running (any token class).
    pub running: u32,
    /// Tasks currently running on guaranteed tokens.
    pub running_guaranteed: u32,
    /// The job's current token guarantee.
    pub guarantee: u32,
    /// Aggregate execution seconds of completed tasks so far.
    pub work_done: f64,
    /// True once every task has completed.
    pub finished: bool,
}

impl JobStatus {
    /// Overall fraction of completed tasks, weighted by stage size —
    /// a convenience for quick checks (real indicators live in
    /// `jockey-core`).
    pub fn completed_fraction(&self, stage_tasks: &[u32]) -> f64 {
        let total: u64 = stage_tasks.iter().map(|&t| u64::from(t)).sum();
        if total == 0 {
            return 1.0;
        }
        let done: u64 = self.stage_completed.iter().map(|&c| u64::from(c)).sum();
        done as f64 / total as f64
    }
}

/// A controller's decision for one control period.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControlDecision {
    /// The token guarantee to apply until the next period.
    pub guarantee: u32,
    /// The raw (pre-hysteresis) allocation, recorded in traces to
    /// reproduce Fig. 6's blue line.
    pub raw: Option<f64>,
    /// The controller's current progress estimate in `[0, 1]`, if any.
    pub progress: Option<f64>,
    /// The controller's predicted completion time in seconds from job
    /// start, if any (Fig. 9's `T_t`).
    pub predicted_completion: Option<f64>,
}

impl ControlDecision {
    /// A bare decision with no diagnostics.
    pub fn simple(guarantee: u32) -> Self {
        ControlDecision {
            guarantee,
            raw: None,
            progress: None,
            predicted_completion: None,
        }
    }
}

/// Reacts to job progress by choosing a token guarantee.
pub trait JobController: Send {
    /// Called once per control period; returns the new guarantee.
    fn tick(&mut self, status: &JobStatus) -> ControlDecision;

    /// Called once when the job is admitted, to choose the initial
    /// guarantee. Defaults to an immediate [`JobController::tick`].
    fn initial(&mut self, status: &JobStatus) -> ControlDecision {
        self.tick(status)
    }

    /// Notifies the controller that the job's deadline changed at
    /// runtime (§5.2's deadline-change experiments). Default: ignore.
    fn deadline_changed(&mut self, _new_deadline: SimDuration) {}
}

/// Boxed controllers forward transparently, so middleware generic over
/// `C: JobController` (e.g. jockey-core's layered stacks) can wrap an
/// already-erased `Box<dyn JobController>` too.
impl JobController for Box<dyn JobController> {
    fn tick(&mut self, status: &JobStatus) -> ControlDecision {
        (**self).tick(status)
    }

    fn initial(&mut self, status: &JobStatus) -> ControlDecision {
        (**self).initial(status)
    }

    fn deadline_changed(&mut self, new_deadline: SimDuration) {
        (**self).deadline_changed(new_deadline);
    }
}

/// The static baseline: a constant guarantee, never adapted ("Jockey
/// w/o adaptation" uses this with a simulator-chosen constant; "max
/// allocation" uses it with the full token budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedAllocation(pub u32);

impl JobController for FixedAllocation {
    fn tick(&mut self, _status: &JobStatus) -> ControlDecision {
        ControlDecision::simple(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status() -> JobStatus {
        JobStatus {
            now: SimTime::from_mins(5),
            elapsed: SimDuration::from_mins(5),
            stage_fraction: vec![0.5, 0.0],
            stage_completed: vec![2, 0],
            running: 3,
            running_guaranteed: 2,
            guarantee: 10,
            work_done: 40.0,
            finished: false,
        }
    }

    #[test]
    fn fixed_allocation_is_constant() {
        let mut c = FixedAllocation(25);
        assert_eq!(c.tick(&status()).guarantee, 25);
        assert_eq!(c.initial(&status()).guarantee, 25);
        c.deadline_changed(SimDuration::from_mins(10)); // No-op.
        assert_eq!(c.tick(&status()).guarantee, 25);
    }

    #[test]
    fn completed_fraction_weights_by_tasks() {
        let s = status();
        // 2 of 4+2=6 tasks done.
        assert!((s.completed_fraction(&[4, 2]) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.completed_fraction(&[]), 1.0);
    }

    #[test]
    fn simple_decision_has_no_diagnostics() {
        let d = ControlDecision::simple(7);
        assert_eq!(d.guarantee, 7);
        assert!(d.raw.is_none() && d.progress.is_none() && d.predicted_completion.is_none());
    }
}
