//! Reusable per-run buffers for repeated simulation.
//!
//! Offline training (`C(p, a)` tables) and experiment sweeps run the
//! same job spec hundreds of times. A [`SimWorkspace`] lets those loops
//! rent each run's per-job state vectors — task states, attempt
//! counters, ready/running queues, status scratch — instead of
//! reallocating them per run: construct the sim with
//! [`ClusterSim::with_workspace`](crate::ClusterSim::with_workspace)
//! and pass the workspace back as the `reclaim` hook of
//! [`RunHooks`](crate::RunHooks) so the finished run returns its
//! buffers. Reuse is observably identical to fresh allocation — every
//! buffer is cleared and re-shaped for the incoming job graph.

use std::collections::VecDeque;

use jockey_jobgraph::graph::JobGraph;
use jockey_jobgraph::task::TaskId;
use jockey_simrt::event::EventQueue;

use crate::engine::{Event, RunningTask, TaskTable};

/// Per-job state vectors pooled between runs.
#[derive(Default)]
pub(crate) struct JobBuffers {
    /// Flat struct-of-arrays task state (see [`TaskTable`]).
    pub(crate) tasks: TaskTable,
    pub(crate) completed: Vec<u32>,
    pub(crate) floor: Vec<u32>,
    pub(crate) ready: VecDeque<TaskId>,
    pub(crate) running: Vec<RunningTask>,
    pub(crate) stage_fraction: Vec<f64>,
    pub(crate) stage_completed: Vec<u32>,
}

impl JobBuffers {
    /// Clears every buffer and re-shapes the task table for `graph`,
    /// leaving the exact state a fresh allocation would have.
    pub(crate) fn reset_for(&mut self, graph: &JobGraph) {
        let n = graph.num_stages();
        self.tasks.reset_for(graph);
        self.completed.clear();
        self.completed.resize(n, 0);
        self.floor.clear();
        self.floor.resize(n, 0);
        self.ready.clear();
        self.running.clear();
        self.stage_fraction.clear();
        self.stage_completed.clear();
    }
}

/// A pool of simulation buffers reused across runs.
///
/// See the module docs for the rent/reclaim protocol. A workspace may
/// be shared across jobs of different shapes — buffers are re-shaped on
/// rent — and grows to the largest per-run job count it has seen.
#[derive(Default)]
pub struct SimWorkspace {
    pub(crate) job_buffers: Vec<JobBuffers>,
    pub(crate) candidates: Vec<TaskId>,
    /// Pooled event queue: rented by the next run (after a reset that
    /// rewinds it to a fresh state) so repeated simulations keep the
    /// bucket ring and heap storage instead of reallocating per run.
    pub(crate) event_queue: Option<EventQueue<Event>>,
}

impl SimWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Number of pooled per-job buffer sets currently available.
    pub fn pooled_jobs(&self) -> usize {
        self.job_buffers.len()
    }

    pub(crate) fn give_back(&mut self, buffers: JobBuffers) {
        self.job_buffers.push(buffers);
    }

    pub(crate) fn reclaim_spares(&mut self, spares: Vec<JobBuffers>, candidates: Vec<TaskId>) {
        if self.job_buffers.is_empty() {
            self.job_buffers = spares;
        } else {
            self.job_buffers.extend(spares);
        }
        self.candidates = candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::controller::FixedAllocation;
    use crate::job::JobSpec;
    use crate::sim::{ClusterSim, RunHooks};
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Uniform;
    use std::sync::Arc;

    fn noisy_spec() -> JobSpec {
        let mut b = JobGraphBuilder::new("ws-job");
        let m = b.stage("map", 12);
        let mid = b.stage("mid", 12);
        let r = b.stage("reduce", 3);
        b.edge(m, mid, EdgeKind::OneToOne);
        b.edge(mid, r, EdgeKind::AllToAll);
        JobSpec::uniform(
            Arc::new(b.build().unwrap()),
            Uniform::new(4.0, 12.0),
            Uniform::new(0.0, 1.0),
            0.1,
        )
    }

    fn cluster_cfg() -> ClusterConfig {
        let mut cfg = ClusterConfig::production();
        cfg.total_tokens = 20;
        cfg.max_guarantee = 10;
        cfg
    }

    /// Satellite: a workspace reused across runs must match fresh-sim
    /// results event-for-event (identical journal dumps).
    #[test]
    fn workspace_reuse_matches_fresh_event_for_event() {
        let spec = Arc::new(noisy_spec());
        let mut ws = SimWorkspace::new();
        for seed in [1_u64, 2, 3] {
            let mut fresh = ClusterSim::new(cluster_cfg(), seed);
            let fresh_journal = fresh.attach_journal(1 << 14);
            fresh.add_job_shared(spec.clone(), Box::new(FixedAllocation(6)));
            let fresh_result = fresh.run_single();

            let mut reused = ClusterSim::with_workspace(cluster_cfg(), seed, &mut ws);
            let reused_journal = reused.attach_journal(1 << 14);
            reused.add_job_shared(spec.clone(), Box::new(FixedAllocation(6)));
            let reused_result = reused.run_single_hooked(RunHooks {
                sink: None,
                reclaim: Some(&mut ws),
            });

            assert_eq!(
                fresh_journal.dump(),
                reused_journal.dump(),
                "seed {seed}: reused workspace diverged from fresh sim"
            );
            assert_eq!(fresh_result.completed_at, reused_result.completed_at);
            assert_eq!(fresh_result.work_done_secs, reused_result.work_done_secs);
            assert_eq!(fresh_result.wasted_secs, reused_result.wasted_secs);
        }
    }

    #[test]
    fn buffers_flow_back_into_the_workspace() {
        let spec = Arc::new(noisy_spec());
        let mut ws = SimWorkspace::new();
        assert_eq!(ws.pooled_jobs(), 0);
        let mut sim = ClusterSim::with_workspace(cluster_cfg(), 9, &mut ws);
        sim.add_job_shared(spec, Box::new(FixedAllocation(6)));
        sim.run_hooked(RunHooks {
            sink: None,
            reclaim: Some(&mut ws),
        });
        assert_eq!(ws.pooled_jobs(), 1, "run must return its job buffers");
        // The reclaimed buffers carry grown capacity back to the pool.
        assert!(ws.job_buffers[0].tasks.total() > 0);
    }
}
