//! Cluster simulator configuration.

use std::fmt;

use jockey_simrt::event::QueueBackend;
use jockey_simrt::time::{SimDuration, SimTime};

/// Background-load process parameters (see [`crate::background`]).
///
/// Utilization is modelled as a mean-reverting (Ornstein–Uhlenbeck)
/// process sampled at a fixed tick, plus Poisson-arriving overload
/// events that pin utilization near saturation — standing in for the
/// paper's "higher load on the cluster at that time" episodes.
#[derive(Clone, Debug, PartialEq)]
pub struct BackgroundConfig {
    /// Whether any background load exists at all. `false` gives the
    /// dedicated-cluster mode used by the offline job simulator.
    pub enabled: bool,
    /// Long-run mean utilization of cluster tokens by other jobs
    /// (the paper's cluster averages 0.8).
    pub mean_util: f64,
    /// Standard deviation of the per-tick utilization innovation.
    pub volatility: f64,
    /// Mean-reversion rate per tick, in `(0, 1]`.
    pub reversion: f64,
    /// Overload events per hour (Poisson arrivals).
    pub overload_rate_per_hour: f64,
    /// Mean overload duration in minutes (exponential).
    pub overload_duration_mins: f64,
    /// Utilization during an overload event.
    pub overload_util: f64,
    /// How often the process is resampled.
    pub tick: SimDuration,
    /// Utilization above which task slowdown begins.
    pub slowdown_knee: f64,
    /// Slowdown multiplier gained per unit utilization above the knee:
    /// `slowdown = 1 + slope * max(0, util - knee)`.
    pub slowdown_slope: f64,
    /// Amplitude of the diurnal modulation applied to `mean_util`:
    /// the OU process reverts toward `mean_util + amplitude *
    /// sin(2π (t / period + phase))`, clamped to `[0, 1]`. Zero (the
    /// default) disables modulation and leaves the stationary process
    /// bit-identical.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal cycle (a simulated day, typically).
    pub diurnal_period: SimDuration,
    /// Phase offset in cycles, in `[0, 1)`: 0 starts the run at the
    /// cycle's zero crossing heading into the peak.
    pub diurnal_phase: f64,
}

impl BackgroundConfig {
    /// No background load: a dedicated cluster.
    pub fn none() -> Self {
        BackgroundConfig {
            enabled: false,
            mean_util: 0.0,
            volatility: 0.0,
            reversion: 1.0,
            overload_rate_per_hour: 0.0,
            overload_duration_mins: 0.0,
            overload_util: 0.0,
            tick: SimDuration::from_secs(30),
            slowdown_knee: 1.0,
            slowdown_slope: 0.0,
            diurnal_amplitude: 0.0,
            diurnal_period: SimDuration::from_mins(24 * 60),
            diurnal_phase: 0.0,
        }
    }

    /// A production-like shared cluster: ~80% mean utilization with
    /// bursts, occasional overloads, and load-dependent slowdown.
    pub fn production() -> Self {
        BackgroundConfig {
            enabled: true,
            mean_util: 0.80,
            volatility: 0.035,
            reversion: 0.10,
            overload_rate_per_hour: 0.35,
            overload_duration_mins: 10.0,
            overload_util: 1.0,
            tick: SimDuration::from_secs(30),
            slowdown_knee: 0.80,
            slowdown_slope: 2.5,
            diurnal_amplitude: 0.0,
            diurnal_period: SimDuration::from_mins(24 * 60),
            diurnal_phase: 0.0,
        }
    }
}

/// Failure-injection parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureConfig {
    /// If set, overrides each job's own task-failure probability.
    pub task_failure_prob: Option<f64>,
    /// Per-machine failure hazard, in failures per machine-hour. The
    /// slice's aggregate failure arrival rate is this value times its
    /// machine count ([`PlacementConfig::machines`](crate::placement::PlacementConfig)
    /// when placement is enabled, else `ceil(total_tokens /
    /// tasks_per_machine)`).
    pub machine_failure_rate_per_hour: f64,
    /// Running tasks killed by one machine failure (a machine hosts a
    /// handful of task slots).
    pub tasks_per_machine: u32,
    /// Probability that a machine failure also destroys the output of
    /// completed tasks in still-incomplete stages, forcing
    /// recomputation (the costly pre-barrier failure mode).
    pub data_loss_prob: f64,
    /// Per-rack correlated-failure hazard, in failures per rack-hour.
    /// A rack failure kills every task resident on the rack's machines
    /// at once. Requires a topology (racks are undefined in the flat
    /// model); zero disables rack failures entirely.
    pub rack_failure_rate_per_hour: f64,
    /// Probability that each input replica hosted on a failed machine
    /// is destroyed with it. A split that loses its last replica is
    /// re-replicated onto a fresh machine, but tasks reading it pay
    /// remote penalties until placement catches up. Requires a
    /// topology; zero disables replica loss.
    pub replica_loss_prob: f64,
}

impl FailureConfig {
    /// No failures at all.
    pub fn none() -> Self {
        FailureConfig {
            task_failure_prob: Some(0.0),
            machine_failure_rate_per_hour: 0.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.0,
            rack_failure_rate_per_hour: 0.0,
            replica_loss_prob: 0.0,
        }
    }

    /// Production-like failure rates: job-specific task failures, and a
    /// per-machine hazard sized so the default 1000-token / 500-machine
    /// production slice sees about one machine failure per four hours.
    pub fn production() -> Self {
        FailureConfig {
            task_failure_prob: None,
            machine_failure_rate_per_hour: 0.25 / 500.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.5,
            rack_failure_rate_per_hour: 0.0,
            replica_loss_prob: 0.0,
        }
    }
}

/// Speculative-execution (clone-on-slow) parameters.
///
/// When configured, the engine watches running attempts against a
/// per-stage expected-runtime estimate (derived from the stage's
/// runtime/queue `Dist` means) and launches a clone on an idle token
/// once an attempt exceeds `slowdown_threshold` times its expectation.
/// The first attempt to finish wins; all sibling attempts are killed
/// and their partial work is accounted as wasted. `None` (the default)
/// runs the legacy engine bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeculationConfig {
    /// An attempt is a straggler once its elapsed occupancy exceeds
    /// this multiple of the expected occupancy. Must be `> 1.0` — at
    /// `1.0` or below, half of all attempts would be cloned on sight.
    pub slowdown_threshold: f64,
    /// Maximum concurrent clone attempts per job. Clones occupy idle
    /// tokens outside the job's guarantee, so the budget must fit in
    /// the spare headroom `total_tokens - max_guarantee`.
    pub clone_budget: u32,
    /// How often the watcher scans running attempts.
    pub watch_period: SimDuration,
}

impl SpeculationConfig {
    /// Clone-on-slow at `threshold` with `clone_budget` concurrent
    /// clones per job, watching every 15 simulated seconds.
    pub fn clone_on_slow(threshold: f64, clone_budget: u32) -> Self {
        SpeculationConfig {
            slowdown_threshold: threshold,
            clone_budget,
            watch_period: SimDuration::from_secs(15),
        }
    }
}

/// Full simulator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Optional machine-level placement and locality model
    /// (disabled = abstract token pool). Superseded by `topology`;
    /// the two are mutually exclusive.
    pub placement: Option<crate::placement::PlacementConfig>,
    /// Optional physical topology: racks × heterogeneous machine
    /// classes with replica placement (see [`crate::topology`]). When
    /// `None` the simulator runs the legacy flat model bit-identically.
    pub topology: Option<crate::topology::TopologyConfig>,
    /// Total tokens in the simulated cluster slice (guaranteed +
    /// spare + background).
    pub total_tokens: u32,
    /// Upper bound on any single job's guarantee (the paper's
    /// experiments cap at 100 tokens).
    pub max_guarantee: u32,
    /// Whether unused capacity is redistributed as spare tokens.
    pub spare_enabled: bool,
    /// Optional straggler mitigation: clone-on-slow speculative
    /// execution with kill-on-first-finish (see [`SpeculationConfig`]).
    /// When `None` the simulator runs the legacy model bit-identically.
    pub speculation: Option<SpeculationConfig>,
    /// Runtime multiplier for spare-class tasks ("pushed into the
    /// background during periods of contention").
    pub spare_slowdown: f64,
    /// How often each job's controller is invoked.
    pub control_period: SimDuration,
    /// Background-load model.
    pub background: BackgroundConfig,
    /// Failure injection.
    pub failures: FailureConfig,
    /// Hard stop: jobs not finished by then are reported incomplete.
    pub max_sim_time: SimTime,
    /// Event-queue data structure. All backends produce identical
    /// event streams. The adaptive default starts on the heap (fastest
    /// at sparse occupancy) and promotes itself to the calendar ladder
    /// at dense occupancy, so neither regime pays a tax; the explicit
    /// backends remain for the benches to A/B against.
    pub queue_backend: QueueBackend,
}

impl ClusterConfig {
    /// A dedicated, failure-free cluster of exactly `tokens` tokens
    /// with no spare capacity — the configuration of Jockey's offline
    /// job simulator at allocation `a = tokens`.
    pub fn dedicated(tokens: u32) -> Self {
        ClusterConfig {
            placement: None,
            topology: None,
            total_tokens: tokens,
            max_guarantee: tokens,
            spare_enabled: false,
            speculation: None,
            spare_slowdown: 1.25,
            control_period: SimDuration::from_secs(30),
            background: BackgroundConfig::none(),
            failures: FailureConfig::none(),
            max_sim_time: SimTime::from_mins(24 * 60),
            queue_backend: QueueBackend::Adaptive,
        }
    }

    /// Like [`ClusterConfig::dedicated`] but with the job's own failure
    /// probabilities active, matching §4.1's simulator ("restarting
    /// failed tasks").
    pub fn dedicated_with_failures(tokens: u32) -> Self {
        let mut c = Self::dedicated(tokens);
        c.failures = FailureConfig {
            task_failure_prob: None,
            machine_failure_rate_per_hour: 0.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.0,
            rack_failure_rate_per_hour: 0.0,
            replica_loss_prob: 0.0,
        };
        c
    }

    /// A production-like shared cluster slice: 1000 tokens, 100-token
    /// per-job guarantee cap, spare capacity, background load and
    /// failures.
    pub fn production() -> Self {
        ClusterConfig {
            placement: None,
            topology: None,
            total_tokens: 1_000,
            max_guarantee: 100,
            spare_enabled: true,
            speculation: None,
            spare_slowdown: 1.25,
            control_period: SimDuration::from_mins(1),
            background: BackgroundConfig::production(),
            failures: FailureConfig::production(),
            max_sim_time: SimTime::from_mins(24 * 60),
            queue_backend: QueueBackend::Adaptive,
        }
    }

    /// Validates parameter ranges, returning the first problem found.
    /// NaN is rejected wherever a range is checked (range `contains`
    /// already excludes it; the open-ended bounds check it explicitly).
    pub fn validate(&self) -> Result<(), InvalidClusterConfig> {
        use InvalidClusterConfig as E;
        if self.total_tokens == 0 {
            return Err(E::TotalTokens);
        }
        if self.max_guarantee == 0 || self.max_guarantee > self.total_tokens {
            return Err(E::MaxGuarantee(self.max_guarantee));
        }
        if !self.spare_slowdown.is_finite() || self.spare_slowdown < 1.0 {
            return Err(E::SpareSlowdown(self.spare_slowdown));
        }
        if self.control_period.is_zero() {
            return Err(E::ControlPeriod);
        }
        if let Some(sp) = &self.speculation {
            if !sp.slowdown_threshold.is_finite() || sp.slowdown_threshold <= 1.0 {
                return Err(E::Speculation(
                    "slowdown_threshold must be finite and > 1.0 (NaN is rejected)",
                ));
            }
            if sp.clone_budget == 0 {
                return Err(E::Speculation("clone_budget must be >= 1"));
            }
            if sp.watch_period.is_zero() {
                return Err(E::Speculation("watch_period must be positive"));
            }
        }
        let b = &self.background;
        if b.enabled {
            if !(0.0..=1.0).contains(&b.mean_util) || !(0.0..=1.0).contains(&b.overload_util) {
                return Err(E::Background("utilizations must be in [0, 1]"));
            }
            if b.tick.is_zero() {
                return Err(E::Background("tick must be positive"));
            }
            if !(0.0..=1.0).contains(&b.reversion) {
                return Err(E::Background("reversion must be in [0, 1]"));
            }
            if !b.diurnal_amplitude.is_finite() || b.diurnal_amplitude < 0.0 {
                return Err(E::Background("diurnal_amplitude must be finite and >= 0"));
            }
            if b.diurnal_amplitude > 0.0 && b.diurnal_period.is_zero() {
                return Err(E::Background(
                    "diurnal_period must be positive when diurnal_amplitude > 0",
                ));
            }
            if !b.diurnal_phase.is_finite() {
                return Err(E::Background("diurnal_phase must be finite"));
            }
        }
        if let Some(p) = &self.placement {
            p.validate().map_err(E::Placement)?;
        }
        if let Some(t) = &self.topology {
            t.validate().map_err(E::Topology)?;
        }
        let f = &self.failures;
        if let Some(p) = f.task_failure_prob {
            if !(0.0..=1.0).contains(&p) {
                return Err(E::Failures("task_failure_prob must be in [0, 1]"));
            }
        }
        if !f.machine_failure_rate_per_hour.is_finite() || f.machine_failure_rate_per_hour < 0.0 {
            return Err(E::Failures(
                "machine_failure_rate_per_hour must be finite and >= 0",
            ));
        }
        if !(0.0..=1.0).contains(&f.data_loss_prob) {
            return Err(E::Failures("data_loss_prob must be in [0, 1]"));
        }
        if !f.rack_failure_rate_per_hour.is_finite() || f.rack_failure_rate_per_hour < 0.0 {
            return Err(E::Failures(
                "rack_failure_rate_per_hour must be finite and >= 0",
            ));
        }
        if !(0.0..=1.0).contains(&f.replica_loss_prob) {
            return Err(E::Failures("replica_loss_prob must be in [0, 1]"));
        }
        self.validate_cross_field()
    }

    /// Checks that independently-valid sections agree with each other.
    /// The failure model's machine accounting, the placement/topology
    /// machine counts, and the token pool must describe the *same*
    /// cluster — historically each was validated alone and could
    /// silently contradict the others.
    fn validate_cross_field(&self) -> Result<(), InvalidClusterConfig> {
        use InvalidClusterConfig as E;
        let f = &self.failures;
        if self.placement.is_some() && self.topology.is_some() {
            return Err(E::Inconsistent(
                "placement and topology are mutually exclusive; topology supersedes placement",
            ));
        }
        if self.topology.is_none() {
            if f.rack_failure_rate_per_hour > 0.0 {
                return Err(E::Inconsistent(
                    "rack_failure_rate_per_hour requires a topology (racks are undefined in the \
                     flat model)",
                ));
            }
            if f.replica_loss_prob > 0.0 {
                return Err(E::Inconsistent(
                    "replica_loss_prob requires a topology (there are no replicas in the flat \
                     model)",
                ));
            }
        }
        if f.machine_failure_rate_per_hour > 0.0 {
            // The machine count implied by the failure model must be
            // able to host the token pool, or the per-machine hazard
            // describes a different cluster than the one simulated.
            if let Some(t) = &self.topology {
                let capacity = u64::from(t.machine_count()) * u64::from(t.slots_per_machine);
                if capacity < u64::from(self.total_tokens) {
                    return Err(E::Inconsistent(
                        "topology machines x slots_per_machine cannot host total_tokens, so the \
                         per-machine failure hazard contradicts the simulated cluster",
                    ));
                }
            } else if let Some(p) = &self.placement {
                let capacity = u64::from(p.machines) * u64::from(f.tasks_per_machine);
                if capacity < u64::from(self.total_tokens) {
                    return Err(E::Inconsistent(
                        "placement machines x failures.tasks_per_machine cannot host \
                         total_tokens, so the per-machine failure hazard contradicts the \
                         simulated cluster",
                    ));
                }
            } else if f.tasks_per_machine == 0 {
                return Err(E::Inconsistent(
                    "tasks_per_machine must be >= 1 when machine failures are enabled without a \
                     placement or topology (it defines the implied machine count)",
                ));
            }
        }
        if let Some(sp) = &self.speculation {
            // Clones race outside the winner job's guarantee, so the
            // budget must fit in the headroom every job is promised to
            // leave idle — otherwise a fully-guaranteed job could never
            // clone and the admission ledger would price phantom tokens.
            if sp.clone_budget > self.total_tokens - self.max_guarantee {
                return Err(E::Inconsistent(
                    "speculation clone_budget exceeds the spare headroom total_tokens - \
                     max_guarantee, so clones could never be placed alongside a fully-guaranteed \
                     job",
                ));
            }
        }
        Ok(())
    }
}

/// Why a [`ClusterConfig`] was rejected by
/// [`ClusterConfig::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum InvalidClusterConfig {
    /// `total_tokens` must be positive.
    TotalTokens,
    /// `max_guarantee` must be in `[1, total_tokens]`.
    MaxGuarantee(u32),
    /// `spare_slowdown` must be a finite value `>= 1` (NaN is rejected
    /// explicitly).
    SpareSlowdown(f64),
    /// `control_period` must be positive.
    ControlPeriod,
    /// A background-load parameter is out of range.
    Background(&'static str),
    /// The placement model is invalid.
    Placement(String),
    /// The topology model is invalid.
    Topology(String),
    /// A failure-injection parameter is out of range.
    Failures(&'static str),
    /// A speculative-execution parameter is out of range.
    Speculation(&'static str),
    /// Two individually-valid sections contradict each other (e.g. the
    /// failure model's machine accounting vs. the topology's).
    Inconsistent(&'static str),
}

impl fmt::Display for InvalidClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidClusterConfig::TotalTokens => write!(f, "total_tokens must be positive"),
            InvalidClusterConfig::MaxGuarantee(v) => {
                write!(f, "max_guarantee must be in [1, total_tokens], got {v}")
            }
            InvalidClusterConfig::SpareSlowdown(v) => {
                write!(f, "spare_slowdown must be a finite value >= 1, got {v}")
            }
            InvalidClusterConfig::ControlPeriod => write!(f, "control_period must be positive"),
            InvalidClusterConfig::Background(what) => write!(f, "background {what}"),
            InvalidClusterConfig::Placement(what) => write!(f, "{what}"),
            InvalidClusterConfig::Topology(what) => write!(f, "topology {what}"),
            InvalidClusterConfig::Failures(what) => write!(f, "{what}"),
            InvalidClusterConfig::Speculation(what) => write!(f, "speculation {what}"),
            InvalidClusterConfig::Inconsistent(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for InvalidClusterConfig {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert_eq!(ClusterConfig::dedicated(10).validate(), Ok(()));
        assert_eq!(
            ClusterConfig::dedicated_with_failures(10).validate(),
            Ok(())
        );
        assert_eq!(ClusterConfig::production().validate(), Ok(()));
    }

    #[test]
    fn dedicated_has_no_noise() {
        let c = ClusterConfig::dedicated(42);
        assert!(!c.background.enabled);
        assert!(!c.spare_enabled);
        assert_eq!(c.failures.task_failure_prob, Some(0.0));
        assert_eq!(c.total_tokens, 42);
        assert_eq!(c.max_guarantee, 42);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = ClusterConfig::dedicated(10);
        c.total_tokens = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::dedicated(10);
        c.max_guarantee = 11;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::dedicated(10);
        c.spare_slowdown = 0.5;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::production();
        c.background.mean_util = 1.5;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::production();
        c.failures.data_loss_prob = -0.1;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::dedicated(10);
        c.failures.task_failure_prob = Some(2.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn cross_field_validation_catches_contradictions() {
        use crate::placement::PlacementConfig;
        use crate::topology::TopologyConfig;

        // Placement and topology are mutually exclusive.
        let mut c = ClusterConfig::dedicated(10);
        c.placement = Some(PlacementConfig::production());
        c.topology = Some(TopologyConfig::google_mix(4));
        assert_eq!(
            c.validate(),
            Err(InvalidClusterConfig::Inconsistent(
                "placement and topology are mutually exclusive; topology supersedes placement",
            ))
        );

        // Rack failures and replica loss are meaningless without racks.
        let mut c = ClusterConfig::dedicated(10);
        c.failures.rack_failure_rate_per_hour = 0.5;
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Inconsistent(_))
        ));
        let mut c = ClusterConfig::dedicated(10);
        c.failures.replica_loss_prob = 0.5;
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Inconsistent(_))
        ));

        // A topology too small to host the token pool contradicts the
        // per-machine failure hazard (it would fail machines that the
        // token accounting pretends don't exist).
        let mut c = ClusterConfig::dedicated(100);
        c.topology = Some(TopologyConfig::uniform(2, 4)); // 8 machines x 4 slots = 32
        c.failures.machine_failure_rate_per_hour = 0.01;
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Inconsistent(_))
        ));
        // Enough machines: the same config validates.
        c.topology = Some(TopologyConfig::uniform(5, 6)); // 30 x 4 = 120
        assert_eq!(c.validate(), Ok(()));

        // Same contradiction through the legacy placement model.
        let mut c = ClusterConfig::dedicated(100);
        c.placement = Some(PlacementConfig {
            machines: 10,
            locality_fraction: 0.9,
            remote_penalty: 1.3,
        });
        c.failures.machine_failure_rate_per_hour = 0.01;
        c.failures.tasks_per_machine = 2; // 10 x 2 = 20 < 100 tokens
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Inconsistent(_))
        ));
        c.failures.tasks_per_machine = 10; // 10 x 10 = 100
        assert_eq!(c.validate(), Ok(()));

        // tasks_per_machine = 0 with failures on and no machine model
        // would silently fall back to max(1) in machine_count().
        let mut c = ClusterConfig::dedicated(10);
        c.failures.machine_failure_rate_per_hour = 0.01;
        c.failures.tasks_per_machine = 0;
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Inconsistent(_))
        ));
    }

    #[test]
    fn speculation_parameters_validate() {
        // A sane clone-on-slow config passes.
        let mut c = ClusterConfig::production();
        c.speculation = Some(SpeculationConfig::clone_on_slow(2.0, 10));
        assert_eq!(c.validate(), Ok(()));

        // Threshold at or below 1.0 would clone the median attempt.
        let mut c = ClusterConfig::production();
        c.speculation = Some(SpeculationConfig::clone_on_slow(1.0, 10));
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Speculation(_))
        ));
        let mut c = ClusterConfig::production();
        c.speculation = Some(SpeculationConfig::clone_on_slow(f64::NAN, 10));
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Speculation(_))
        ));

        // A zero clone budget is speculation that can never speculate.
        let mut c = ClusterConfig::production();
        c.speculation = Some(SpeculationConfig::clone_on_slow(2.0, 0));
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Speculation(_))
        ));

        // The watcher must actually fire.
        let mut c = ClusterConfig::production();
        let mut sp = SpeculationConfig::clone_on_slow(2.0, 10);
        sp.watch_period = SimDuration::from_secs(0);
        c.speculation = Some(sp);
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Speculation(_))
        ));

        // Cross-field: the clone budget must fit in the headroom the
        // guarantee cap leaves idle (total_tokens - max_guarantee).
        let mut c = ClusterConfig::dedicated(10); // max_guarantee == total
        c.speculation = Some(SpeculationConfig::clone_on_slow(2.0, 1));
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::Inconsistent(_))
        ));
        c.max_guarantee = 8; // headroom 2 >= budget 1
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn diurnal_parameters_validate() {
        let mut c = ClusterConfig::production();
        c.background.diurnal_amplitude = 0.25;
        assert_eq!(c.validate(), Ok(()));
        c.background.diurnal_period = SimDuration::from_secs(0);
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::production();
        c.background.diurnal_amplitude = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::production();
        c.background.diurnal_phase = f64::INFINITY;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_nan() {
        // `spare_slowdown < 1.0` alone would let NaN through: every
        // comparison against NaN is false.
        let mut c = ClusterConfig::dedicated(10);
        c.spare_slowdown = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::SpareSlowdown(v)) if v.is_nan()
        ));

        let mut c = ClusterConfig::dedicated(10);
        c.failures.machine_failure_rate_per_hour = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::production();
        c.background.mean_util = f64::NAN;
        assert!(c.validate().is_err());
    }
}
