//! Cluster simulator configuration.

use std::fmt;

use jockey_simrt::event::QueueBackend;
use jockey_simrt::time::{SimDuration, SimTime};

/// Background-load process parameters (see [`crate::background`]).
///
/// Utilization is modelled as a mean-reverting (Ornstein–Uhlenbeck)
/// process sampled at a fixed tick, plus Poisson-arriving overload
/// events that pin utilization near saturation — standing in for the
/// paper's "higher load on the cluster at that time" episodes.
#[derive(Clone, Debug, PartialEq)]
pub struct BackgroundConfig {
    /// Whether any background load exists at all. `false` gives the
    /// dedicated-cluster mode used by the offline job simulator.
    pub enabled: bool,
    /// Long-run mean utilization of cluster tokens by other jobs
    /// (the paper's cluster averages 0.8).
    pub mean_util: f64,
    /// Standard deviation of the per-tick utilization innovation.
    pub volatility: f64,
    /// Mean-reversion rate per tick, in `(0, 1]`.
    pub reversion: f64,
    /// Overload events per hour (Poisson arrivals).
    pub overload_rate_per_hour: f64,
    /// Mean overload duration in minutes (exponential).
    pub overload_duration_mins: f64,
    /// Utilization during an overload event.
    pub overload_util: f64,
    /// How often the process is resampled.
    pub tick: SimDuration,
    /// Utilization above which task slowdown begins.
    pub slowdown_knee: f64,
    /// Slowdown multiplier gained per unit utilization above the knee:
    /// `slowdown = 1 + slope * max(0, util - knee)`.
    pub slowdown_slope: f64,
}

impl BackgroundConfig {
    /// No background load: a dedicated cluster.
    pub fn none() -> Self {
        BackgroundConfig {
            enabled: false,
            mean_util: 0.0,
            volatility: 0.0,
            reversion: 1.0,
            overload_rate_per_hour: 0.0,
            overload_duration_mins: 0.0,
            overload_util: 0.0,
            tick: SimDuration::from_secs(30),
            slowdown_knee: 1.0,
            slowdown_slope: 0.0,
        }
    }

    /// A production-like shared cluster: ~80% mean utilization with
    /// bursts, occasional overloads, and load-dependent slowdown.
    pub fn production() -> Self {
        BackgroundConfig {
            enabled: true,
            mean_util: 0.80,
            volatility: 0.035,
            reversion: 0.10,
            overload_rate_per_hour: 0.35,
            overload_duration_mins: 10.0,
            overload_util: 1.0,
            tick: SimDuration::from_secs(30),
            slowdown_knee: 0.80,
            slowdown_slope: 2.5,
        }
    }
}

/// Failure-injection parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureConfig {
    /// If set, overrides each job's own task-failure probability.
    pub task_failure_prob: Option<f64>,
    /// Per-machine failure hazard, in failures per machine-hour. The
    /// slice's aggregate failure arrival rate is this value times its
    /// machine count ([`PlacementConfig::machines`](crate::placement::PlacementConfig)
    /// when placement is enabled, else `ceil(total_tokens /
    /// tasks_per_machine)`).
    pub machine_failure_rate_per_hour: f64,
    /// Running tasks killed by one machine failure (a machine hosts a
    /// handful of task slots).
    pub tasks_per_machine: u32,
    /// Probability that a machine failure also destroys the output of
    /// completed tasks in still-incomplete stages, forcing
    /// recomputation (the costly pre-barrier failure mode).
    pub data_loss_prob: f64,
}

impl FailureConfig {
    /// No failures at all.
    pub fn none() -> Self {
        FailureConfig {
            task_failure_prob: Some(0.0),
            machine_failure_rate_per_hour: 0.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.0,
        }
    }

    /// Production-like failure rates: job-specific task failures, and a
    /// per-machine hazard sized so the default 1000-token / 500-machine
    /// production slice sees about one machine failure per four hours.
    pub fn production() -> Self {
        FailureConfig {
            task_failure_prob: None,
            machine_failure_rate_per_hour: 0.25 / 500.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.5,
        }
    }
}

/// Full simulator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Optional machine-level placement and locality model
    /// (disabled = abstract token pool).
    pub placement: Option<crate::placement::PlacementConfig>,
    /// Total tokens in the simulated cluster slice (guaranteed +
    /// spare + background).
    pub total_tokens: u32,
    /// Upper bound on any single job's guarantee (the paper's
    /// experiments cap at 100 tokens).
    pub max_guarantee: u32,
    /// Whether unused capacity is redistributed as spare tokens.
    pub spare_enabled: bool,
    /// Runtime multiplier for spare-class tasks ("pushed into the
    /// background during periods of contention").
    pub spare_slowdown: f64,
    /// How often each job's controller is invoked.
    pub control_period: SimDuration,
    /// Background-load model.
    pub background: BackgroundConfig,
    /// Failure injection.
    pub failures: FailureConfig,
    /// Hard stop: jobs not finished by then are reported incomplete.
    pub max_sim_time: SimTime,
    /// Event-queue data structure. Both backends produce identical
    /// event streams; the bucketed default is faster at production
    /// event density and `BinaryHeap` is the reference the benches
    /// A/B against.
    pub queue_backend: QueueBackend,
}

impl ClusterConfig {
    /// A dedicated, failure-free cluster of exactly `tokens` tokens
    /// with no spare capacity — the configuration of Jockey's offline
    /// job simulator at allocation `a = tokens`.
    pub fn dedicated(tokens: u32) -> Self {
        ClusterConfig {
            placement: None,
            total_tokens: tokens,
            max_guarantee: tokens,
            spare_enabled: false,
            spare_slowdown: 1.25,
            control_period: SimDuration::from_secs(30),
            background: BackgroundConfig::none(),
            failures: FailureConfig::none(),
            max_sim_time: SimTime::from_mins(24 * 60),
            queue_backend: QueueBackend::Bucketed,
        }
    }

    /// Like [`ClusterConfig::dedicated`] but with the job's own failure
    /// probabilities active, matching §4.1's simulator ("restarting
    /// failed tasks").
    pub fn dedicated_with_failures(tokens: u32) -> Self {
        let mut c = Self::dedicated(tokens);
        c.failures = FailureConfig {
            task_failure_prob: None,
            machine_failure_rate_per_hour: 0.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.0,
        };
        c
    }

    /// A production-like shared cluster slice: 1000 tokens, 100-token
    /// per-job guarantee cap, spare capacity, background load and
    /// failures.
    pub fn production() -> Self {
        ClusterConfig {
            placement: None,
            total_tokens: 1_000,
            max_guarantee: 100,
            spare_enabled: true,
            spare_slowdown: 1.25,
            control_period: SimDuration::from_mins(1),
            background: BackgroundConfig::production(),
            failures: FailureConfig::production(),
            max_sim_time: SimTime::from_mins(24 * 60),
            queue_backend: QueueBackend::Bucketed,
        }
    }

    /// Validates parameter ranges, returning the first problem found.
    /// NaN is rejected wherever a range is checked (range `contains`
    /// already excludes it; the open-ended bounds check it explicitly).
    pub fn validate(&self) -> Result<(), InvalidClusterConfig> {
        use InvalidClusterConfig as E;
        if self.total_tokens == 0 {
            return Err(E::TotalTokens);
        }
        if self.max_guarantee == 0 || self.max_guarantee > self.total_tokens {
            return Err(E::MaxGuarantee(self.max_guarantee));
        }
        if !self.spare_slowdown.is_finite() || self.spare_slowdown < 1.0 {
            return Err(E::SpareSlowdown(self.spare_slowdown));
        }
        if self.control_period.is_zero() {
            return Err(E::ControlPeriod);
        }
        let b = &self.background;
        if b.enabled {
            if !(0.0..=1.0).contains(&b.mean_util) || !(0.0..=1.0).contains(&b.overload_util) {
                return Err(E::Background("utilizations must be in [0, 1]"));
            }
            if b.tick.is_zero() {
                return Err(E::Background("tick must be positive"));
            }
            if !(0.0..=1.0).contains(&b.reversion) {
                return Err(E::Background("reversion must be in [0, 1]"));
            }
        }
        if let Some(p) = &self.placement {
            p.validate().map_err(E::Placement)?;
        }
        let f = &self.failures;
        if let Some(p) = f.task_failure_prob {
            if !(0.0..=1.0).contains(&p) {
                return Err(E::Failures("task_failure_prob must be in [0, 1]"));
            }
        }
        if !f.machine_failure_rate_per_hour.is_finite() || f.machine_failure_rate_per_hour < 0.0 {
            return Err(E::Failures(
                "machine_failure_rate_per_hour must be finite and >= 0",
            ));
        }
        if !(0.0..=1.0).contains(&f.data_loss_prob) {
            return Err(E::Failures("data_loss_prob must be in [0, 1]"));
        }
        Ok(())
    }
}

/// Why a [`ClusterConfig`] was rejected by
/// [`ClusterConfig::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum InvalidClusterConfig {
    /// `total_tokens` must be positive.
    TotalTokens,
    /// `max_guarantee` must be in `[1, total_tokens]`.
    MaxGuarantee(u32),
    /// `spare_slowdown` must be a finite value `>= 1` (NaN is rejected
    /// explicitly).
    SpareSlowdown(f64),
    /// `control_period` must be positive.
    ControlPeriod,
    /// A background-load parameter is out of range.
    Background(&'static str),
    /// The placement model is invalid.
    Placement(String),
    /// A failure-injection parameter is out of range.
    Failures(&'static str),
}

impl fmt::Display for InvalidClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidClusterConfig::TotalTokens => write!(f, "total_tokens must be positive"),
            InvalidClusterConfig::MaxGuarantee(v) => {
                write!(f, "max_guarantee must be in [1, total_tokens], got {v}")
            }
            InvalidClusterConfig::SpareSlowdown(v) => {
                write!(f, "spare_slowdown must be a finite value >= 1, got {v}")
            }
            InvalidClusterConfig::ControlPeriod => write!(f, "control_period must be positive"),
            InvalidClusterConfig::Background(what) => write!(f, "background {what}"),
            InvalidClusterConfig::Placement(what) => write!(f, "{what}"),
            InvalidClusterConfig::Failures(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for InvalidClusterConfig {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert_eq!(ClusterConfig::dedicated(10).validate(), Ok(()));
        assert_eq!(
            ClusterConfig::dedicated_with_failures(10).validate(),
            Ok(())
        );
        assert_eq!(ClusterConfig::production().validate(), Ok(()));
    }

    #[test]
    fn dedicated_has_no_noise() {
        let c = ClusterConfig::dedicated(42);
        assert!(!c.background.enabled);
        assert!(!c.spare_enabled);
        assert_eq!(c.failures.task_failure_prob, Some(0.0));
        assert_eq!(c.total_tokens, 42);
        assert_eq!(c.max_guarantee, 42);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = ClusterConfig::dedicated(10);
        c.total_tokens = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::dedicated(10);
        c.max_guarantee = 11;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::dedicated(10);
        c.spare_slowdown = 0.5;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::production();
        c.background.mean_util = 1.5;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::production();
        c.failures.data_loss_prob = -0.1;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::dedicated(10);
        c.failures.task_failure_prob = Some(2.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_nan() {
        // `spare_slowdown < 1.0` alone would let NaN through: every
        // comparison against NaN is false.
        let mut c = ClusterConfig::dedicated(10);
        c.spare_slowdown = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(InvalidClusterConfig::SpareSlowdown(v)) if v.is_nan()
        ));

        let mut c = ClusterConfig::dedicated(10);
        c.failures.machine_failure_rate_per_hour = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::production();
        c.background.mean_util = f64::NAN;
        assert!(c.validate().is_err());
    }
}
