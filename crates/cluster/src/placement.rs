//! Machine-level placement and data locality.
//!
//! §2.1: "Job data files reside in a distributed file system which is
//! implemented using the same servers that run tasks" — so a task
//! scheduled on a machine holding its input reads locally, and one
//! placed elsewhere pays a network penalty; §3.1 notes tasks "can be
//! slowed or potentially lose locality". This module adds an optional
//! machine model to the simulator:
//!
//! - each started task is placed on a machine; with probability
//!   `locality_fraction` the placement is input-local, otherwise its
//!   runtime is inflated by `remote_penalty`;
//! - machine-failure events target a *machine*, killing exactly the
//!   tasks resident there (instead of a random sample).
//!
//! Placement is disabled by default ([`PlacementConfig`] is opt-in via
//! [`crate::config::ClusterConfig::placement`]); the abstract model is
//! sufficient for the paper's evaluation and keeps its calibration.

use rand::rngs::StdRng;
use rand::Rng;

/// Machine-model parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct PlacementConfig {
    /// Machines in the simulated slice (the paper's racks hold ~40).
    pub machines: u32,
    /// Probability a task is placed input-local.
    pub locality_fraction: f64,
    /// Runtime multiplier for non-local tasks.
    pub remote_penalty: f64,
}

impl PlacementConfig {
    /// A production-like model: a 40-machine slice, 85% of placements
    /// local, 30% penalty for remote reads.
    pub fn production() -> Self {
        PlacementConfig {
            machines: 40,
            locality_fraction: 0.85,
            remote_penalty: 1.3,
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("placement.machines must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.locality_fraction) {
            return Err("placement.locality_fraction must be in [0, 1]".into());
        }
        if self.remote_penalty < 1.0 {
            return Err("placement.remote_penalty must be >= 1".into());
        }
        Ok(())
    }

    /// Places one task: returns `(machine id, runtime multiplier)`.
    pub fn place(&self, rng: &mut StdRng) -> (u32, f64) {
        let machine = rng.gen_range(0..self.machines);
        let mult = if rng.gen::<f64>() < self.locality_fraction {
            1.0
        } else {
            self.remote_penalty
        };
        (machine, mult)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::rng::SeedDeriver;

    #[test]
    fn production_validates() {
        assert_eq!(PlacementConfig::production().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut p = PlacementConfig::production();
        p.machines = 0;
        assert!(p.validate().is_err());
        let mut p = PlacementConfig::production();
        p.locality_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = PlacementConfig::production();
        p.remote_penalty = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn placement_respects_locality_fraction() {
        let cfg = PlacementConfig {
            machines: 10,
            locality_fraction: 0.75,
            remote_penalty: 1.4,
        };
        let mut rng = SeedDeriver::new(9).rng("placement");
        let n = 20_000;
        let mut local = 0;
        for _ in 0..n {
            let (machine, mult) = cfg.place(&mut rng);
            assert!(machine < 10);
            assert!(mult == 1.0 || mult == 1.4);
            if mult == 1.0 {
                local += 1;
            }
        }
        let frac = f64::from(local) / f64::from(n);
        assert!((frac - 0.75).abs() < 0.02, "local fraction {frac}");
    }
}
