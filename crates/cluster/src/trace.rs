//! Execution traces recorded during a simulated run.
//!
//! A [`RunTrace`] holds the time series needed to reproduce the
//! paper's run-detail plots (Fig. 6: raw allocation, smoothed
//! allocation, running vertices, oracle allocation; Fig. 9: progress
//! and predicted completion) and the allocation metrics of §5.1
//! (allocation above oracle, total machine-hours).

use jockey_simrt::series::TimeSeries;
use jockey_simrt::time::SimTime;

/// Time series recorded for one job over one run.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// The applied (post-hysteresis) token guarantee.
    pub guarantee: TimeSeries,
    /// The controller's raw desired allocation, when reported.
    pub raw_allocation: TimeSeries,
    /// Number of running tasks (vertices) at each control tick.
    pub running: TimeSeries,
    /// Controller progress estimate in `[0, 1]`, when reported.
    pub progress: TimeSeries,
    /// Controller predicted completion (seconds from job start), when
    /// reported.
    pub predicted_completion: TimeSeries,
    /// Background utilization observed at each control tick.
    pub background_util: TimeSeries,
    /// Per-stage completed fraction sampled at each control decision.
    /// Lets alternative progress indicators be evaluated offline over
    /// the *same* run (Fig. 10 compares indicators on identical
    /// executions, not one execution per indicator).
    pub stage_fractions: Vec<TimeSeries>,
}

impl RunTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        RunTrace::default()
    }

    /// Token-seconds of guarantee held up to `end` (the integral of
    /// the guarantee series).
    pub fn guarantee_token_seconds(&self, end: SimTime) -> f64 {
        self.guarantee.integral_until(end)
    }

    /// Average guarantee over `[first tick, end]`, 0 if empty.
    pub fn mean_guarantee(&self, end: SimTime) -> f64 {
        if self.guarantee.is_empty() {
            return 0.0;
        }
        let start = self.guarantee.points()[0].0;
        let span = end.saturating_since(start).as_secs_f64();
        if span <= 0.0 {
            return self.guarantee.last().unwrap_or(0.0);
        }
        self.guarantee.integral_until(end) / span
    }

    /// Fraction of guarantee-seconds in excess of a constant `oracle`
    /// allocation — the paper's "fraction of allocation above the
    /// oracle" impact metric (§5.1). Clamped to `[0, 1]`.
    pub fn fraction_above_oracle(&self, end: SimTime, oracle: u32) -> f64 {
        let used = self.guarantee_token_seconds(end);
        if used <= 0.0 {
            return 0.0;
        }
        let start = self.guarantee.points()[0].0;
        let span = end.saturating_since(start).as_secs_f64();
        let oracle_seconds = f64::from(oracle) * span;
        ((used - oracle_seconds) / used).clamp(0.0, 1.0)
    }

    /// Median of the applied guarantee samples, 0 if empty.
    pub fn median_guarantee(&self) -> f64 {
        let v = self.guarantee.values();
        if v.is_empty() {
            0.0
        } else {
            jockey_simrt::stats::percentile(&v, 50.0)
        }
    }

    /// Maximum applied guarantee, 0 if empty.
    pub fn max_guarantee(&self) -> f64 {
        self.guarantee.max().unwrap_or(0.0)
    }

    /// First applied guarantee, 0 if empty.
    pub fn first_guarantee(&self) -> f64 {
        self.guarantee.points().first().map_or(0.0, |&(_, v)| v)
    }

    /// Last applied guarantee, 0 if empty.
    pub fn last_guarantee(&self) -> f64 {
        self.guarantee.last().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::time::SimTime;

    fn trace() -> RunTrace {
        let mut t = RunTrace::new();
        t.guarantee.push(SimTime::ZERO, 10.0);
        t.guarantee.push(SimTime::from_mins(10), 30.0);
        t
    }

    #[test]
    fn token_seconds_integrates() {
        let t = trace();
        let end = SimTime::from_mins(20);
        assert_eq!(t.guarantee_token_seconds(end), 10.0 * 600.0 + 30.0 * 600.0);
        assert_eq!(t.mean_guarantee(end), 20.0);
    }

    #[test]
    fn fraction_above_oracle_matches_hand_calc() {
        let t = trace();
        let end = SimTime::from_mins(20);
        // Used = 24000 token-s; oracle 10 tokens over 1200 s = 12000.
        assert!((t.fraction_above_oracle(end, 10) - 0.5).abs() < 1e-12);
        // Oracle above usage clamps to zero.
        assert_eq!(t.fraction_above_oracle(end, 100), 0.0);
    }

    #[test]
    fn summary_accessors() {
        let t = trace();
        assert_eq!(t.first_guarantee(), 10.0);
        assert_eq!(t.last_guarantee(), 30.0);
        assert_eq!(t.max_guarantee(), 30.0);
        assert_eq!(t.median_guarantee(), 20.0);
    }

    #[test]
    fn empty_trace_is_zeroes() {
        let t = RunTrace::new();
        assert_eq!(t.mean_guarantee(SimTime::from_mins(1)), 0.0);
        assert_eq!(t.fraction_above_oracle(SimTime::from_mins(1), 5), 0.0);
        assert_eq!(t.median_guarantee(), 0.0);
    }
}
