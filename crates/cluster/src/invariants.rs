//! Post-step invariant checks over the engine core.
//!
//! Enabled by default in debug/test builds (see
//! [`ClusterSim::set_invariant_checks`](crate::ClusterSim::set_invariant_checks)),
//! these verify after every dispatched event that no policy layer —
//! scheduler, failure model, controller — has corrupted the run.

use jockey_simrt::time::SimTime;

use crate::engine::{EngineCore, TaskState, TokenClass};

/// Verifies the simulator's core invariants after an event:
///
/// 1. **Event-time monotonicity** — dispatched event times never go
///    backwards.
/// 2. **Token conservation** — per job, guaranteed-class tasks never
///    exceed the guarantee and clone-class attempts never exceed the
///    configured clone budget (nor exist at all with speculation off),
///    and globally `guaranteed + spare + clone + background + idle =
///    capacity` with `idle >= 0` for the spare class (guaranteed
///    admission is bounded separately, so a guarantee above cluster
///    size surfaces here too).
/// 3. **Per-stage task accounting** — `pending + ready + running +
///    done == total` per stage, the `Done` count matches `completed`,
///    the running list matches `Running` task states (1:1 without
///    speculation; per distinct task with sibling attempts racing, and
///    every entry — so no orphan clones — anchored to a live attempt),
///    and `done_tasks` equals the per-stage sum.
/// 4. **Monotone stage fractions** — completed counts never decrease
///    except through an explicit data-loss rollback (which lowers the
///    floor).
pub(crate) fn check(core: &mut EngineCore, now: SimTime) {
    if now < core.last_event_time {
        violation(
            core,
            now,
            "event-time monotonicity",
            format!(
                "event dispatched at {:.3}s after the clock reached {:.3}s",
                now.as_secs_f64(),
                core.last_event_time.as_secs_f64()
            ),
        );
    }
    core.last_event_time = now;

    // Token conservation.
    let total = core.cfg.total_tokens;
    core.background.advance_to(now);
    let bg_demand = core.background.demand_tokens(now, total);
    let mut guar_running: u32 = 0;
    let mut spare_running: u32 = 0;
    let mut clone_running: u32 = 0;
    for (j, job) in core.jobs.iter().enumerate() {
        let g = job.running_in_class(TokenClass::Guaranteed);
        if g > job.guarantee() {
            violation(
                core,
                now,
                "token conservation",
                format!(
                    "job {j} runs {g} guaranteed tasks above its guarantee {}",
                    job.guarantee()
                ),
            );
        }
        guar_running += g;
        spare_running += job.running_in_class(TokenClass::Spare);
        let c = job.running_in_class(TokenClass::Clone);
        match &core.cfg.speculation {
            Some(sp) if c > sp.clone_budget => violation(
                core,
                now,
                "token conservation",
                format!(
                    "job {j} runs {c} clone attempts above the clone budget {}",
                    sp.clone_budget
                ),
            ),
            None if c > 0 => violation(
                core,
                now,
                "token conservation",
                format!("job {j} runs {c} clone attempts with speculation disabled"),
            ),
            _ => {}
        }
        clone_running += c;
    }
    let spare_budget = (i64::from(total)
        - i64::from(bg_demand)
        - i64::from(guar_running)
        - i64::from(clone_running))
    .max(0);
    if i64::from(spare_running) > spare_budget {
        violation(
            core,
            now,
            "token conservation",
            format!(
                "{spare_running} spare tasks exceed the spare budget {spare_budget} \
                 (capacity {total} - background {bg_demand} - guaranteed {guar_running})"
            ),
        );
    }

    // Per-stage task accounting.
    for (j, job) in core.jobs.iter().enumerate() {
        let graph = &job.spec().graph;
        let mut done_total: u64 = 0;
        let mut running_states: usize = 0;
        for s in graph.stage_ids() {
            let mut done: u32 = 0;
            for st in job.tasks.stage_states(s.index()) {
                match st {
                    TaskState::Done { .. } => done += 1,
                    TaskState::Running { .. } => running_states += 1,
                    TaskState::Pending | TaskState::Ready => {}
                }
            }
            if done != job.completed[s.index()] {
                violation(
                    core,
                    now,
                    "per-stage task accounting",
                    format!(
                        "job {j} stage {}: {done} Done task states but completed counter is {}",
                        s.index(),
                        job.completed[s.index()]
                    ),
                );
            }
            done_total += u64::from(done);
        }
        if done_total != job.done_tasks {
            violation(
                core,
                now,
                "per-stage task accounting",
                format!(
                    "job {j}: per-stage completed sum {done_total} != done_tasks {}",
                    job.done_tasks
                ),
            );
        }
        // Under speculation one task can hold several running-list
        // entries (sibling attempts racing), but still exactly one
        // `Running` task state; without it the two counts match 1:1.
        let speculating = core.cfg.speculation.is_some();
        let expected_running_states = if speculating {
            job.running()
                .iter()
                .enumerate()
                .filter(|(i, r)| !job.running()[..*i].iter().any(|o| o.task == r.task))
                .count()
        } else {
            job.running().len()
        };
        if running_states != expected_running_states {
            violation(
                core,
                now,
                "per-stage task accounting",
                format!(
                    "job {j}: {running_states} Running task states but {} distinct running-list \
                     tasks ({} entries)",
                    expected_running_states,
                    job.running().len()
                ),
            );
        }
        for r in job.running() {
            // Every entry — clones included — must point at a task in a
            // `Running` state whose attempt is held by some live
            // sibling entry (an orphan clone fails here: its task has
            // moved on to `Done`/`Ready` but the entry survived).
            match job.task_state(r.task) {
                TaskState::Running { attempt } if attempt == r.attempt => {}
                TaskState::Running { attempt }
                    if speculating
                        && job
                            .running()
                            .iter()
                            .any(|o| o.task == r.task && o.attempt == attempt) => {}
                other => violation(
                    core,
                    now,
                    "per-stage task accounting",
                    format!(
                        "job {j}: running-list entry s{}/{} attempt {} ({:?}) has task state \
                         {other:?}",
                        r.task.stage.index(),
                        r.task.index,
                        r.attempt,
                        r.class
                    ),
                ),
            }
        }
    }

    // Monotone stage fractions.
    for j in 0..core.jobs.len() {
        for s in 0..core.jobs[j].completed.len() {
            if core.jobs[j].completed[s] < core.completed_floor[j][s] {
                violation(
                    core,
                    now,
                    "monotone stage fractions",
                    format!(
                        "job {j} stage {s}: completed fell from {} to {} without a data-loss rollback",
                        core.completed_floor[j][s], core.jobs[j].completed[s]
                    ),
                );
            }
        }
        core.completed_floor[j].copy_from_slice(&core.jobs[j].completed);
    }
}

/// Panics with the violation and the tail of the attached journal.
fn violation(core: &EngineCore, now: SimTime, what: &str, detail: String) -> ! {
    let tail = match core.observer.tail(32) {
        Some(t) if !t.is_empty() => format!("\nlast journal entries:\n{t}"),
        _ => String::from("\n(no journal attached; call ClusterSim::attach_journal for history)"),
    };
    panic!(
        "sim invariant violated at {:.3}s: {what}: {detail}{tail}",
        now.as_secs_f64()
    );
}

// ----------------------------------------------------------------------
// Invariant checkers: each must fire on a seeded violation. The tests
// corrupt private simulator state directly — no legitimate event path
// produces these states (that is the point of the checks).
// ----------------------------------------------------------------------
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::controller::FixedAllocation;
    use crate::job::JobSpec;
    use crate::sim::ClusterSim;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use jockey_simrt::observe::SharedJournal;
    use std::sync::Arc;

    fn spec(map_tasks: u32, reduce_tasks: u32, secs: f64) -> JobSpec {
        let mut b = JobGraphBuilder::new("test-job");
        let m = b.stage("map", map_tasks);
        let r = b.stage("reduce", reduce_tasks);
        b.edge(m, r, EdgeKind::AllToAll);
        JobSpec::uniform(
            Arc::new(b.build().unwrap()),
            Constant(secs),
            Constant(0.0),
            0.0,
        )
    }

    /// Steps a fresh sim until the first task completes, so tasks are
    /// both `Done` and `Running` and the clock has advanced.
    fn stepped_sim(journal: bool) -> (ClusterSim, Option<SharedJournal>, SimTime) {
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
        let journal = journal.then(|| sim.attach_journal(64));
        sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
        sim.engine.prime();
        while sim.engine.core.jobs[0].done_tasks == 0 {
            let (now, event) = sim
                .engine
                .core
                .queue
                .pop()
                .expect("job cannot finish with no done tasks");
            sim.engine.step(now, event, None);
        }
        let now = sim.engine.core.last_event_time;
        (sim, journal, now)
    }

    #[test]
    #[should_panic(expected = "event-time monotonicity")]
    fn invariant_fires_on_time_regression() {
        let (mut sim, _, now) = stepped_sim(false);
        assert!(now > SimTime::ZERO);
        check(&mut sim.engine.core, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "token conservation")]
    fn invariant_fires_on_guarantee_overcommit() {
        let (mut sim, _, now) = stepped_sim(false);
        assert!(sim.engine.core.jobs[0].running_in_class(TokenClass::Guaranteed) > 0);
        sim.engine.core.jobs[0].guarantee = 0;
        check(&mut sim.engine.core, now);
    }

    #[test]
    #[should_panic(expected = "token conservation")]
    fn invariant_fires_on_clone_without_speculation() {
        let (mut sim, _, now) = stepped_sim(false);
        // Forge a clone-class attempt in a run with speculation off: no
        // legitimate path creates one.
        sim.engine.core.jobs[0].running[0].class = TokenClass::Clone;
        check(&mut sim.engine.core, now);
    }

    #[test]
    #[should_panic(expected = "clone budget")]
    fn invariant_fires_on_clone_budget_overrun() {
        use crate::config::SpeculationConfig;
        let (mut sim, _, now) = stepped_sim(false);
        sim.engine.core.cfg.max_guarantee = 2;
        sim.engine.core.cfg.speculation = Some(SpeculationConfig::clone_on_slow(2.0, 1));
        // Two forged clones against a budget of one. Reclassifying
        // existing guaranteed entries keeps every other account intact.
        sim.engine.core.jobs[0].running[0].class = TokenClass::Clone;
        sim.engine.core.jobs[0].running[1].class = TokenClass::Clone;
        check(&mut sim.engine.core, now);
    }

    #[test]
    #[should_panic(expected = "per-stage task accounting")]
    fn invariant_fires_on_completed_counter_drift() {
        let (mut sim, _, now) = stepped_sim(false);
        sim.engine.core.jobs[0].completed[0] += 1;
        check(&mut sim.engine.core, now);
    }

    #[test]
    #[should_panic(expected = "monotone stage fractions")]
    fn invariant_fires_on_fraction_regression() {
        let (mut sim, _, now) = stepped_sim(false);
        // A floor above the live counter models a completion count that
        // silently went backwards (without the data-loss path that
        // legitimately lowers the floor).
        sim.engine.core.completed_floor[0][0] = sim.engine.core.jobs[0].completed[0] + 1;
        check(&mut sim.engine.core, now);
    }

    #[test]
    #[should_panic(expected = "no journal attached")]
    fn invariant_panic_hints_at_journal_when_absent() {
        let (mut sim, _, now) = stepped_sim(false);
        sim.engine.core.jobs[0].guarantee = 0;
        check(&mut sim.engine.core, now);
    }

    #[test]
    fn invariant_panic_includes_journal_tail() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (mut sim, journal, now) = stepped_sim(true);
            assert!(!journal.expect("journal attached").is_empty());
            sim.engine.core.jobs[0].guarantee = 0;
            check(&mut sim.engine.core, now);
        }));
        let payload = result.expect_err("corrupted sim must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted message");
        assert!(msg.contains("token conservation"), "{msg}");
        assert!(msg.contains("last journal entries"), "{msg}");
        // The tail shows real dispatched events, e.g. TaskDone records.
        assert!(msg.contains("TaskDone"), "{msg}");
    }

    #[test]
    fn invariant_checks_can_be_disabled() {
        let (mut sim, _, _) = stepped_sim(false);
        assert!(
            sim.engine.core.invariants_enabled,
            "test builds default to enabled"
        );
        sim.set_invariant_checks(false);
        sim.engine.core.jobs[0].guarantee = 0; // Would trip token conservation.
        let (now, event) = sim.engine.core.queue.pop().expect("events remain");
        sim.engine.step(now, event, None); // Must not panic with checks off.
        assert_eq!(sim.engine.core.last_event_time, now);
    }
}
