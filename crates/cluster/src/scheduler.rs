//! The scheduling-policy seam: token and spare-capacity arbitration.
//!
//! Every event the engine dispatches funnels into one scheduling pass.
//! The pass is a *policy*: which ready tasks start, in which token
//! class, and which spare tasks are evicted when background load
//! squeezes capacity. [`WeightedFair`] reproduces Jockey's behavior
//! (guaranteed admission up to each job's guarantee, round-robin spare
//! distribution, newest-first spare eviction); alternative schedulers —
//! packing-constrained, priority-based — implement [`SchedulerPolicy`]
//! and are installed with
//! [`ClusterSim::set_scheduler`](crate::ClusterSim::set_scheduler).

use jockey_simrt::time::SimTime;

use crate::engine::{EngineCore, TokenClass};

/// Decides which tasks occupy tokens after each simulation event.
///
/// Implementations act on the [`EngineCore`] mechanics: inspect jobs
/// via [`EngineCore::job`], start ready tasks with
/// [`EngineCore::start_task`], and evict spare tasks with
/// [`EngineCore::evict_spare`]. The engine calls
/// [`SchedulerPolicy::schedule`] after every event, so a pass must be
/// idempotent when nothing changed.
pub trait SchedulerPolicy: Send {
    /// One scheduling pass at time `now`.
    fn schedule(&mut self, core: &mut EngineCore, now: SimTime);

    /// True if one merged pass after a batch of same-instant task
    /// completions is observably identical to one pass per completion,
    /// *provided* the engine's own batching gate holds (no spare
    /// capacity, no background model, no speculation, every running
    /// task Guaranteed).
    /// The engine only drains completion batches (the dense-kernel fast
    /// path, see `DESIGN.md` §15) when this returns true; the default
    /// is `false` so custom policies — which may be stateful, draw RNG
    /// per pass, or start tasks in non-FIFO order — keep the exact
    /// per-event reference semantics. Only return `true` if your policy
    /// upholds the same proof obligations as [`WeightedFair`]: a pass
    /// in the gated regime consumes no RNG except through
    /// [`EngineCore::start_task`], and fills strictly in ready-queue
    /// FIFO order per job, in job-index order.
    fn batchable(&self) -> bool {
        false
    }
}

/// Jockey's scheduler: guaranteed admission per job, spare capacity
/// shared round-robin, and newest-first spare eviction under pressure.
///
/// Class balancing per job demotes the newest guaranteed tasks above
/// the guarantee and upgrades the oldest spare tasks into unused
/// guarantee, so in-flight work keeps its sampled completion time while
/// eviction priority tracks the current guarantee.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedFair;

impl SchedulerPolicy for WeightedFair {
    /// A gated-regime pass reduces to RNG-free class bookkeeping plus a
    /// FIFO guaranteed fill (spare starts and the background model are
    /// disabled, evictions impossible), so merged passes start the same
    /// tasks in the same order as per-event passes.
    fn batchable(&self) -> bool {
        true
    }

    fn schedule(&mut self, core: &mut EngineCore, now: SimTime) {
        core.background.advance_to(now);
        let total = core.cfg.total_tokens;
        let bg_demand = core.background.demand_tokens(now, total);
        let slowdown = core.background.slowdown(now);

        // Phase 1: per-job class balancing and guaranteed starts. The
        // guaranteed-class count is established with one scan and then
        // maintained incrementally, so the fill loop is O(1) per start
        // instead of rescanning the running list per iteration (the
        // former inner-loop `running_in_class` scans dominated dense
        // passes).
        for j in 0..core.jobs.len() {
            if !core.jobs[j].is_active() {
                continue;
            }
            let guarantee = core.jobs[j].guarantee;
            let mut guar = core.jobs[j].running_in_class(TokenClass::Guaranteed);
            {
                let job = &mut core.jobs[j];
                // Demote newest guaranteed tasks above the guarantee.
                while guar > guarantee {
                    let pos = job
                        .running
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.class == TokenClass::Guaranteed)
                        .max_by_key(|(_, r)| r.started)
                        .map(|(i, _)| i)
                        .expect("counted above");
                    job.running[pos].class = TokenClass::Spare;
                    guar -= 1;
                }
                // Upgrade oldest spare tasks into unused guarantee.
                while guar < guarantee {
                    let pos = job
                        .running
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.class == TokenClass::Spare)
                        .min_by_key(|(_, r)| r.started);
                    match pos {
                        Some((i, _)) => {
                            job.running[i].class = TokenClass::Guaranteed;
                            guar += 1;
                        }
                        None => break,
                    }
                }
            }
            // Start new guaranteed tasks.
            while guar < guarantee {
                let Some(task) = core.jobs[j].pop_ready() else {
                    break;
                };
                core.start_task(j, task, TokenClass::Guaranteed, now, slowdown);
                guar += 1;
            }
        }

        // Phase 2: spare capacity accounting (all class totals in one
        // scan of each running list). Clone-class attempts hold real
        // tokens, so they shrink the spare budget; they are never
        // demoted, upgraded, or evicted here — their lifetime is
        // bounded by kill-on-first-finish.
        let mut guar_running: u32 = 0;
        let mut spare_running: u32 = 0;
        let mut clone_running: u32 = 0;
        for job in &core.jobs {
            for r in &job.running {
                match r.class {
                    TokenClass::Guaranteed => guar_running += 1,
                    TokenClass::Spare => spare_running += 1,
                    TokenClass::Clone => clone_running += 1,
                }
            }
        }
        let spare_budget = i64::from(total)
            - i64::from(bg_demand)
            - i64::from(guar_running)
            - i64::from(clone_running);

        if i64::from(spare_running) > spare_budget {
            // Evict newest spare tasks first until within budget.
            let mut to_evict = i64::from(spare_running) - spare_budget.max(0);
            while to_evict > 0 {
                // Find the globally newest spare task.
                let mut newest: Option<(usize, usize, SimTime)> = None;
                for (ji, job) in core.jobs.iter().enumerate() {
                    for (ri, r) in job.running.iter().enumerate() {
                        if r.class == TokenClass::Spare
                            && newest.is_none_or(|(_, _, t)| r.started > t)
                        {
                            newest = Some((ji, ri, r.started));
                        }
                    }
                }
                let Some((ji, ri, _)) = newest else { break };
                core.evict_spare(ji, ri, now);
                to_evict -= 1;
            }
        } else if core.cfg.spare_enabled {
            // Distribute spare tokens round-robin among jobs with
            // pending work.
            let mut avail = spare_budget - i64::from(spare_running);
            'outer: while avail > 0 {
                let mut progressed = false;
                for j in 0..core.jobs.len() {
                    if avail == 0 {
                        break 'outer;
                    }
                    if !core.jobs[j].is_active() {
                        continue;
                    }
                    if let Some(task) = core.jobs[j].pop_ready() {
                        core.start_task(j, task, TokenClass::Spare, now, slowdown);
                        avail -= 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }

        // Token conservation: foreground tasks plus the background's
        // demand can never exceed the slice (guaranteed starts are
        // admission-bounded; spare starts are budgeted above). Like the
        // guarantee, in-flight clones are not evicted when background
        // demand rises after their launch, so they join the slack term.
        debug_assert!(
            {
                let fg: u32 = core.jobs.iter().map(|j| j.running.len() as u32).sum();
                i64::from(fg) + i64::from(bg_demand)
                    <= i64::from(total) + i64::from(guar_running) + i64::from(clone_running)
            },
            "token over-commit in scheduling pass"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::controller::FixedAllocation;
    use crate::job::JobSpec;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use std::sync::Arc;

    /// Engine with one 8-map/2-reduce job started and its first wave of
    /// guaranteed tasks running.
    fn started_engine(tokens: u32, guarantee: u32) -> crate::engine::Engine {
        let mut b = JobGraphBuilder::new("sched-test");
        let m = b.stage("map", 8);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph, Constant(10.0), Constant(0.0), 0.0);
        let mut cfg = ClusterConfig::dedicated(tokens);
        cfg.max_guarantee = tokens;
        cfg.spare_enabled = true;
        let mut engine = crate::engine::Engine::new(cfg, 1);
        engine.core.add_job_at(
            Arc::new(spec),
            Box::new(FixedAllocation(guarantee)),
            jockey_simrt::time::SimTime::ZERO,
        );
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None); // JobStart → first scheduling pass.
        engine
    }

    #[test]
    fn guaranteed_starts_respect_the_guarantee() {
        let engine = started_engine(8, 3);
        let job = &engine.core.jobs[0];
        assert_eq!(job.running_in_class(TokenClass::Guaranteed), 3);
    }

    #[test]
    fn spare_fills_idle_tokens() {
        let engine = started_engine(8, 3);
        let job = &engine.core.jobs[0];
        // 8 tokens, 3 guaranteed, no background: 5 spare starts.
        assert_eq!(job.running_in_class(TokenClass::Spare), 5);
    }

    #[test]
    fn lowering_the_guarantee_demotes_newest_tasks() {
        let mut engine = started_engine(8, 8);
        engine.core.jobs[0].guarantee = 2;
        WeightedFair.schedule(&mut engine.core, SimTime::from_secs(1));
        let job = &engine.core.jobs[0];
        assert_eq!(job.running_in_class(TokenClass::Guaranteed), 2);
        // Nothing was evicted — demoted tasks keep running as spare.
        assert_eq!(job.running_in_class(TokenClass::Spare), 6);
    }

    #[test]
    fn raising_the_guarantee_upgrades_spare_tasks() {
        let mut engine = started_engine(8, 2);
        assert_eq!(
            engine.core.jobs[0].running_in_class(TokenClass::Spare),
            6,
            "precondition: spare tasks fill the idle tokens"
        );
        engine.core.jobs[0].guarantee = 6;
        WeightedFair.schedule(&mut engine.core, SimTime::from_secs(1));
        let job = &engine.core.jobs[0];
        assert_eq!(job.running_in_class(TokenClass::Guaranteed), 6);
        assert_eq!(job.running_in_class(TokenClass::Spare), 2);
    }
}
