//! The failure-model seam: task hazards, machine failures, data loss.
//!
//! Failures enter the simulation at three points, all routed through
//! one trait so alternative hazard models (correlated failures,
//! wear-out curves, fault injection for tests) can replace the default
//! without touching the event loop:
//!
//! 1. every task completion rolls for a per-attempt failure;
//! 2. a Poisson process arms the next machine-failure arrival;
//! 3. each machine failure kills resident tasks and may destroy
//!    completed outputs (forcing recomputation before a barrier).

use jockey_simrt::dist::{bernoulli, Exponential, Sample};
use jockey_simrt::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::EngineCore;

/// Injects failures into a simulation run.
///
/// Installed with
/// [`ClusterSim::set_failure_model`](crate::ClusterSim::set_failure_model);
/// the default is [`DefaultFailureModel`]. Implementations own their
/// RNG streams — the engine only owns *when* each hook is called:
/// [`task_attempt_fails`](FailureModel::task_attempt_fails) on every
/// non-stale completion,
/// [`next_failure_delay`](FailureModel::next_failure_delay) at prime
/// time and after each machine failure, and
/// [`on_machine_failure`](FailureModel::on_machine_failure) when the
/// armed arrival fires.
pub trait FailureModel: Send {
    /// Whether this task attempt fails on completion. `prob` is the
    /// configured (or spec-supplied) per-attempt failure probability
    /// for job `job`.
    fn task_attempt_fails(&mut self, core: &mut EngineCore, job: usize, prob: f64) -> bool;

    /// Delay until the next machine failure, or `None` if machine
    /// failures are disabled under the current configuration.
    fn next_failure_delay(&mut self, core: &EngineCore) -> Option<SimDuration>;

    /// Applies one machine failure: kill resident/running tasks and
    /// (possibly) destroy completed outputs via the [`EngineCore`]
    /// mechanics. The engine re-arms the next arrival afterwards.
    fn on_machine_failure(&mut self, core: &mut EngineCore, now: SimTime);
}

/// Jockey's failure model: independent per-attempt task failures, a
/// per-machine-hazard Poisson machine-failure process whose aggregate
/// rate scales with the slice's machine count, and Bernoulli data loss
/// that forces recomputation in incomplete stages.
pub struct DefaultFailureModel {
    rng_machine: StdRng,
}

impl DefaultFailureModel {
    /// Creates the model over its dedicated machine-failure RNG stream.
    pub fn new(rng_machine: StdRng) -> Self {
        DefaultFailureModel { rng_machine }
    }
}

impl FailureModel for DefaultFailureModel {
    fn task_attempt_fails(&mut self, core: &mut EngineCore, job: usize, prob: f64) -> bool {
        // Drawn from the job's own failure stream so multi-job runs
        // stay independent of event interleaving across jobs.
        bernoulli(&mut core.jobs[job].rng_fail, prob)
    }

    fn next_failure_delay(&mut self, core: &EngineCore) -> Option<SimDuration> {
        // The configured rate is a per-machine hazard, so the slice's
        // aggregate Poisson rate scales with its machine count — a
        // 4-machine slice fails less often than a 400-machine one at
        // the same per-machine reliability.
        let rate =
            core.cfg.failures.machine_failure_rate_per_hour * f64::from(core.machine_count());
        if rate <= 0.0 {
            return None;
        }
        let exp = Exponential::with_mean(3600.0 / rate);
        Some(SimDuration::from_secs_f64(
            exp.sample(&mut self.rng_machine),
        ))
    }

    fn on_machine_failure(&mut self, core: &mut EngineCore, now: SimTime) {
        // Choose a victim job weighted by running-task count.
        let weights: Vec<u32> = core
            .jobs
            .iter()
            .map(|j| {
                if j.is_active() {
                    j.running().len() as u32
                } else {
                    0
                }
            })
            .collect();
        let total: u32 = weights.iter().sum();
        if total > 0 {
            let mut pick = self.rng_machine.gen_range(0..total);
            let mut victim = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    victim = i;
                    break;
                }
                pick -= w;
            }
            let tasks_per_machine = core.cfg.failures.tasks_per_machine;
            match core.cfg.placement.clone() {
                Some(p) => {
                    // A concrete machine dies: every resident task (of
                    // every job) is killed.
                    let machine = self.rng_machine.gen_range(0..p.machines);
                    for j in 0..core.jobs.len() {
                        core.kill_tasks_on_machine(j, machine, now);
                    }
                }
                None => {
                    core.kill_running_tasks(victim, tasks_per_machine, now);
                }
            }
            if bernoulli(&mut self.rng_machine, core.cfg.failures.data_loss_prob) {
                core.lose_completed_outputs(victim, tasks_per_machine, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, FailureConfig};
    use crate::controller::FixedAllocation;
    use crate::engine::Engine;
    use crate::job::JobSpec;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use jockey_simrt::rng::SeedDeriver;
    use std::sync::Arc;

    fn engine_with(cfg: ClusterConfig) -> Engine {
        let mut b = JobGraphBuilder::new("fail-test");
        let m = b.stage("map", 6);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph, Constant(10.0), Constant(0.0), 0.0);
        let mut engine = Engine::new(cfg, 1);
        engine
            .core
            .add_job_at(Arc::new(spec), Box::new(FixedAllocation(4)), SimTime::ZERO);
        engine
    }

    #[test]
    fn no_delay_when_machine_failures_disabled() {
        let core = &engine_with(ClusterConfig::dedicated(4)).core;
        let mut model = DefaultFailureModel::new(SeedDeriver::new(7).rng("machine-failures"));
        assert_eq!(model.next_failure_delay(core), None);
    }

    #[test]
    fn delay_is_deterministic_for_a_fixed_stream() {
        let mut cfg = ClusterConfig::dedicated(4);
        cfg.failures = FailureConfig {
            task_failure_prob: Some(0.0),
            machine_failure_rate_per_hour: 1.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.0,
        };
        let core = &engine_with(cfg).core;
        let delay = |seed| {
            let mut m = DefaultFailureModel::new(SeedDeriver::new(seed).rng("machine-failures"));
            m.next_failure_delay(core).expect("rate is positive")
        };
        assert_eq!(delay(7), delay(7));
        assert!(delay(7) > SimDuration::ZERO);
    }

    #[test]
    fn task_attempt_failure_follows_probability_extremes() {
        let mut engine = engine_with(ClusterConfig::dedicated(4));
        let mut model = DefaultFailureModel::new(SeedDeriver::new(7).rng("machine-failures"));
        assert!(!model.task_attempt_fails(&mut engine.core, 0, 0.0));
        assert!(model.task_attempt_fails(&mut engine.core, 0, 1.0));
    }

    #[test]
    fn machine_failure_kills_running_tasks() {
        let mut cfg = ClusterConfig::dedicated(4);
        cfg.failures = FailureConfig {
            task_failure_prob: Some(0.0),
            machine_failure_rate_per_hour: 1.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.0,
        };
        let mut engine = engine_with(cfg);
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None); // JobStart: 4 tasks running.
        let before = engine.core.jobs[0].running().len();
        assert!(before > 0);
        let mut model = DefaultFailureModel::new(SeedDeriver::new(7).rng("machine-failures"));
        model.on_machine_failure(&mut engine.core, SimTime::from_secs(1));
        let job = &engine.core.jobs[0];
        assert!(job.running().len() < before, "tasks must be killed");
        assert!(job.wasted > 0.0 || job.running().len() + job.ready.len() >= before);
    }
}
