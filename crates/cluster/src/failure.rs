//! The failure-model seam: task hazards, machine failures, data loss.
//!
//! Failures enter the simulation at three points, all routed through
//! one trait so alternative hazard models (correlated failures,
//! wear-out curves, fault injection for tests) can replace the default
//! without touching the event loop:
//!
//! 1. every task completion rolls for a per-attempt failure;
//! 2. a Poisson process arms the next machine-failure arrival;
//! 3. each machine failure kills resident tasks and may destroy
//!    completed outputs (forcing recomputation before a barrier).

use jockey_simrt::dist::{bernoulli, exp_duration};
use jockey_simrt::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::EngineCore;

/// Injects failures into a simulation run.
///
/// Installed with
/// [`ClusterSim::set_failure_model`](crate::ClusterSim::set_failure_model);
/// the default is [`DefaultFailureModel`]. Implementations own their
/// RNG streams — the engine only owns *when* each hook is called:
/// [`task_attempt_fails`](FailureModel::task_attempt_fails) on every
/// non-stale completion,
/// [`next_failure_delay`](FailureModel::next_failure_delay) at prime
/// time and after each machine failure, and
/// [`on_machine_failure`](FailureModel::on_machine_failure) when the
/// armed arrival fires.
pub trait FailureModel: Send {
    /// Whether this task attempt fails on completion. `prob` is the
    /// configured (or spec-supplied) per-attempt failure probability
    /// for job `job`.
    fn task_attempt_fails(&mut self, core: &mut EngineCore, job: usize, prob: f64) -> bool;

    /// Delay until the next machine failure, or `None` if machine
    /// failures are disabled under the current configuration.
    fn next_failure_delay(&mut self, core: &EngineCore) -> Option<SimDuration>;

    /// Applies one machine failure: kill resident/running tasks and
    /// (possibly) destroy completed outputs via the [`EngineCore`]
    /// mechanics. The engine re-arms the next arrival afterwards.
    fn on_machine_failure(&mut self, core: &mut EngineCore, now: SimTime);

    /// Delay until the next correlated whole-rack failure, or `None`
    /// when rack failures are disabled. Racks only exist under a
    /// topology, so the default is `None` — legacy models see no new
    /// events and consume no extra RNG draws.
    fn next_rack_failure_delay(&mut self, _core: &EngineCore) -> Option<SimDuration> {
        None
    }

    /// Applies one rack failure. Only called when
    /// [`next_rack_failure_delay`](FailureModel::next_rack_failure_delay)
    /// armed an arrival; the default is a no-op.
    fn on_rack_failure(&mut self, _core: &mut EngineCore, _now: SimTime) {}
}

/// Jockey's failure model: independent per-attempt task failures, a
/// per-machine-hazard Poisson machine-failure process whose aggregate
/// rate scales with the slice's machine count, and Bernoulli data loss
/// that forces recomputation in incomplete stages.
pub struct DefaultFailureModel {
    rng_machine: StdRng,
}

impl DefaultFailureModel {
    /// Creates the model over its dedicated machine-failure RNG stream.
    pub fn new(rng_machine: StdRng) -> Self {
        DefaultFailureModel { rng_machine }
    }
}

impl FailureModel for DefaultFailureModel {
    fn task_attempt_fails(&mut self, core: &mut EngineCore, job: usize, prob: f64) -> bool {
        // Drawn from the job's own failure stream so multi-job runs
        // stay independent of event interleaving across jobs.
        bernoulli(&mut core.jobs[job].rng_fail, prob)
    }

    fn next_failure_delay(&mut self, core: &EngineCore) -> Option<SimDuration> {
        // The configured rate is a per-machine hazard, so the slice's
        // aggregate Poisson rate scales with its machine count — a
        // 4-machine slice fails less often than a 400-machine one at
        // the same per-machine reliability.
        let rate =
            core.cfg.failures.machine_failure_rate_per_hour * f64::from(core.machine_count());
        if rate <= 0.0 {
            return None;
        }
        Some(exp_duration(&mut self.rng_machine, 3600.0 / rate))
    }

    fn on_machine_failure(&mut self, core: &mut EngineCore, now: SimTime) {
        // Choose a victim job weighted by running-task count.
        let weights: Vec<u32> = core
            .jobs
            .iter()
            .map(|j| {
                if j.is_active() {
                    j.running().len() as u32
                } else {
                    0
                }
            })
            .collect();
        let total: u32 = weights.iter().sum();
        if total > 0 {
            let mut pick = self.rng_machine.gen_range(0..total);
            let mut victim = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    victim = i;
                    break;
                }
                pick -= w;
            }
            let tasks_per_machine = core.cfg.failures.tasks_per_machine;
            if let Some(machines) = core.topology().map(|t| t.machine_count()) {
                // Topology model: a concrete machine dies, killing every
                // resident task of every job and (optionally) the input
                // replicas it hosted.
                let machine = self.rng_machine.gen_range(0..machines);
                for j in 0..core.jobs.len() {
                    core.kill_tasks_on_machine(j, machine, now);
                }
                let loss = core.cfg.failures.replica_loss_prob;
                core.destroy_replicas_on_machine(machine, loss, &mut self.rng_machine, now);
            } else {
                match core.cfg.placement.clone() {
                    Some(p) => {
                        // A concrete machine dies: every resident task (of
                        // every job) is killed.
                        let machine = self.rng_machine.gen_range(0..p.machines);
                        for j in 0..core.jobs.len() {
                            core.kill_tasks_on_machine(j, machine, now);
                        }
                    }
                    None => {
                        core.kill_running_tasks(victim, tasks_per_machine, now);
                    }
                }
            }
            if bernoulli(&mut self.rng_machine, core.cfg.failures.data_loss_prob) {
                core.lose_completed_outputs(victim, tasks_per_machine, now);
            }
        }
    }

    fn next_rack_failure_delay(&mut self, core: &EngineCore) -> Option<SimDuration> {
        // Per-rack hazard, aggregated over the topology's rack count —
        // the rack-level analogue of the per-machine scaling above.
        // Without a topology there are no racks and no draw is made, so
        // the legacy machine-failure stream is untouched.
        let racks = core.topology()?.rack_count();
        let rate = core.cfg.failures.rack_failure_rate_per_hour * f64::from(racks);
        if rate <= 0.0 {
            return None;
        }
        Some(exp_duration(&mut self.rng_machine, 3600.0 / rate))
    }

    fn on_rack_failure(&mut self, core: &mut EngineCore, now: SimTime) {
        let (machines, loss) = {
            let Some(topo) = core.topology() else {
                return;
            };
            let rack = self.rng_machine.gen_range(0..topo.rack_count());
            (
                topo.machines_in_rack(rack),
                core.cfg.failures.replica_loss_prob,
            )
        };
        // The whole rack goes down at once: every resident task of
        // every machine in it dies, and each hosted replica may be
        // destroyed with it.
        for machine in machines {
            for j in 0..core.jobs.len() {
                core.kill_tasks_on_machine(j, machine, now);
            }
            core.destroy_replicas_on_machine(machine, loss, &mut self.rng_machine, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, FailureConfig};
    use crate::controller::FixedAllocation;
    use crate::engine::Engine;
    use crate::job::JobSpec;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use jockey_simrt::rng::SeedDeriver;
    use std::sync::Arc;

    fn engine_with(cfg: ClusterConfig) -> Engine {
        let mut b = JobGraphBuilder::new("fail-test");
        let m = b.stage("map", 6);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph, Constant(10.0), Constant(0.0), 0.0);
        let mut engine = Engine::new(cfg, 1);
        engine
            .core
            .add_job_at(Arc::new(spec), Box::new(FixedAllocation(4)), SimTime::ZERO);
        engine
    }

    #[test]
    fn no_delay_when_machine_failures_disabled() {
        let core = &engine_with(ClusterConfig::dedicated(4)).core;
        let mut model = DefaultFailureModel::new(SeedDeriver::new(7).rng("machine-failures"));
        assert_eq!(model.next_failure_delay(core), None);
    }

    #[test]
    fn delay_is_deterministic_for_a_fixed_stream() {
        let mut cfg = ClusterConfig::dedicated(4);
        cfg.failures = FailureConfig {
            task_failure_prob: Some(0.0),
            machine_failure_rate_per_hour: 1.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.0,
            rack_failure_rate_per_hour: 0.0,
            replica_loss_prob: 0.0,
        };
        let core = &engine_with(cfg).core;
        let delay = |seed| {
            let mut m = DefaultFailureModel::new(SeedDeriver::new(seed).rng("machine-failures"));
            m.next_failure_delay(core).expect("rate is positive")
        };
        assert_eq!(delay(7), delay(7));
        assert!(delay(7) > SimDuration::ZERO);
    }

    #[test]
    fn task_attempt_failure_follows_probability_extremes() {
        let mut engine = engine_with(ClusterConfig::dedicated(4));
        let mut model = DefaultFailureModel::new(SeedDeriver::new(7).rng("machine-failures"));
        assert!(!model.task_attempt_fails(&mut engine.core, 0, 0.0));
        assert!(model.task_attempt_fails(&mut engine.core, 0, 1.0));
    }

    #[test]
    fn no_rack_delay_without_topology() {
        let mut cfg = ClusterConfig::dedicated(4);
        cfg.failures.machine_failure_rate_per_hour = 1.0;
        let core = &engine_with(cfg).core;
        let mut model = DefaultFailureModel::new(SeedDeriver::new(7).rng("machine-failures"));
        assert_eq!(model.next_rack_failure_delay(core), None);
    }

    #[test]
    fn rack_failure_kills_every_resident_task_in_the_rack() {
        use crate::topology::TopologyConfig;
        let mut cfg = ClusterConfig::dedicated(4);
        cfg.topology = Some(TopologyConfig::uniform(2, 4));
        cfg.failures.rack_failure_rate_per_hour = 1.0;
        let mut engine = engine_with(cfg);
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None); // JobStart: 4 tasks running.
        let mut model = DefaultFailureModel::new(SeedDeriver::new(7).rng("machine-failures"));
        assert!(model.next_rack_failure_delay(&engine.core).is_some());

        // Force-kill each rack in turn: afterwards no running task may
        // remain on any of that rack's machines.
        model.on_rack_failure(&mut engine.core, SimTime::from_secs(1));
        let dead_rack: Vec<u32> = {
            // Recover which rack died from the survivors: with two
            // racks, every surviving resident is in the other one.
            let topo = engine.core.topology().unwrap();
            let survivors: Vec<u32> = engine.core.jobs[0]
                .running()
                .iter()
                .filter_map(|r| r.machine)
                .map(|m| topo.rack_of(m))
                .collect();
            (0..topo.rack_count())
                .filter(|r| !survivors.contains(r))
                .collect()
        };
        assert!(!dead_rack.is_empty(), "one rack must have been cleared");
        let job = &engine.core.jobs[0];
        assert!(job.wasted > 0.0 || job.running().len() < 4);
    }

    #[test]
    fn machine_failure_under_topology_destroys_hosted_replicas() {
        use crate::topology::TopologyConfig;
        let mut cfg = ClusterConfig::dedicated(4);
        let mut topo = TopologyConfig::uniform(2, 4);
        topo.data_copies = 1; // Single copy: every loss forces a re-home.
        cfg.topology = Some(topo);
        cfg.failures.machine_failure_rate_per_hour = 1.0;
        cfg.failures.replica_loss_prob = 1.0;
        let mut engine = engine_with(cfg);
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None);
        let before: Vec<Vec<u32>> = engine.core.jobs[0].replicas.clone();
        assert!(!before.is_empty());
        // Fail machines until some replica set changes.
        let mut model = DefaultFailureModel::new(SeedDeriver::new(9).rng("machine-failures"));
        for i in 0..8 {
            model.on_machine_failure(&mut engine.core, SimTime::from_secs(1 + i));
        }
        let after = &engine.core.jobs[0].replicas;
        assert_ne!(&before, after, "replica placement must have churned");
        // Re-replication keeps every split at exactly one live copy.
        assert!(after.iter().all(|split| split.len() == 1));
    }

    /// PR 1 regression, extended to topologies: the configured rate is
    /// a *per-machine* hazard, so doubling the machine count halves the
    /// expected arrival delay — exactly, because the exponential draw
    /// is linear in its mean for a fixed RNG stream. Heterogeneous
    /// classes must not change the accounting: hazard scales with the
    /// machine *count*, not capacity.
    #[test]
    fn per_machine_hazard_scales_with_topology_machine_count() {
        use crate::topology::TopologyConfig;
        let delay_for = |topo: TopologyConfig| {
            let mut cfg = ClusterConfig::dedicated(4);
            cfg.topology = Some(topo);
            cfg.failures.machine_failure_rate_per_hour = 0.01;
            let core = &engine_with(cfg).core;
            let mut model = DefaultFailureModel::new(SeedDeriver::new(21).rng("machine-failures"));
            model.next_failure_delay(core).expect("rate is positive")
        };
        // Heterogeneous rack of 10 (5x1.0 + 3x0.5 + 2x0.25).
        let one_rack = delay_for(TopologyConfig::google_mix(1)).as_secs_f64();
        let two_racks = delay_for(TopologyConfig::google_mix(2)).as_secs_f64();
        let four_racks = delay_for(TopologyConfig::google_mix(4)).as_secs_f64();
        // The exponential draw is linear in its mean for a fixed
        // stream, so the ratios are exact up to ms quantization.
        assert!(
            (one_rack / two_racks - 2.0).abs() < 1e-6,
            "2x machines must halve the first arrival delay ({one_rack} vs {two_racks})"
        );
        assert!((one_rack / four_racks - 4.0).abs() < 1e-6);
        // A homogeneous topology with the same machine count draws the
        // same delay: capacities don't enter the hazard.
        let uniform = delay_for(TopologyConfig::uniform(1, 10)).as_secs_f64();
        assert_eq!(one_rack.to_bits(), uniform.to_bits());
        // And the topology count supersedes the flat-model accounting
        // (tokens / tasks_per_machine): same machine count, same
        // stream, identical aggregate hazard either way.
        let mut flat = ClusterConfig::dedicated(4);
        flat.failures.machine_failure_rate_per_hour = 0.01;
        flat.failures.tasks_per_machine = 2; // implies 2 machines
        let flat_core = &engine_with(flat).core;
        assert_eq!(flat_core.machine_count(), 2);
        let mut cfg = ClusterConfig::dedicated(4);
        let mut two = TopologyConfig::uniform(1, 2);
        two.data_copies = 2; // Only two machines to hold copies.
        cfg.topology = Some(two);
        cfg.failures.machine_failure_rate_per_hour = 0.01;
        let topo_core = &engine_with(cfg).core;
        assert_eq!(topo_core.machine_count(), 2);
        let mut a = DefaultFailureModel::new(SeedDeriver::new(3).rng("machine-failures"));
        let mut b = DefaultFailureModel::new(SeedDeriver::new(3).rng("machine-failures"));
        assert_eq!(
            a.next_failure_delay(flat_core),
            b.next_failure_delay(topo_core)
        );
    }

    #[test]
    fn machine_failure_kills_running_tasks() {
        let mut cfg = ClusterConfig::dedicated(4);
        cfg.failures = FailureConfig {
            task_failure_prob: Some(0.0),
            machine_failure_rate_per_hour: 1.0,
            tasks_per_machine: 2,
            data_loss_prob: 0.0,
            rack_failure_rate_per_hour: 0.0,
            replica_loss_prob: 0.0,
        };
        let mut engine = engine_with(cfg);
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None); // JobStart: 4 tasks running.
        let before = engine.core.jobs[0].running().len();
        assert!(before > 0);
        let mut model = DefaultFailureModel::new(SeedDeriver::new(7).rng("machine-failures"));
        model.on_machine_failure(&mut engine.core, SimTime::from_secs(1));
        let job = &engine.core.jobs[0];
        assert!(job.running().len() < before, "tasks must be killed");
        assert!(job.wasted > 0.0 || job.running().len() + job.ready.len() >= before);
    }
}
