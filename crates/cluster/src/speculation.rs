//! The speculative-execution policy seam: straggler detection and
//! clone-on-slow mitigation.
//!
//! Jockey's paper treats stragglers as noise the §4.3 controller reacts
//! to after the fact. The task-cloning line of work (Xu & Lau's
//! clone-on-slow with kill-on-first-finish, PCS's argument that the
//! scheduler should *expose* such knobs) makes speculation a first-class
//! control dimension instead. This module is the trait seam: the engine
//! dispatches a periodic [`Event::SpeculationTick`] to whichever
//! [`SpeculationPolicy`] is installed, and the policy acts through the
//! [`EngineCore`] mechanics — inspect running attempts, launch clones
//! with [`EngineCore::start_clone`]. Kill-on-first-finish itself lives
//! in the engine's completion mechanics, so no policy can leak sibling
//! attempts.
//!
//! The default [`CloneOnSlow`] policy is configuration-driven: with no
//! [`SpeculationConfig`](crate::config::SpeculationConfig) in the
//! [`ClusterConfig`](crate::config::ClusterConfig) it declares no watch
//! period, no `SpeculationTick` is ever scheduled, and the event stream
//! is bit-identical to the pre-speculation engine.
//!
//! [`Event::SpeculationTick`]: crate::engine::Event

use jockey_simrt::observe;
use jockey_simrt::observe::EntryKind;
use jockey_simrt::time::{SimDuration, SimTime};

use crate::engine::{attempt_timing, class_multiplier, EngineCore, TokenClass};

/// Decides when running attempts are stragglers and what to do about
/// them. Installed with
/// [`ClusterSim::set_speculation_policy`](crate::ClusterSim::set_speculation_policy);
/// the default is [`CloneOnSlow`].
pub trait SpeculationPolicy: Send {
    /// How often the engine should dispatch a watch tick, or `None` to
    /// keep speculation entirely out of the event stream. Consulted at
    /// prime time and after every tick, so a policy may stop watching
    /// mid-run.
    fn watch_period(&self, core: &EngineCore) -> Option<SimDuration>;

    /// One straggler scan at time `now`. Implementations act through
    /// the [`EngineCore`] mechanics (typically
    /// [`EngineCore::start_clone`]); the engine runs a scheduling pass
    /// after every tick, so a scan must be idempotent when nothing
    /// changed.
    fn watch(&mut self, core: &mut EngineCore, now: SimTime);
}

/// Speculation disabled regardless of configuration. Useful as the
/// explicit reference policy in equivalence tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoSpeculation;

impl SpeculationPolicy for NoSpeculation {
    fn watch_period(&self, _core: &EngineCore) -> Option<SimDuration> {
        None
    }

    fn watch(&mut self, _core: &mut EngineCore, _now: SimTime) {}
}

/// Clone-on-slow with kill-on-first-finish (the default policy).
///
/// Each watch tick compares every non-clone running attempt against its
/// *expected occupancy* — the per-stage queue/runtime distribution
/// means pushed through the engine's shared
/// [`attempt_timing`](crate::engine::attempt_timing) derivation, so
/// watcher and engine use one formula. An attempt whose elapsed
/// occupancy exceeds `slowdown_threshold` times its expectation gets a
/// clone, provided:
///
/// - the attempt has no live sibling already racing it,
/// - the job runs fewer than `clone_budget` clones,
/// - the cluster has an idle token (clones never displace guaranteed,
///   spare, or background demand — they only soak up slack).
///
/// The clone runs at full speed ([`TokenClass::Clone`]); whichever
/// sibling finishes first wins and the engine kills the rest.
#[derive(Clone, Copy, Debug, Default)]
pub struct CloneOnSlow;

impl SpeculationPolicy for CloneOnSlow {
    fn watch_period(&self, core: &EngineCore) -> Option<SimDuration> {
        core.config().speculation.as_ref().map(|sp| sp.watch_period)
    }

    fn watch(&mut self, core: &mut EngineCore, now: SimTime) {
        let Some(sp) = core.config().speculation.clone() else {
            return;
        };
        let total = core.config().total_tokens;
        core.background_mut().advance_to(now);
        let bg_demand = core.background().demand_tokens(now, total);
        let slowdown = core.background().slowdown(now);
        let spare_slowdown = core.config().spare_slowdown;

        // Tokens the whole cluster currently holds; clones below only
        // ever claim genuinely idle capacity.
        let mut held: u32 = bg_demand;
        for j in 0..core.num_jobs() {
            held += core.job(j).running().len() as u32;
        }

        for j in 0..core.num_jobs() {
            if !core.job(j).is_active() {
                continue;
            }
            let mut clones_running = core.job(j).running_in_class(TokenClass::Clone);
            // Collect straggling tasks first: launching a clone mutates
            // the running list under scan.
            let mut stragglers = Vec::new();
            {
                let job = core.job(j);
                let spec = job.spec();
                for r in job.running() {
                    if r.class == TokenClass::Clone {
                        continue;
                    }
                    // Already racing a sibling? One clone per straggler.
                    if job
                        .running()
                        .iter()
                        .any(|o| o.task == r.task && o.attempt != r.attempt)
                    {
                        continue;
                    }
                    let s = r.task.stage.index();
                    let (Some(run_mean), Some(queue_mean)) =
                        (spec.stage_runtimes[s].mean(), spec.stage_queues[s].mean())
                    else {
                        continue;
                    };
                    let class_mult = class_multiplier(r.class, spare_slowdown);
                    let (eq, er) = attempt_timing(queue_mean, run_mean, slowdown, class_mult, 1.0);
                    let expected = eq + er;
                    let elapsed = now.saturating_since(r.started).as_secs_f64();
                    if expected > 0.0 && elapsed > sp.slowdown_threshold * expected {
                        stragglers.push(r.task);
                    }
                }
            }
            for task in stragglers {
                if clones_running >= sp.clone_budget || held >= total {
                    break;
                }
                if core.start_clone(j, task, now, slowdown) {
                    clones_running += 1;
                    held += 1;
                    observe!(
                        core.observer,
                        now,
                        EntryKind::Decision,
                        "job {j}: straggler s{}/{} cloned ({clones_running}/{} clone tokens held)",
                        task.stage.index(),
                        task.index,
                        sp.clone_budget
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, SpeculationConfig};
    use crate::controller::FixedAllocation;
    use crate::job::JobSpec;
    use crate::sim::ClusterSim;
    use jockey_jobgraph::graph::JobGraphBuilder;
    use jockey_simrt::dist::{Constant, Dist};
    use std::sync::Arc;

    fn straggler_cfg(total: u32, guarantee: u32, budget: u32) -> ClusterConfig {
        let mut cfg = ClusterConfig::dedicated(total);
        cfg.max_guarantee = guarantee;
        cfg.speculation = Some(SpeculationConfig::clone_on_slow(2.0, budget));
        cfg
    }

    /// One stage whose runtime is a mixture: mostly 10 s, occasionally
    /// 600 s — a deterministic straggler factory under a fixed seed.
    fn heavy_tailed_spec(tasks: u32, p_straggle: f64) -> JobSpec {
        let mut b = JobGraphBuilder::new("straggler-job");
        b.stage("map", tasks);
        let graph = Arc::new(b.build().unwrap());
        let runtime = Dist::mixture(Constant(10.0), Constant(600.0), p_straggle);
        JobSpec::new(
            graph.clone(),
            vec![runtime],
            vec![Constant(0.0).into()],
            0.0,
            0.0,
        )
    }

    #[test]
    fn no_speculation_policy_declares_no_watch_period() {
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
        sim.set_speculation_policy(Box::new(NoSpeculation));
        sim.add_job(heavy_tailed_spec(4, 0.0), Box::new(FixedAllocation(4)));
        let r = sim.run_single();
        assert!(r.completed_at.is_some());
        assert_eq!(r.clone_task_count, 0);
    }

    #[test]
    fn clone_on_slow_is_inert_without_a_config() {
        // The default policy with no `cfg.speculation` never clones.
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 7);
        sim.add_job(heavy_tailed_spec(8, 0.3), Box::new(FixedAllocation(4)));
        let r = sim.run_single();
        assert!(r.completed_at.is_some());
        assert_eq!(r.clone_task_count, 0);
        assert_eq!(r.clone_wins, 0);
    }

    #[test]
    fn clone_on_slow_clones_stragglers_and_wins_races() {
        // 16 tasks, ~30% straggle to 600s against a 10s median; with a
        // 2x threshold and spare headroom the watcher must clone, and
        // with Constant mixtures the clone (re-drawing the mixture) has
        // a 70% shot at 10s per attempt — across several stragglers a
        // win is overwhelmingly likely at this seed.
        let mut sim = ClusterSim::new(straggler_cfg(24, 16, 8), 11);
        sim.add_job(heavy_tailed_spec(16, 0.3), Box::new(FixedAllocation(16)));
        let r = sim.run_single();
        assert!(r.completed_at.is_some(), "job must finish");
        assert!(r.clone_task_count > 0, "stragglers must be cloned");
        assert!(
            r.clone_wins > 0,
            "at least one clone must beat its straggler (got {} clones, {} wins)",
            r.clone_task_count,
            r.clone_wins
        );
        assert!(r.wasted_secs > 0.0, "lost race partials are wasted");
    }

    #[test]
    fn clone_budget_caps_concurrent_clones() {
        // Invariant checks are on in test builds: a budget violation
        // would panic inside the run.
        let mut sim = ClusterSim::new(straggler_cfg(18, 16, 2), 3);
        sim.add_job(heavy_tailed_spec(16, 0.5), Box::new(FixedAllocation(16)));
        let r = sim.run_single();
        assert!(r.completed_at.is_some());
    }

    #[test]
    fn clones_only_soak_idle_tokens() {
        // Guarantee fills the whole cluster: no idle token, no clones,
        // even though every attempt above threshold is a straggler.
        let mut cfg = ClusterConfig::dedicated(16);
        cfg.max_guarantee = 15;
        cfg.speculation = Some(SpeculationConfig::clone_on_slow(2.0, 1));
        let mut sim = ClusterSim::new(cfg, 5);
        sim.add_job(heavy_tailed_spec(16, 0.4), Box::new(FixedAllocation(15)));
        let r = sim.run_single();
        assert!(r.completed_at.is_some());
        // With 15 of 16 tokens guaranteed-held for most of the run, at
        // most one clone can ever be in flight; the budget cap (1) and
        // idle-token gate were both live. Run must not violate token
        // conservation (invariants are on in test builds).
        assert!(r.clone_task_count <= r.guaranteed_task_count);
    }
}
