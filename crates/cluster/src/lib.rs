//! A Cosmos-like shared-cluster simulator.
//!
//! This crate is the substrate the Jockey controller runs against: a
//! discrete-event simulator of a data-parallel cluster with the
//! scheduling mechanisms §2 of the paper identifies as the sources of
//! latency variance:
//!
//! - **Token scheduling**: each job is guaranteed a number of tokens;
//!   one running task consumes one token, released on completion
//!   (§2.1). A job's guarantee is the control knob Jockey actuates.
//! - **Spare capacity**: unused tokens are redistributed to jobs with
//!   pending tasks. Spare-class tasks run at lower priority — slower,
//!   and **evicted** when the capacity is reclaimed (§2.4). The
//!   availability of spare tokens fluctuates with the background load.
//! - **Background load**: an Ornstein–Uhlenbeck utilization process
//!   with occasional overload events stands in for the thousands of
//!   other jobs in the production cluster, driving both spare-token
//!   availability and a cluster-wide slowdown factor.
//! - **Failures**: per-task failure probability (rerun), and
//!   machine-failure events that kill running tasks and can force
//!   recomputation of completed tasks in unfinished stages — the
//!   "failures before a barrier particularly delay progress" effect.
//!
//! The same simulator doubles as Jockey's *offline job simulator*
//! (§4.1): configured with a fixed token allocation, no background load
//! and no spare capacity, it reproduces exactly the event set the paper
//! describes ("allocating tasks to machines, restarting failed tasks and
//! scheduling tasks as their inputs become available").
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use jockey_cluster::{ClusterConfig, ClusterSim, FixedAllocation, JobSpec};
//! use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
//! use jockey_simrt::dist::Constant;
//!
//! let mut b = JobGraphBuilder::new("tiny");
//! let m = b.stage("map", 4);
//! let r = b.stage("reduce", 2);
//! b.edge(m, r, EdgeKind::AllToAll);
//! let graph = Arc::new(b.build().unwrap());
//! let spec = JobSpec::uniform(graph, Constant(10.0), Constant(0.5), 0.0);
//!
//! let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 7);
//! sim.add_job(spec, Box::new(FixedAllocation(4)));
//! let results = sim.run();
//! assert!(results[0].completed_at.is_some());
//! ```

pub mod background;
pub mod config;
pub mod controller;
pub mod engine;
pub mod failure;
mod invariants;
pub mod job;
pub mod placement;
pub mod scheduler;
pub mod sim;
pub mod speculation;
pub mod topology;
pub mod trace;
pub mod workspace;

pub use background::BackgroundModel;
pub use config::{
    BackgroundConfig, ClusterConfig, FailureConfig, InvalidClusterConfig, SpeculationConfig,
};
pub use controller::{ControlDecision, FixedAllocation, JobController, JobStatus};
pub use engine::{EngineCore, JobRun, RunningTask, TaskState, TaskTable, TokenClass};
pub use failure::{DefaultFailureModel, FailureModel};
pub use job::JobSpec;
pub use placement::PlacementConfig;
pub use scheduler::{SchedulerPolicy, WeightedFair};
pub use sim::{ClusterSim, JobResult, RunHooks};
pub use speculation::{CloneOnSlow, NoSpeculation, SpeculationPolicy};
pub use topology::{
    ClusterTopology, LocalityFirst, MachineClass, PlacementPolicy, RandomPlacement, TopologyConfig,
};
pub use trace::RunTrace;
pub use workspace::SimWorkspace;
