//! Job specifications: what the simulator needs to execute a job.

use jockey_jobgraph::graph::JobGraph;
use jockey_jobgraph::profile::JobProfile;
use jockey_simrt::dist::Dist;
use std::sync::Arc;

/// Everything needed to execute one job in the simulator: the plan
/// graph plus per-stage task runtime and queueing distributions and a
/// task-failure probability.
///
/// Distributions are stored as the concrete [`Dist`] enum so the
/// engine's per-task-attempt draws dispatch by `match` over a
/// statically-typed RNG instead of through `Arc<dyn Sample>` vtables —
/// this is the simulator's hottest call. Custom `Sample`
/// implementations still fit via [`Dist::custom`].
///
/// Two construction paths exist:
///
/// - [`JobSpec::from_profile`] replays a measured [`JobProfile`] by
///   resampling its empirical distributions — this is what Jockey's
///   offline simulator does (§4.1);
/// - workload generators build specs from parametric distributions
///   directly (see `jockey-workloads`).
#[derive(Clone)]
pub struct JobSpec {
    /// The execution-plan graph.
    pub graph: Arc<JobGraph>,
    /// Per-stage task runtime distributions (seconds), indexed by stage.
    pub stage_runtimes: Vec<Dist>,
    /// Per-stage task queueing/initialization distributions (seconds).
    pub stage_queues: Vec<Dist>,
    /// Probability that a task attempt fails and must rerun.
    pub task_failure_prob: f64,
    /// Total input data in gigabytes (informational; reported in
    /// Table 2).
    pub data_gb: f64,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("job", &self.graph.name())
            .field("stages", &self.graph.num_stages())
            .field("tasks", &self.graph.total_tasks())
            .field("task_failure_prob", &self.task_failure_prob)
            .field("data_gb", &self.data_gb)
            .finish()
    }
}

impl JobSpec {
    /// Builds a spec with the same runtime and queue distribution for
    /// every stage — convenient in tests.
    ///
    /// # Panics
    ///
    /// Panics if `task_failure_prob` is outside `[0, 1]`.
    pub fn uniform(
        graph: Arc<JobGraph>,
        runtime: impl Into<Dist>,
        queue: impl Into<Dist>,
        task_failure_prob: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&task_failure_prob));
        let runtime = runtime.into();
        let queue = queue.into();
        let n = graph.num_stages();
        JobSpec {
            graph,
            stage_runtimes: vec![runtime; n],
            stage_queues: vec![queue; n],
            task_failure_prob,
            data_gb: 0.0,
        }
    }

    /// Builds a spec from per-stage distributions.
    ///
    /// # Panics
    ///
    /// Panics if the distribution vectors don't match the stage count
    /// or the failure probability is out of range.
    pub fn new(
        graph: Arc<JobGraph>,
        stage_runtimes: Vec<Dist>,
        stage_queues: Vec<Dist>,
        task_failure_prob: f64,
        data_gb: f64,
    ) -> Self {
        assert_eq!(stage_runtimes.len(), graph.num_stages());
        assert_eq!(stage_queues.len(), graph.num_stages());
        assert!((0.0..=1.0).contains(&task_failure_prob));
        JobSpec {
            graph,
            stage_runtimes,
            stage_queues,
            task_failure_prob,
            data_gb,
        }
    }

    /// Builds a spec that replays a measured profile by resampling its
    /// per-stage empirical distributions — the paper's offline
    /// simulator input.
    ///
    /// Stages with no recorded samples (possible in truncated runs)
    /// fall back to a 1-second constant runtime and zero queueing.
    ///
    /// # Panics
    ///
    /// Panics if the profile's stage count differs from the graph's.
    pub fn from_profile(graph: Arc<JobGraph>, profile: &JobProfile) -> Self {
        assert_eq!(graph.num_stages(), profile.stages.len());
        let stage_runtimes: Vec<Dist> = profile
            .stages
            .iter()
            .map(|s| {
                if s.runtimes.is_empty() {
                    Dist::from(jockey_simrt::dist::Constant(1.0))
                } else {
                    Dist::from(s.runtime_dist())
                }
            })
            .collect();
        let stage_queues: Vec<Dist> = profile
            .stages
            .iter()
            .map(|s| {
                if s.queue_times.is_empty() {
                    Dist::from(jockey_simrt::dist::Constant(0.0))
                } else {
                    Dist::from(s.queue_dist())
                }
            })
            .collect();
        JobSpec {
            graph,
            stage_runtimes,
            stage_queues,
            task_failure_prob: profile.task_failure_prob,
            data_gb: profile.total_data_gb,
        }
    }

    /// Expected total work in task-seconds, when stage means are known.
    pub fn expected_work(&self) -> Option<f64> {
        let mut total = 0.0;
        for (sid, dist) in self.graph.stage_ids().zip(&self.stage_runtimes) {
            total += dist.mean()? * f64::from(self.graph.tasks_in(sid));
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_jobgraph::profile::ProfileBuilder;
    use jockey_jobgraph::StageId;
    use jockey_simrt::dist::Constant;

    fn graph() -> Arc<JobGraph> {
        let mut b = JobGraphBuilder::new("j");
        let m = b.stage("m", 3);
        let r = b.stage("r", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn uniform_replicates_distributions() {
        let spec = JobSpec::uniform(graph(), Constant(5.0), Constant(1.0), 0.1);
        assert_eq!(spec.stage_runtimes.len(), 2);
        assert_eq!(spec.expected_work(), Some(25.0));
    }

    #[test]
    fn from_profile_resamples_empirically() {
        let g = graph();
        let mut pb = ProfileBuilder::new(&g);
        pb.record_task(StageId(0), 1.0, 4.0, false);
        pb.record_task(StageId(1), 0.0, 8.0, false);
        let profile = pb.finish(12.0, 50.0);
        let spec = JobSpec::from_profile(g, &profile);
        assert_eq!(spec.data_gb, 50.0);
        assert_eq!(spec.task_failure_prob, 0.0);
        // Stage 0 empirical has a single value 4.0.
        let mut rng = jockey_simrt::rng::SeedDeriver::new(0).rng("t");
        assert_eq!(spec.stage_runtimes[0].sample_with(&mut rng), 4.0);
    }

    #[test]
    fn from_profile_handles_empty_stages() {
        let g = graph();
        let profile = ProfileBuilder::new(&g).finish(1.0, 0.0);
        let spec = JobSpec::from_profile(g, &profile);
        let mut rng = jockey_simrt::rng::SeedDeriver::new(0).rng("t");
        assert_eq!(spec.stage_runtimes[0].sample_with(&mut rng), 1.0);
        assert_eq!(spec.stage_queues[0].sample_with(&mut rng), 0.0);
    }

    #[test]
    #[should_panic]
    fn new_rejects_wrong_lengths() {
        let g = graph();
        JobSpec::new(g, vec![], vec![], 0.0, 0.0);
    }
}
