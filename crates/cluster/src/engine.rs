//! The event-loop core of the cluster simulator.
//!
//! [`EngineCore`] owns the mutable simulation state — jobs, the event
//! queue, the background model, diagnostics — and the *mechanics* every
//! policy layer composes: starting task attempts, killing or evicting
//! running tasks, and rolling back lost outputs. The [`Engine`] drives
//! the discrete-event loop and delegates every policy decision through
//! two trait seams:
//!
//! - [`SchedulerPolicy`](crate::scheduler::SchedulerPolicy) — token and
//!   spare-capacity arbitration (who runs, in which class, who is
//!   evicted under pressure);
//! - [`FailureModel`](crate::failure::FailureModel) — task-attempt
//!   failures, machine-failure arrivals and their blast radius.
//!
//! Implementation notes that matter:
//!
//! - **Stale-event filtering**: task completions are scheduled when the
//!   task starts; if the task is evicted or killed before the event
//!   fires, the event is recognized as stale by an attempt counter and
//!   ignored.
//! - **Token classes**: a task runs as `Guaranteed` (within the job's
//!   guarantee) or `Spare`. Class changes in flight (upgrades on a
//!   guarantee increase, demotions on a decrease) alter eviction
//!   priority but not the already-sampled completion time.
//! - **Data loss**: machine failures may force recomputation of
//!   completed tasks, but only in *incomplete* stages — outputs of
//!   fully completed stages are treated as durably replicated.

use std::collections::VecDeque;
use std::sync::Arc;

use jockey_jobgraph::profile::ProfileBuilder;
use jockey_jobgraph::task::{TaskDeps, TaskId};
use jockey_simrt::event::EventQueue;
use jockey_simrt::observe;
use jockey_simrt::observe::{EntryKind, NoopObserver, ProgressSink, SimObserver};
use jockey_simrt::rng::SeedDeriver;
use jockey_simrt::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

use crate::background::BackgroundModel;
use crate::config::ClusterConfig;
use crate::controller::{ControlDecision, JobController, JobStatus};
use crate::failure::{DefaultFailureModel, FailureModel};
use crate::invariants;
use crate::job::JobSpec;
use crate::scheduler::{SchedulerPolicy, WeightedFair};
use crate::speculation::{CloneOnSlow, SpeculationPolicy};
use crate::topology::{ClusterTopology, LocalityFirst, PlacementPolicy};
use crate::trace::RunTrace;
use crate::workspace::{JobBuffers, SimWorkspace};

/// Token class a running task occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenClass {
    /// Within the job's guarantee: never evicted for capacity.
    Guaranteed,
    /// Opportunistic spare capacity: evictable and slowed down.
    Spare,
    /// A speculative clone racing a straggling sibling attempt on an
    /// idle token (clone-on-slow). Runs at full speed, is never evicted
    /// for capacity, and dies when any sibling attempt finishes first.
    Clone,
}

/// The runtime multiplier a token class imposes: spare-class attempts
/// run slowed by `spare_slowdown`; guaranteed attempts and speculative
/// clones (which exist to *beat* a straggler) run at full speed.
#[inline]
pub(crate) fn class_multiplier(class: TokenClass, spare_slowdown: f64) -> f64 {
    match class {
        TokenClass::Guaranteed | TokenClass::Clone => 1.0,
        TokenClass::Spare => spare_slowdown,
    }
}

/// The single source of truth for per-attempt timing: queueing seconds
/// scale by the background slowdown; execution seconds additionally
/// scale by the token-class and locality multipliers. Shared by the
/// start paths (with sampled bases) and the speculation watcher (with
/// distribution means), so the straggler test and the engine can never
/// disagree about what "expected occupancy" means.
#[inline]
pub(crate) fn attempt_timing(
    base_queue: f64,
    base_run: f64,
    slowdown: f64,
    class_mult: f64,
    locality_mult: f64,
) -> (f64, f64) {
    let queue_secs = base_queue * slowdown;
    let run_secs = base_run * slowdown * class_mult * locality_mult;
    (queue_secs, run_secs)
}

/// Per-task lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TaskState {
    /// Dependencies not yet satisfied.
    Pending,
    /// Ready to run; present in the ready queue.
    Ready,
    /// Occupying a token; the attempt number identifies the scheduled
    /// completion event.
    Running {
        /// Attempt counter at the time the task started.
        attempt: u32,
    },
    /// Completed; remembers the attempt's execution seconds so that
    /// recomputation can roll back work accounting.
    Done {
        /// Execution seconds of the completing attempt.
        run_secs: f64,
    },
}

/// Flat struct-of-arrays task state: one dense slot per task vertex.
///
/// Stage `s` occupies slots `offsets[s] .. offsets[s + 1]`; a task's
/// slot is `offsets[stage] + index`. Replacing the former per-stage
/// `Vec<Vec<_>>` nesting with flat parallel arrays keeps the whole
/// table in two cache-friendly allocations (instead of one heap object
/// per stage), makes per-run resets a pair of `fill`s, and pools
/// across runs via `JobBuffers`.
#[derive(Clone, Debug, Default)]
pub struct TaskTable {
    state: Vec<TaskState>,
    attempts: Vec<u32>,
    /// Prefix sums of per-stage task counts; `offsets[num_stages]` is
    /// the total slot count.
    offsets: Vec<u32>,
}

impl TaskTable {
    /// Rebuilds the table for `graph` (all tasks `Pending`, zero
    /// attempts), reusing the existing allocations.
    pub(crate) fn reset_for(&mut self, graph: &jockey_jobgraph::graph::JobGraph) {
        self.offsets.clear();
        self.offsets.push(0);
        let mut total: u32 = 0;
        for s in graph.stage_ids() {
            total += graph.tasks_in(s);
            self.offsets.push(total);
        }
        self.state.clear();
        self.state.resize(total as usize, TaskState::Pending);
        self.attempts.clear();
        self.attempts.resize(total as usize, 0);
    }

    #[inline]
    fn slot(&self, t: TaskId) -> usize {
        self.offsets[t.stage.index()] as usize + t.index as usize
    }

    /// Lifecycle state of one task.
    #[inline]
    pub fn state(&self, t: TaskId) -> TaskState {
        self.state[self.slot(t)]
    }

    #[inline]
    pub(crate) fn set_state(&mut self, t: TaskId, s: TaskState) {
        let i = self.slot(t);
        self.state[i] = s;
    }

    /// The task's attempt counter.
    #[inline]
    pub fn attempts(&self, t: TaskId) -> u32 {
        self.attempts[self.slot(t)]
    }

    /// Increments and returns the task's attempt counter.
    #[inline]
    pub(crate) fn bump_attempts(&mut self, t: TaskId) -> u32 {
        let i = self.slot(t);
        self.attempts[i] += 1;
        self.attempts[i]
    }

    /// Per-slot lifecycle states of stage `s`.
    pub(crate) fn stage_states(&self, s: usize) -> &[TaskState] {
        &self.state[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }

    /// Total task slots in the table.
    #[cfg(test)]
    pub(crate) fn total(&self) -> usize {
        self.state.len()
    }
}

/// A task currently occupying a token.
#[derive(Clone, Copy, Debug)]
pub struct RunningTask {
    /// The task.
    pub task: TaskId,
    /// Attempt number; identifies the scheduled completion event.
    pub attempt: u32,
    /// Token class the attempt currently occupies.
    pub class: TokenClass,
    /// When the attempt started.
    pub started: SimTime,
    /// Sampled queueing seconds of this attempt.
    pub queue_secs: f64,
    /// Sampled execution seconds of this attempt.
    pub run_secs: f64,
    /// Hosting machine (placement model only).
    pub machine: Option<u32>,
}

/// Simulation events.
pub(crate) enum Event {
    JobStart {
        job: usize,
    },
    TaskDone {
        job: usize,
        task: TaskId,
        attempt: u32,
    },
    ControlTick {
        job: usize,
    },
    BackgroundTick,
    /// Periodic straggler scan (only scheduled when a
    /// [`SpeculationPolicy`](crate::speculation::SpeculationPolicy)
    /// declares a watch period).
    SpeculationTick,
    MachineFailure,
    RackFailure,
    DeadlineChange {
        job: usize,
        new_deadline: SimDuration,
    },
}

/// One job's dynamic state inside the simulator.
pub struct JobRun {
    pub(crate) spec: Arc<JobSpec>,
    pub(crate) controller: Box<dyn JobController>,
    pub(crate) start_at: SimTime,
    pub(crate) started: Option<SimTime>,
    pub(crate) finished_at: Option<SimTime>,
    pub(crate) tasks: TaskTable,
    pub(crate) completed: Vec<u32>,
    pub(crate) done_tasks: u64,
    pub(crate) ready: VecDeque<TaskId>,
    pub(crate) running: Vec<RunningTask>,
    pub(crate) guarantee: u32,
    pub(crate) work_done: f64,
    pub(crate) wasted: f64,
    pub(crate) guaranteed_task_count: u64,
    pub(crate) spare_task_count: u64,
    /// Speculative clone attempts launched (clone-on-slow).
    pub(crate) clone_task_count: u64,
    /// Completions won by a clone (the straggler lost the race).
    pub(crate) clone_wins: u64,
    pub(crate) profile: ProfileBuilder,
    pub(crate) trace: RunTrace,
    /// Scratch [`JobStatus`] refreshed in place before each controller
    /// consult, so the hot path never allocates per tick.
    pub(crate) status: JobStatus,
    pub(crate) rng_runtime: StdRng,
    pub(crate) rng_queue: StdRng,
    pub(crate) rng_fail: StdRng,
    /// Replica machines per `(stage, split)` under the topology model,
    /// indexed `stage.index() * data_splits + (task.index % data_splits)`.
    /// Empty in the flat model.
    pub(crate) replicas: Vec<Vec<u32>>,
}

impl JobRun {
    /// The job's spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Total tasks across all stages.
    pub fn total_tasks(&self) -> u64 {
        self.spec.graph.total_tasks()
    }

    /// True once every task has completed.
    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// True while the job has started but not finished.
    pub fn is_active(&self) -> bool {
        self.started.is_some() && self.finished_at.is_none()
    }

    /// The job's current token guarantee.
    pub fn guarantee(&self) -> u32 {
        self.guarantee
    }

    /// Tasks currently occupying tokens.
    pub fn running(&self) -> &[RunningTask] {
        &self.running
    }

    /// Mutable running list; schedulers may reclassify tasks in place.
    /// Removal must go through [`EngineCore::evict_spare`] (or the kill
    /// paths) so requeue bookkeeping stays consistent.
    pub fn running_mut(&mut self) -> &mut [RunningTask] {
        &mut self.running
    }

    /// Running tasks occupying the given token class.
    pub fn running_in_class(&self, class: TokenClass) -> u32 {
        self.running.iter().filter(|r| r.class == class).count() as u32
    }

    /// The lifecycle state of one task.
    pub fn task_state(&self, t: TaskId) -> TaskState {
        self.tasks.state(t)
    }

    pub(crate) fn set_task_state(&mut self, t: TaskId, s: TaskState) {
        self.tasks.set_state(t, s);
    }

    /// Pops ready tasks, skipping stale queue entries.
    pub fn pop_ready(&mut self) -> Option<TaskId> {
        while let Some(t) = self.ready.pop_front() {
            if self.task_state(t) == TaskState::Ready {
                return Some(t);
            }
        }
        None
    }

    /// Refreshes the job's scratch [`JobStatus`] in place.
    pub(crate) fn refresh_status(&mut self, now: SimTime) {
        let graph = &self.spec.graph;
        self.status.now = now;
        self.status.elapsed = now.saturating_since(self.started.unwrap_or(now));
        self.status.stage_fraction.clear();
        self.status.stage_fraction.extend(
            graph
                .stage_ids()
                .map(|s| f64::from(self.completed[s.index()]) / f64::from(graph.tasks_in(s))),
        );
        self.status.stage_completed.clone_from(&self.completed);
        self.status.running = self.running.len() as u32;
        self.status.running_guaranteed = self.running_in_class(TokenClass::Guaranteed);
        self.status.guarantee = self.guarantee;
        self.status.work_done = self.work_done;
        self.status.finished = self.is_finished();
    }
}

/// The mutable simulation state plus the mechanics every policy layer
/// composes.
///
/// A [`SchedulerPolicy`](crate::scheduler::SchedulerPolicy) or
/// [`FailureModel`](crate::failure::FailureModel) receives `&mut
/// EngineCore` and acts through the mechanics methods ([`start_task`]
/// [`evict_spare`], [`kill_running_tasks`], ...) — the engine keeps the
/// event queue, stale-attempt filtering and accounting consistent so
/// policies cannot corrupt the run.
///
/// [`start_task`]: EngineCore::start_task
/// [`evict_spare`]: EngineCore::evict_spare
/// [`kill_running_tasks`]: EngineCore::kill_running_tasks
pub struct EngineCore {
    pub(crate) cfg: ClusterConfig,
    pub(crate) jobs: Vec<JobRun>,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) background: BackgroundModel,
    pub(crate) seeds: SeedDeriver,
    pub(crate) observer: Box<dyn SimObserver>,
    pub(crate) invariants_enabled: bool,
    /// When true (the default), the run loop may drain batches of
    /// same-instant task completions through one merged scheduling pass
    /// — the dense-kernel fast path. Only engaged when the batching
    /// gate holds (see [`Engine::run_loop`]); turned off by equivalence
    /// tests to pin the per-event reference semantics.
    pub(crate) batching_enabled: bool,
    /// Time of the most recently dispatched event (event-time
    /// monotonicity invariant).
    pub(crate) last_event_time: SimTime,
    /// Per-job, per-stage floor on completed-task counts (monotone
    /// stage-fraction invariant); lowered explicitly when a data-loss
    /// event legitimately rolls completions back.
    pub(crate) completed_floor: Vec<Vec<u32>>,
    /// When false, skip per-task profile recording (training hot path).
    pub(crate) record_profile: bool,
    /// When false, skip control-trace recording (training hot path).
    pub(crate) record_trace: bool,
    /// Reusable dependent-candidate buffer for task completions.
    pub(crate) cand_scratch: Vec<TaskId>,
    /// Reclaimed per-job buffers available for the next `add_job`.
    pub(crate) spare_buffers: Vec<JobBuffers>,
    /// Realized topology, built once from `cfg.topology`. `None` runs
    /// the legacy flat model bit-identically.
    pub(crate) topology: Option<ClusterTopology>,
    /// Placement decisions under the topology model (unused when flat).
    pub(crate) placement_policy: Box<dyn PlacementPolicy>,
    /// Scratch per-machine running-task counts, refreshed before each
    /// topology placement decision.
    pub(crate) machine_load: Vec<u32>,
}

impl EngineCore {
    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The background-load model.
    pub fn background(&self) -> &BackgroundModel {
        &self.background
    }

    /// Mutable background-load model (schedulers advance it to `now`).
    pub fn background_mut(&mut self) -> &mut BackgroundModel {
        &mut self.background
    }

    /// Number of jobs in the simulation.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// One job's dynamic state.
    pub fn job(&self, j: usize) -> &JobRun {
        &self.jobs[j]
    }

    /// Mutable access to one job's dynamic state.
    pub fn job_mut(&mut self, j: usize) -> &mut JobRun {
        &mut self.jobs[j]
    }

    pub(crate) fn add_job_at(
        &mut self,
        spec: Arc<JobSpec>,
        controller: Box<dyn JobController>,
        start_at: SimTime,
    ) -> usize {
        let idx = self.jobs.len();
        let graph = spec.graph.clone();
        // Clone-on-slow sizes its straggler threshold from the
        // per-stage distribution means; a spec whose stages have no
        // finite mean (e.g. Pareto with alpha <= 1) cannot be watched.
        if self.cfg.speculation.is_some() {
            for s in graph.stage_ids() {
                assert!(
                    spec.stage_runtimes[s.index()].mean().is_some()
                        && spec.stage_queues[s.index()].mean().is_some(),
                    "speculation requires per-stage runtime/queue distributions with finite \
                     means, but stage {} of job {:?} has none",
                    s.index(),
                    graph.name()
                );
            }
        }
        let mut buf = self.spare_buffers.pop().unwrap_or_default();
        buf.reset_for(&graph);
        let JobBuffers {
            tasks,
            completed,
            floor,
            ready,
            running,
            stage_fraction,
            stage_completed,
        } = buf;
        let job = JobRun {
            controller,
            start_at,
            started: None,
            finished_at: None,
            tasks,
            completed,
            done_tasks: 0,
            ready,
            running,
            guarantee: 0,
            work_done: 0.0,
            wasted: 0.0,
            guaranteed_task_count: 0,
            spare_task_count: 0,
            clone_task_count: 0,
            clone_wins: 0,
            // With profiling off (the training hot path) the builder is
            // the allocation-free empty one; `record_task`/
            // `record_stage_window` are already gated on the same flag.
            profile: if self.record_profile {
                ProfileBuilder::new(&graph)
            } else {
                ProfileBuilder::empty()
            },
            trace: RunTrace::new(),
            status: JobStatus {
                now: SimTime::ZERO,
                elapsed: SimDuration::ZERO,
                stage_fraction,
                stage_completed,
                running: 0,
                running_guaranteed: 0,
                guarantee: 0,
                work_done: 0.0,
                finished: false,
            },
            rng_runtime: self.seeds.rng_indexed("job-runtime", idx as u64),
            rng_queue: self.seeds.rng_indexed("job-queue", idx as u64),
            rng_fail: self.seeds.rng_indexed("job-fail", idx as u64),
            // Replica placement draws from its own derived stream, so
            // enabling the topology perturbs no legacy stream (the seed
            // deriver is stateless: streams are independent by label).
            replicas: match &self.topology {
                Some(topo) => {
                    let mut rng = self.seeds.rng_indexed("job-replicas", idx as u64);
                    let splits = topo.data_splits() as usize;
                    (0..graph.num_stages() * splits)
                        .map(|_| topo.assign_replicas(&mut rng))
                        .collect()
                }
                None => Vec::new(),
            },
            spec,
        };
        self.jobs.push(job);
        self.completed_floor.push(floor);
        observe!(
            self.observer,
            start_at,
            EntryKind::RngFork,
            "job {idx}: streams \"job-runtime\"/\"job-queue\"/\"job-fail\" forked"
        );
        idx
    }

    /// Machines in the simulated slice: the topology's realized count
    /// when one is configured, explicit under the placement model,
    /// otherwise implied by token count and machine size. The
    /// per-machine failure hazard scales by this count, so aggregate
    /// failure behavior tracks the cluster actually simulated —
    /// including heterogeneous topologies.
    pub fn machine_count(&self) -> u32 {
        match (&self.topology, &self.cfg.placement) {
            (Some(t), _) => t.machine_count(),
            (None, Some(p)) => p.machines,
            (None, None) => self
                .cfg
                .total_tokens
                .div_ceil(self.cfg.failures.tasks_per_machine.max(1)),
        }
    }

    /// The realized topology, when one is configured.
    pub fn topology(&self) -> Option<&ClusterTopology> {
        self.topology.as_ref()
    }

    /// Starts one task attempt of job `j` in the given token class and
    /// schedules its completion event. `slowdown` is the background
    /// runtime multiplier at `now`.
    ///
    /// # Panics
    ///
    /// Debug builds assert the task is `Ready`.
    pub fn start_task(
        &mut self,
        j: usize,
        task: TaskId,
        class: TokenClass,
        now: SimTime,
        slowdown: f64,
    ) {
        debug_assert_eq!(self.jobs[j].task_state(task), TaskState::Ready);
        self.launch_attempt(j, task, class, now, slowdown);
    }

    /// Launches a speculative clone of a *running* task of job `j` on
    /// an idle token (clone-on-slow). The clone races its straggling
    /// sibling; whichever attempt finishes first wins and the losers
    /// are killed ([`task_done_mechanics`]'s kill-on-first-finish).
    /// Returns `false` (and does nothing) if the task is not running —
    /// it may have completed between the watcher's scan and this call.
    ///
    /// [`task_done_mechanics`]: crate::engine::Engine
    pub fn start_clone(&mut self, j: usize, task: TaskId, now: SimTime, slowdown: f64) -> bool {
        if !matches!(self.jobs[j].task_state(task), TaskState::Running { .. }) {
            return false;
        }
        self.launch_attempt(j, task, TokenClass::Clone, now, slowdown);
        true
    }

    /// The shared attempt-launch mechanics behind [`start_task`] and
    /// [`start_clone`]: samples the attempt's timing, places it, bumps
    /// the class counters, records the running entry and schedules the
    /// completion event. RNG draw order (runtime, queue, placement) is
    /// part of the bit-identical contract.
    ///
    /// [`start_task`]: EngineCore::start_task
    /// [`start_clone`]: EngineCore::start_clone
    fn launch_attempt(
        &mut self,
        j: usize,
        task: TaskId,
        class: TokenClass,
        now: SimTime,
        slowdown: f64,
    ) {
        // Refresh the per-machine load scratch before borrowing the job
        // mutably: the placement policy sees every job's residents.
        if let Some(topo) = &self.topology {
            self.machine_load.clear();
            self.machine_load.resize(topo.machine_count() as usize, 0);
            for job in &self.jobs {
                for r in &job.running {
                    if let Some(m) = r.machine {
                        self.machine_load[m as usize] += 1;
                    }
                }
            }
        }
        let job = &mut self.jobs[j];
        let s = task.stage.index();
        let attempt = job.tasks.bump_attempts(task);

        // Statically-dispatched draws: `Dist::sample_with` monomorphizes
        // over `StdRng`, the simulator's hottest call.
        let base_run = job.spec.stage_runtimes[s].sample_with(&mut job.rng_runtime);
        let base_queue = job.spec.stage_queues[s].sample_with(&mut job.rng_queue);
        let class_mult = class_multiplier(class, self.cfg.spare_slowdown);
        // Machine placement. Under a topology the policy picks a host
        // and the multiplier *derives* from where the task landed
        // relative to its input replicas (machine class x locality);
        // under the legacy placement model it is a uniform draw plus a
        // locality coin-flip; flat mode consumes no extra draws.
        let (machine, locality_mult) = match (&self.topology, &self.cfg.placement) {
            (Some(topo), _) => {
                let split = (task.index % topo.data_splits()) as usize;
                let replicas = &job.replicas[s * topo.data_splits() as usize + split];
                let m = self.placement_policy.place(
                    topo,
                    &self.machine_load,
                    replicas,
                    &mut job.rng_queue,
                );
                (Some(m), topo.runtime_multiplier(m, replicas))
            }
            (None, Some(p)) => {
                let (m, mult) = p.place(&mut job.rng_queue);
                (Some(m), mult)
            }
            (None, None) => (None, 1.0),
        };
        let (queue_secs, run_secs) =
            attempt_timing(base_queue, base_run, slowdown, class_mult, locality_mult);

        match class {
            TokenClass::Guaranteed => job.guaranteed_task_count += 1,
            TokenClass::Spare => job.spare_task_count += 1,
            TokenClass::Clone => job.clone_task_count += 1,
        }
        job.set_task_state(task, TaskState::Running { attempt });
        job.running.push(RunningTask {
            task,
            attempt,
            class,
            started: now,
            queue_secs,
            run_secs,
            machine,
        });
        observe!(
            self.observer,
            now,
            EntryKind::Task,
            "job {j}: start s{}/{} attempt {attempt} class={class:?} queue={queue_secs:.2}s run={run_secs:.2}s machine={machine:?}",
            task.stage.index(),
            task.index
        );
        let occupancy =
            SimDuration::from_secs_f64(queue_secs + run_secs).max(SimDuration::from_millis(1));
        self.queue.schedule(
            now + occupancy,
            Event::TaskDone {
                job: j,
                task,
                attempt,
            },
        );
    }

    /// Evicts the running task at `pos` in job `j`'s running list under
    /// capacity pressure: partial work is wasted and the task requeues.
    /// Unlike the kill paths this records no profile failure — eviction
    /// is a scheduling decision, not a task fault.
    pub fn evict_spare(&mut self, j: usize, pos: usize, now: SimTime) {
        let job = &mut self.jobs[j];
        let victim = job.running.swap_remove(pos);
        let elapsed = now.saturating_since(victim.started).as_secs_f64();
        job.wasted += elapsed.min(victim.run_secs);
        job.set_task_state(victim.task, TaskState::Ready);
        job.ready.push_back(victim.task);
        observe!(
            self.observer,
            now,
            EntryKind::Task,
            "job {j}: spare task s{}/{} evicted under capacity pressure",
            victim.task.stage.index(),
            victim.task.index
        );
    }

    /// Kills every running task of job `j` hosted on `machine`
    /// (placement model's machine-failure semantics).
    pub fn kill_tasks_on_machine(&mut self, j: usize, machine: u32, now: SimTime) {
        let record_profile = self.record_profile;
        let job = &mut self.jobs[j];
        let mut killed: u32 = 0;
        let mut i = 0;
        while i < job.running.len() {
            if job.running[i].machine == Some(machine) {
                let victim = job.running.swap_remove(i);
                let elapsed = now.saturating_since(victim.started).as_secs_f64();
                job.wasted += elapsed.min(victim.run_secs);
                if record_profile {
                    job.profile.record_task(
                        victim.task.stage,
                        victim.queue_secs,
                        elapsed.min(victim.run_secs),
                        true,
                    );
                }
                job.set_task_state(victim.task, TaskState::Ready);
                job.ready.push_back(victim.task);
                killed += 1;
            } else {
                i += 1;
            }
        }
        if killed > 0 {
            observe!(
                self.observer,
                now,
                EntryKind::Task,
                "job {j}: machine {machine} died, {killed} resident tasks killed"
            );
        }
    }

    /// Kills up to `count` randomly chosen running tasks of job `j`;
    /// they re-queue and rerun from scratch.
    pub fn kill_running_tasks(&mut self, j: usize, count: u32, now: SimTime) {
        let record_profile = self.record_profile;
        let job = &mut self.jobs[j];
        let mut killed: u32 = 0;
        for _ in 0..count {
            if job.running.is_empty() {
                break;
            }
            let pos = rand::Rng::gen_range(&mut job.rng_fail, 0..job.running.len());
            let victim = job.running.swap_remove(pos);
            let elapsed = now.saturating_since(victim.started).as_secs_f64();
            job.wasted += elapsed.min(victim.run_secs);
            if record_profile {
                job.profile.record_task(
                    victim.task.stage,
                    victim.queue_secs,
                    elapsed.min(victim.run_secs),
                    true,
                );
            }
            job.set_task_state(victim.task, TaskState::Ready);
            job.ready.push_back(victim.task);
            killed += 1;
        }
        observe!(
            self.observer,
            now,
            EntryKind::Task,
            "job {j}: machine failure killed {killed} of up to {count} running tasks"
        );
    }

    /// Destroys the outputs of up to `count` completed tasks in one
    /// randomly chosen *incomplete* stage of job `j`, forcing their
    /// recomputation. One-to-one dependents that were only Ready are
    /// demoted back to Pending.
    pub fn lose_completed_outputs(&mut self, j: usize, count: u32, now: SimTime) {
        let graph = self.jobs[j].spec.graph.clone();
        let deps = TaskDeps::new(&graph);
        let job = &mut self.jobs[j];

        // Candidate stages: incomplete, with at least one done task.
        let candidates: Vec<_> = graph
            .stage_ids()
            .filter(|s| {
                let done = job.completed[s.index()];
                done > 0 && done < graph.tasks_in(*s)
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        let stage = candidates[rand::Rng::gen_range(&mut job.rng_fail, 0..candidates.len())];

        // Collect done tasks of that stage whose one-to-one children
        // have not started (undoing them is then safe).
        let undoable: Vec<TaskId> = (0..graph.tasks_in(stage))
            .map(|i| TaskId::new(stage, i))
            .filter(|&t| matches!(job.task_state(t), TaskState::Done { .. }))
            .filter(|&t| {
                graph.children(stage).iter().all(|&(c, kind)| match kind {
                    jockey_jobgraph::graph::EdgeKind::OneToOne => matches!(
                        job.task_state(TaskId::new(c, t.index)),
                        TaskState::Pending | TaskState::Ready
                    ),
                    // Barrier children can't have started: stage is incomplete.
                    jockey_jobgraph::graph::EdgeKind::AllToAll => true,
                })
            })
            .collect();

        for &t in undoable.iter().take(count as usize) {
            let TaskState::Done { run_secs } = job.task_state(t) else {
                continue;
            };
            job.work_done -= run_secs;
            job.wasted += run_secs;
            job.completed[stage.index()] -= 1;
            job.done_tasks -= 1;
            // Demote one-to-one children back to Pending; their queue
            // entries (if any) become stale.
            for &(c, kind) in graph.children(stage) {
                if kind == jockey_jobgraph::graph::EdgeKind::OneToOne
                    && job.task_state(TaskId::new(c, t.index)) == TaskState::Ready
                {
                    job.set_task_state(TaskId::new(c, t.index), TaskState::Pending);
                }
            }
            // The undone task reruns; its own inputs may still be intact.
            let ready = deps.is_ready(t, &job.completed, |x| {
                matches!(job.tasks.state(x), TaskState::Done { .. })
            });
            if ready {
                job.set_task_state(t, TaskState::Ready);
                job.ready.push_back(t);
            } else {
                job.set_task_state(t, TaskState::Pending);
            }
        }
        let undone = undoable.len().min(count as usize);
        // Legitimate rollback: lower the monotone-fraction floor so the
        // invariant checker accepts the reduced completion count.
        self.completed_floor[j][stage.index()] =
            self.jobs[j].completed[stage.index()].min(self.completed_floor[j][stage.index()]);
        observe!(
            self.observer,
            now,
            EntryKind::Task,
            "job {j}: data loss undid {undone} completed outputs in stage {}",
            stage.index()
        );
    }

    /// Destroys input replicas hosted on `machine` (topology model):
    /// each replica on the machine is lost with probability
    /// `loss_prob`, drawn from `rng`. A split that loses its last copy
    /// is immediately re-replicated onto a fresh machine — the data is
    /// recoverable from upstream, but tasks reading it pay remote
    /// penalties until placement catches up. No-op in the flat model.
    pub fn destroy_replicas_on_machine(
        &mut self,
        machine: u32,
        loss_prob: f64,
        rng: &mut StdRng,
        now: SimTime,
    ) {
        let Some(topo) = &self.topology else {
            return;
        };
        if loss_prob <= 0.0 {
            return;
        }
        let machine_count = topo.machine_count();
        let mut destroyed: u32 = 0;
        let mut rehomed: u32 = 0;
        for job in &mut self.jobs {
            for split in &mut job.replicas {
                let Some(pos) = split.iter().position(|&m| m == machine) else {
                    continue;
                };
                if !jockey_simrt::dist::bernoulli(rng, loss_prob) {
                    continue;
                }
                split.swap_remove(pos);
                destroyed += 1;
                if split.is_empty() {
                    // Last copy gone: re-replicate somewhere healthy.
                    let mut fresh = rand::Rng::gen_range(rng, 0..machine_count);
                    while fresh == machine && machine_count > 1 {
                        fresh = rand::Rng::gen_range(rng, 0..machine_count);
                    }
                    split.push(fresh);
                    rehomed += 1;
                }
            }
        }
        if destroyed > 0 {
            observe!(
                self.observer,
                now,
                EntryKind::Task,
                "machine {machine} death destroyed {destroyed} replicas ({rehomed} splits re-replicated)"
            );
        }
    }
}

/// The discrete-event loop composed with its policy layers.
pub(crate) struct Engine {
    pub(crate) core: EngineCore,
    pub(crate) scheduler: Box<dyn SchedulerPolicy>,
    pub(crate) failure: Box<dyn FailureModel>,
    pub(crate) speculation: Box<dyn SpeculationPolicy>,
}

impl Engine {
    pub(crate) fn new(cfg: ClusterConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid cluster config: {e}");
        }
        let seeds = SeedDeriver::new(seed);
        let background = BackgroundModel::new(cfg.background.clone(), seeds.rng("background"));
        let failure = DefaultFailureModel::new(seeds.rng("machine-failures"));
        let queue = EventQueue::with_backend(cfg.queue_backend);
        let topology = cfg.topology.as_ref().map(ClusterTopology::build);
        Engine {
            core: EngineCore {
                cfg,
                jobs: Vec::new(),
                queue,
                background,
                seeds,
                observer: Box::new(NoopObserver),
                invariants_enabled: cfg!(debug_assertions),
                batching_enabled: true,
                last_event_time: SimTime::ZERO,
                completed_floor: Vec::new(),
                record_profile: true,
                record_trace: true,
                cand_scratch: Vec::new(),
                spare_buffers: Vec::new(),
                topology,
                placement_policy: Box::new(LocalityFirst),
                machine_load: Vec::new(),
            },
            scheduler: Box::new(WeightedFair),
            failure: Box::new(failure),
            // Inert unless `cfg.speculation` is set: with no config the
            // default policy declares no watch period, so no
            // SpeculationTick is ever scheduled and the event stream is
            // bit-identical to the pre-speculation engine.
            speculation: Box::new(CloneOnSlow),
        }
    }

    pub(crate) fn with_workspace(cfg: ClusterConfig, seed: u64, ws: &mut SimWorkspace) -> Self {
        let mut engine = Engine::new(cfg, seed);
        engine.core.cand_scratch = std::mem::take(&mut ws.candidates);
        engine.core.spare_buffers = std::mem::take(&mut ws.job_buffers);
        if let Some(mut queue) = ws.event_queue.take() {
            // Reset rewinds time and the sequence counter to a fresh
            // queue's state while keeping the allocated bucket storage.
            // A pooled queue on a different backend than this config
            // asks for is dropped instead.
            if queue.backend() == engine.core.cfg.queue_backend {
                queue.reset();
                engine.core.queue = queue;
            }
        }
        engine
    }

    /// Seeds the event queue with job starts, the background tick and
    /// the first machine failure.
    pub(crate) fn prime(&mut self) {
        observe!(
            self.core.observer,
            SimTime::ZERO,
            EntryKind::RngFork,
            "root streams \"background\" and \"machine-failures\" forked"
        );
        for j in 0..self.core.jobs.len() {
            self.core
                .queue
                .schedule(self.core.jobs[j].start_at, Event::JobStart { job: j });
        }
        if self.core.cfg.background.enabled {
            let tick = self.core.background.tick();
            self.core
                .queue
                .schedule(SimTime::ZERO + tick, Event::BackgroundTick);
        }
        // The speculation watcher only exists in the event stream when
        // the policy asks for one (the default asks only when
        // `cfg.speculation` is set), keeping the legacy stream intact.
        if let Some(period) = self.speculation.watch_period(&self.core) {
            self.core
                .queue
                .schedule(SimTime::ZERO + period, Event::SpeculationTick);
        }
        self.arm_machine_failure(SimTime::ZERO);
        self.arm_rack_failure(SimTime::ZERO);
    }

    /// Runs the event loop to completion (all jobs done, queue drained,
    /// or the configured horizon reached).
    ///
    /// # The dense-kernel batching gate
    ///
    /// When a `TaskDone` pops and *all* of the following hold, the loop
    /// drains every same-instant completion as one batch and runs the
    /// scheduler's pass once for the whole batch instead of once per
    /// event (see `DESIGN.md` §15 for the equivalence argument):
    ///
    /// - batching has not been disabled (the test seam),
    /// - spare capacity is off and the background model is disabled, so
    ///   a pass cannot start spare tasks, evict, or draw background RNG,
    /// - no topology is configured: machine placement reads the free
    ///   slots live, so a merged pass — which sees every completion's
    ///   slot freed before placing the first replacement — can place
    ///   tasks differently than the interleaved per-event passes,
    /// - no speculation is configured: kill-on-first-finish makes
    ///   same-instant completions order-sensitive (the first sibling to
    ///   complete kills the rest), and the watcher tick must interleave
    ///   with completions exactly as the per-event reference does,
    /// - invariant checks are off (they observe the per-pass state),
    /// - the scheduler declares merged passes safe
    ///   ([`SchedulerPolicy::batchable`]),
    /// - every running task is Guaranteed-class (a demoting controller
    ///   can strand Spare tasks even with spare starts disabled; their
    ///   evictions would make per-event and merged passes diverge).
    ///
    /// In the gated regime a pass consumes RNG only inside
    /// [`EngineCore::start_task`] and fills per job in FIFO order, so
    /// the merged pass is the concatenation of the per-event passes:
    /// task state, RNG streams, results and traces are bit-identical.
    /// Only the *interleaving* of observer lines differs (completion
    /// records group before the batch's start records); journal-based
    /// comparisons must run with batching disabled.
    pub(crate) fn run_loop(&mut self, mut sink: Option<&mut dyn ProgressSink>) {
        self.prime();
        let can_batch = self.core.batching_enabled
            && !self.core.cfg.spare_enabled
            && !self.core.cfg.background.enabled
            && self.core.cfg.topology.is_none()
            && self.core.cfg.speculation.is_none()
            && !self.core.invariants_enabled
            && self.scheduler.batchable();
        while let Some((now, event)) = self.core.queue.pop() {
            if now > self.core.cfg.max_sim_time {
                break;
            }
            if can_batch {
                if let Event::TaskDone { job, task, attempt } = event {
                    if self.all_running_guaranteed() {
                        if self.run_completion_batch(now, (job, task, attempt), &mut sink) {
                            break;
                        }
                        continue;
                    }
                }
            }
            match sink {
                Some(ref mut s) => self.step(now, event, Some(&mut **s)),
                None => self.step(now, event, None),
            }
            if self.core.jobs.iter().all(JobRun::is_finished) {
                break;
            }
        }
    }

    /// Dynamic half of the batching gate: no running task anywhere
    /// holds a Spare-class token.
    fn all_running_guaranteed(&self) -> bool {
        self.core.jobs.iter().all(|job| {
            job.running
                .iter()
                .all(|r| r.class == TokenClass::Guaranteed)
        })
    }

    /// Drains the batch of same-instant `TaskDone` events beginning with
    /// `first`: completion mechanics run per event, the scheduler pass
    /// runs once at the end (or before a non-completion event that
    /// shares the instant). Returns `true` when every job finished and
    /// the caller should stop. See [`Engine::run_loop`] for the gate
    /// that makes this observably identical to per-event stepping.
    fn run_completion_batch(
        &mut self,
        now: SimTime,
        first: (usize, TaskId, u32),
        sink: &mut Option<&mut dyn ProgressSink>,
    ) -> bool {
        let (job, task, attempt) = first;
        self.observe_event(now, &Event::TaskDone { job, task, attempt });
        self.task_done_mechanics(job, task, attempt, now);
        self.core.last_event_time = now;
        loop {
            if self.core.jobs.iter().all(JobRun::is_finished) {
                // Match the reference: the finishing completion's pass
                // still runs before the loop breaks.
                self.scheduler.schedule(&mut self.core, now);
                return true;
            }
            match self.core.queue.pop_at(now) {
                Some(Event::TaskDone { job, task, attempt }) => {
                    self.observe_event(now, &Event::TaskDone { job, task, attempt });
                    self.task_done_mechanics(job, task, attempt, now);
                }
                Some(other) => {
                    // A non-completion shares the instant. Flush the
                    // deferred pass first (the reference ran it before
                    // this event dispatched), then dispatch normally.
                    self.scheduler.schedule(&mut self.core, now);
                    match sink {
                        Some(ref mut s) => self.step(now, other, Some(&mut **s)),
                        None => self.step(now, other, None),
                    }
                    return self.core.jobs.iter().all(JobRun::is_finished);
                }
                None => break,
            }
        }
        self.scheduler.schedule(&mut self.core, now);
        false
    }

    /// Dispatches one event, then (in test/debug builds) checks the
    /// simulator's invariants. Every event path funnels through the
    /// scheduling pass, so post-step state is always consistent.
    pub(crate) fn step(&mut self, now: SimTime, event: Event, sink: Option<&mut dyn ProgressSink>) {
        self.observe_event(now, &event);
        match event {
            Event::JobStart { job } => self.on_job_start(job, now, sink),
            Event::TaskDone { job, task, attempt } => self.on_task_done(job, task, attempt, now),
            Event::ControlTick { job } => self.on_control_tick(job, now, sink),
            Event::BackgroundTick => self.on_background_tick(now),
            Event::SpeculationTick => self.on_speculation_tick(now),
            Event::MachineFailure => self.on_machine_failure(now),
            Event::RackFailure => self.on_rack_failure(now),
            Event::DeadlineChange { job, new_deadline } => {
                self.core.jobs[job]
                    .controller
                    .deadline_changed(new_deadline);
                // Force an immediate control decision at the new
                // deadline rather than waiting for the next tick.
                self.consult_controller(job, now, sink, false);
                self.scheduler.schedule(&mut self.core, now);
            }
        }
        if self.core.invariants_enabled {
            invariants::check(&mut self.core, now);
        } else {
            self.core.last_event_time = now;
        }
    }

    /// Emits the clock-advance and per-event observer records exactly as
    /// the per-event reference path does (shared with the batch drain).
    fn observe_event(&mut self, now: SimTime, event: &Event) {
        if now > self.core.last_event_time {
            observe!(
                self.core.observer,
                now,
                EntryKind::Clock,
                "clock advances from {:.3}s",
                self.core.last_event_time.as_secs_f64()
            );
        }
        match event {
            Event::JobStart { job } => {
                observe!(
                    self.core.observer,
                    now,
                    EntryKind::Event,
                    "JobStart job={job}"
                );
            }
            Event::TaskDone { job, task, attempt } => {
                observe!(
                    self.core.observer,
                    now,
                    EntryKind::Event,
                    "TaskDone job={job} task=s{}/{} attempt={attempt}",
                    task.stage.index(),
                    task.index
                );
            }
            Event::ControlTick { job } => {
                observe!(
                    self.core.observer,
                    now,
                    EntryKind::Event,
                    "ControlTick job={job}"
                );
            }
            Event::BackgroundTick => {
                observe!(self.core.observer, now, EntryKind::Event, "BackgroundTick");
            }
            Event::SpeculationTick => {
                observe!(self.core.observer, now, EntryKind::Event, "SpeculationTick");
            }
            Event::MachineFailure => {
                observe!(self.core.observer, now, EntryKind::Event, "MachineFailure");
            }
            Event::RackFailure => {
                observe!(self.core.observer, now, EntryKind::Event, "RackFailure");
            }
            Event::DeadlineChange { job, new_deadline } => {
                observe!(
                    self.core.observer,
                    now,
                    EntryKind::Event,
                    "DeadlineChange job={job} new_deadline={:.1}s",
                    new_deadline.as_secs_f64()
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn on_job_start(&mut self, j: usize, now: SimTime, sink: Option<&mut dyn ProgressSink>) {
        {
            let job = &mut self.core.jobs[j];
            job.started = Some(now);
            let graph = job.spec.graph.clone();
            let deps = TaskDeps::new(&graph);
            for t in deps.initial_tasks() {
                job.set_task_state(t, TaskState::Ready);
                job.ready.push_back(t);
            }
        }
        // Initial control decision.
        self.consult_controller(j, now, sink, true);
        self.core.queue.schedule(
            now + self.core.cfg.control_period,
            Event::ControlTick { job: j },
        );
        self.scheduler.schedule(&mut self.core, now);
    }

    fn on_control_tick(&mut self, j: usize, now: SimTime, sink: Option<&mut dyn ProgressSink>) {
        if self.core.jobs[j].is_finished() {
            return;
        }
        self.consult_controller(j, now, sink, false);
        self.core.queue.schedule(
            now + self.core.cfg.control_period,
            Event::ControlTick { job: j },
        );
        self.scheduler.schedule(&mut self.core, now);
    }

    /// Refreshes the job's status, feeds it to the progress sink and the
    /// controller, and applies the resulting decision.
    fn consult_controller(
        &mut self,
        j: usize,
        now: SimTime,
        sink: Option<&mut dyn ProgressSink>,
        initial: bool,
    ) {
        self.core.jobs[j].refresh_status(now);
        if let Some(sink) = sink {
            let status = &self.core.jobs[j].status;
            sink.sample(j, status.elapsed.as_secs_f64(), &status.stage_fraction);
        }
        let job = &mut self.core.jobs[j];
        let decision = if initial {
            job.controller.initial(&job.status)
        } else {
            job.controller.tick(&job.status)
        };
        self.apply_decision(j, now, decision);
    }

    fn apply_decision(&mut self, j: usize, now: SimTime, decision: ControlDecision) {
        let record_trace = self.core.record_trace;
        let util = if record_trace {
            self.core.background.utilization(now)
        } else {
            0.0
        };
        let job = &mut self.core.jobs[j];
        job.guarantee = decision.guarantee.min(self.core.cfg.max_guarantee);
        if record_trace {
            job.trace.guarantee.push(now, f64::from(job.guarantee));
            job.trace.running.push(now, job.running.len() as f64);
            job.trace.background_util.push(now, util);
            if let Some(raw) = decision.raw {
                job.trace.raw_allocation.push(now, raw);
            }
            if let Some(p) = decision.progress {
                job.trace.progress.push(now, p);
            }
            if let Some(t) = decision.predicted_completion {
                job.trace.predicted_completion.push(now, t);
            }
            // Record the raw stage-fraction trajectory so progress
            // indicators can be re-evaluated offline over this exact run.
            let graph = &job.spec.graph;
            if job.trace.stage_fractions.is_empty() {
                job.trace.stage_fractions =
                    vec![jockey_simrt::series::TimeSeries::new(); graph.num_stages()];
            }
            for s in graph.stage_ids() {
                let frac = f64::from(job.completed[s.index()]) / f64::from(graph.tasks_in(s));
                job.trace.stage_fractions[s.index()].push(now, frac);
            }
        }
        let guarantee = job.guarantee;
        observe!(
            self.core.observer,
            now,
            EntryKind::Decision,
            "job {j}: guarantee={guarantee} raw={:?} progress={:?} predicted_completion={:?}",
            decision.raw,
            decision.progress,
            decision.predicted_completion
        );
    }

    fn on_task_done(&mut self, j: usize, task: TaskId, attempt: u32, now: SimTime) {
        if self.task_done_mechanics(j, task, attempt, now) {
            self.scheduler.schedule(&mut self.core, now);
        }
    }

    /// Everything a task completion does *except* the trailing
    /// scheduling pass: failure draw, state transition, accounting,
    /// dependent promotion. Returns `false` for a stale completion
    /// (which, as in the reference path, must not trigger a pass — a
    /// pass at a stale event's time could move background advancement
    /// and spare starts to a different instant). Split out so the batch
    /// drain can run the mechanics per event and the pass once.
    fn task_done_mechanics(&mut self, j: usize, task: TaskId, attempt: u32, now: SimTime) -> bool {
        let failure_prob = self
            .core
            .cfg
            .failures
            .task_failure_prob
            .unwrap_or(self.core.jobs[j].spec.task_failure_prob);

        let speculating = self.core.cfg.speculation.is_some();
        let pos = {
            let job = &self.core.jobs[j];
            // Stale completion (task was evicted/killed since scheduling)?
            // The task state holds the *newest* attempt; under
            // speculation an older sibling attempt is still live as
            // long as its running-list entry survives.
            let live = match job.task_state(task) {
                TaskState::Running { attempt: a } if a == attempt => true,
                TaskState::Running { .. } if speculating => job
                    .running
                    .iter()
                    .any(|r| r.task == task && r.attempt == attempt),
                _ => false,
            };
            if !live {
                observe!(
                    self.core.observer,
                    now,
                    EntryKind::Task,
                    "job {j}: stale TaskDone for s{}/{} attempt {attempt} ignored",
                    task.stage.index(),
                    task.index
                );
                return false;
            }
            // One scan both proves presence and locates the entry (the
            // reference scanned twice).
            match job
                .running
                .iter()
                .position(|r| r.task == task && r.attempt == attempt)
            {
                Some(pos) => pos,
                None => return false,
            }
        };
        let failed = self
            .failure
            .task_attempt_fails(&mut self.core, j, failure_prob);

        let record_profile = self.core.record_profile;
        let stage_now_complete;
        {
            let job = &mut self.core.jobs[j];
            debug_assert!(
                job.running[pos].task == task && job.running[pos].attempt == attempt,
                "failure model mutated the running list during the completion draw"
            );
            let running = job.running.swap_remove(pos);

            if record_profile {
                job.profile
                    .record_task(task.stage, running.queue_secs, running.run_secs, failed);
            }
            if failed {
                job.wasted += running.run_secs;
                // A surviving sibling attempt keeps racing: no requeue,
                // repoint the task state at the newest live sibling so
                // its completion is not mistaken for stale. Without
                // speculation there are never siblings.
                let sibling = if speculating {
                    job.running
                        .iter()
                        .filter(|r| r.task == task)
                        .map(|r| r.attempt)
                        .max()
                } else {
                    None
                };
                match sibling {
                    Some(a) => job.set_task_state(task, TaskState::Running { attempt: a }),
                    None => {
                        job.set_task_state(task, TaskState::Ready);
                        job.ready.push_back(task);
                    }
                }
                stage_now_complete = false;
            } else {
                job.work_done += running.run_secs;
                job.set_task_state(
                    task,
                    TaskState::Done {
                        run_secs: running.run_secs,
                    },
                );
                job.completed[task.stage.index()] += 1;
                job.done_tasks += 1;
                // Kill-on-first-finish: every sibling attempt of the
                // winner dies, its partial work wasted. Like eviction
                // (and unlike a task fault) this records no profile
                // failure — losing a race is a scheduling outcome.
                if speculating {
                    if running.class == TokenClass::Clone {
                        job.clone_wins += 1;
                    }
                    let mut killed: u32 = 0;
                    let mut i = 0;
                    while i < job.running.len() {
                        if job.running[i].task == task {
                            let victim = job.running.swap_remove(i);
                            let elapsed = now.saturating_since(victim.started).as_secs_f64();
                            job.wasted += elapsed.min(victim.run_secs);
                            killed += 1;
                        } else {
                            i += 1;
                        }
                    }
                    if killed > 0 {
                        observe!(
                            self.core.observer,
                            now,
                            EntryKind::Task,
                            "job {j}: s{}/{} first finish killed {killed} sibling attempt(s)",
                            task.stage.index(),
                            task.index
                        );
                    }
                }
                if record_profile {
                    job.profile.record_stage_window(
                        task.stage,
                        running
                            .started
                            .saturating_since(job.started.unwrap())
                            .as_secs_f64(),
                        now.saturating_since(job.started.unwrap()).as_secs_f64(),
                    );
                }
                stage_now_complete =
                    job.completed[task.stage.index()] == job.spec.graph.tasks_in(task.stage);
            }
        }
        observe!(
            self.core.observer,
            now,
            EntryKind::Task,
            "job {j}: s{}/{} attempt {attempt} {}{}",
            task.stage.index(),
            task.index,
            if failed { "failed, requeued" } else { "done" },
            if stage_now_complete {
                " (stage complete)"
            } else {
                ""
            }
        );

        // Promote newly ready dependents. (On failure the attempt either
        // requeued or left a sibling racing; neither can ready a
        // dependent. Equivalent to the former `task_state != Ready`
        // check in the sibling-free engine, and additionally correct
        // when a failed attempt leaves the state `Running`.)
        if !failed {
            let graph = self.core.jobs[j].spec.graph.clone();
            let deps = TaskDeps::new(&graph);
            let mut candidates = std::mem::take(&mut self.core.cand_scratch);
            candidates.clear();
            deps.push_candidate_dependents(task, stage_now_complete, &mut candidates);
            let record_trace = self.core.record_trace;
            {
                let job = &mut self.core.jobs[j];
                for &c in &candidates {
                    if job.task_state(c) == TaskState::Pending
                        && deps.is_ready(c, &job.completed, |t| {
                            matches!(job.tasks.state(t), TaskState::Done { .. })
                        })
                    {
                        job.set_task_state(c, TaskState::Ready);
                        job.ready.push_back(c);
                    }
                }
                if job.done_tasks == job.total_tasks() {
                    job.finished_at = Some(now);
                    if record_trace {
                        job.trace.guarantee.push(now, f64::from(job.guarantee));
                        job.trace.running.push(now, 0.0);
                    }
                    observe!(
                        self.core.observer,
                        now,
                        EntryKind::Task,
                        "job {j}: all tasks done"
                    );
                }
            }
            self.core.cand_scratch = candidates;
        }
        true
    }

    fn on_background_tick(&mut self, now: SimTime) {
        self.scheduler.schedule(&mut self.core, now);
        if self.core.jobs.iter().any(|j| !j.is_finished()) {
            self.core
                .queue
                .schedule(now + self.core.background.tick(), Event::BackgroundTick);
        }
    }

    /// One straggler scan: the speculation policy inspects running
    /// attempts and may launch clones through
    /// [`EngineCore::start_clone`]; the pass then re-arms while any job
    /// is unfinished. A trailing scheduling pass keeps the post-event
    /// consistency contract every other event upholds.
    fn on_speculation_tick(&mut self, now: SimTime) {
        self.speculation.watch(&mut self.core, now);
        if self.core.jobs.iter().any(|j| !j.is_finished()) {
            if let Some(period) = self.speculation.watch_period(&self.core) {
                self.core
                    .queue
                    .schedule(now + period, Event::SpeculationTick);
            }
        }
        self.scheduler.schedule(&mut self.core, now);
    }

    /// Asks the failure model for the next machine-failure arrival and
    /// schedules it (if any).
    fn arm_machine_failure(&mut self, now: SimTime) {
        if let Some(delay) = self.failure.next_failure_delay(&self.core) {
            observe!(
                self.core.observer,
                now,
                EntryKind::Decision,
                "next machine failure armed in {:.3}s",
                delay.as_secs_f64()
            );
            self.core.queue.schedule(now + delay, Event::MachineFailure);
        }
    }

    fn on_machine_failure(&mut self, now: SimTime) {
        self.failure.on_machine_failure(&mut self.core, now);
        self.arm_machine_failure(now);
        self.scheduler.schedule(&mut self.core, now);
    }

    /// Asks the failure model for the next correlated rack-failure
    /// arrival and schedules it. The default model returns `None`
    /// without a topology, so the legacy event stream gains no events.
    fn arm_rack_failure(&mut self, now: SimTime) {
        if let Some(delay) = self.failure.next_rack_failure_delay(&self.core) {
            observe!(
                self.core.observer,
                now,
                EntryKind::Decision,
                "next rack failure armed in {:.3}s",
                delay.as_secs_f64()
            );
            self.core.queue.schedule(now + delay, Event::RackFailure);
        }
    }

    fn on_rack_failure(&mut self, now: SimTime) {
        self.failure.on_rack_failure(&mut self.core, now);
        self.arm_rack_failure(now);
        self.scheduler.schedule(&mut self.core, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::controller::FixedAllocation;
    use jockey_jobgraph::graph::{EdgeKind, JobGraphBuilder};
    use jockey_simrt::dist::Constant;

    fn one_job_engine(tokens: u32) -> Engine {
        let mut b = JobGraphBuilder::new("engine-test");
        let m = b.stage("map", 4);
        let r = b.stage("reduce", 2);
        b.edge(m, r, EdgeKind::AllToAll);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph, Constant(10.0), Constant(0.0), 0.0);
        let mut engine = Engine::new(ClusterConfig::dedicated(tokens), 1);
        engine.core.add_job_at(
            Arc::new(spec),
            Box::new(FixedAllocation(tokens)),
            SimTime::ZERO,
        );
        engine
    }

    #[test]
    fn pop_ready_skips_stale_queue_entries() {
        let mut engine = one_job_engine(2);
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None); // JobStart: tasks become Ready/Running.
        let job = &mut engine.core.jobs[0];
        // Requeue a task that is actually Running: the entry is stale.
        let running_task = job.running[0].task;
        job.ready.push_front(running_task);
        let popped = job.pop_ready();
        assert_ne!(popped, Some(running_task), "stale entry must be skipped");
    }

    #[test]
    fn stale_task_done_is_ignored() {
        let mut engine = one_job_engine(2);
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None);
        let task = engine.core.jobs[0].running[0].task;
        let done_before = engine.core.jobs[0].done_tasks;
        // A completion for a long-gone attempt number must be a no-op.
        engine.on_task_done(0, task, 999, SimTime::from_secs(1));
        assert_eq!(engine.core.jobs[0].done_tasks, done_before);
        assert!(matches!(
            engine.core.jobs[0].task_state(task),
            TaskState::Running { .. }
        ));
    }

    /// The shared timing helper must reproduce the engine's historical
    /// inline formulas bit-for-bit: `queue = base_queue * slowdown` and
    /// `run = base_run * slowdown * class_mult * locality_mult`, in
    /// exactly that association order. Any reassociation (e.g. fusing
    /// multiplications) would drift the training digest.
    #[test]
    fn attempt_timing_is_bit_identical_to_the_inline_derivation() {
        let cases = [
            (3.7, 42.123, 1.0, 1.0, 1.0),
            (0.25, 17.5, 1.37, 1.25, 1.0),
            (1e-9, 9e9, 2.5001, 1.4, 1.3),
            (0.0, 123.456, 1.0101, 1.25, 0.97),
            (5.5, 0.333, 3.3333333333333335, 1.0, 1.15),
        ];
        for (base_queue, base_run, slowdown, class_mult, locality_mult) in cases {
            let (queue, run) =
                attempt_timing(base_queue, base_run, slowdown, class_mult, locality_mult);
            let ref_queue: f64 = base_queue * slowdown;
            let ref_run: f64 = base_run * slowdown * class_mult * locality_mult;
            assert_eq!(queue.to_bits(), ref_queue.to_bits());
            assert_eq!(run.to_bits(), ref_run.to_bits());
        }
    }

    #[test]
    fn class_multiplier_slows_only_spare_attempts() {
        assert_eq!(class_multiplier(TokenClass::Guaranteed, 1.4), 1.0);
        assert_eq!(class_multiplier(TokenClass::Clone, 1.4), 1.0);
        assert_eq!(class_multiplier(TokenClass::Spare, 1.4), 1.4);
    }

    #[test]
    fn start_clone_races_and_first_finish_kills_siblings() {
        use crate::config::SpeculationConfig;
        let mut b = JobGraphBuilder::new("clone-test");
        b.stage("map", 2);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph, Constant(100.0), Constant(0.0), 0.0);
        let mut cfg = ClusterConfig::dedicated(4);
        cfg.max_guarantee = 2;
        cfg.speculation = Some(SpeculationConfig::clone_on_slow(2.0, 2));
        let mut engine = Engine::new(cfg, 1);
        engine
            .core
            .add_job_at(Arc::new(spec), Box::new(FixedAllocation(2)), SimTime::ZERO);
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None); // JobStart: both tasks running.

        let task = engine.core.jobs[0].running[0].task;
        let straggler_attempt = engine.core.jobs[0].running[0].attempt;
        assert!(engine
            .core
            .start_clone(0, task, SimTime::from_secs(10), 1.0));
        assert_eq!(engine.core.jobs[0].clone_task_count, 1);
        assert_eq!(
            engine.core.jobs[0].running_in_class(TokenClass::Clone),
            1,
            "clone occupies a Clone-class token"
        );
        // Two sibling attempts of the same task are now racing.
        let siblings = engine.core.jobs[0]
            .running
            .iter()
            .filter(|r| r.task == task)
            .count();
        assert_eq!(siblings, 2);

        // The original (older) attempt finishes first: it must be
        // accepted, and the clone must die with it.
        assert!(engine.task_done_mechanics(0, task, straggler_attempt, SimTime::from_secs(110)));
        assert!(matches!(
            engine.core.jobs[0].task_state(task),
            TaskState::Done { .. }
        ));
        assert_eq!(
            engine.core.jobs[0]
                .running
                .iter()
                .filter(|r| r.task == task)
                .count(),
            0,
            "kill-on-first-finish leaves no sibling running"
        );
        assert_eq!(engine.core.jobs[0].clone_wins, 0);
        assert!(
            engine.core.jobs[0].wasted > 0.0,
            "the losing clone's partial work is wasted"
        );
    }

    #[test]
    fn start_clone_refuses_non_running_tasks() {
        let mut engine = one_job_engine(2);
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None);
        // Reduce tasks are still Pending behind the barrier.
        let pending = jockey_jobgraph::task::TaskId::new(
            engine.core.jobs[0].spec.graph.stage_ids().nth(1).unwrap(),
            0,
        );
        assert_eq!(engine.core.jobs[0].task_state(pending), TaskState::Pending);
        assert!(!engine
            .core
            .start_clone(0, pending, SimTime::from_secs(1), 1.0));
        assert_eq!(engine.core.jobs[0].clone_task_count, 0);
    }

    #[test]
    fn refresh_status_matches_job_state() {
        let mut engine = one_job_engine(2);
        engine.prime();
        let (now, event) = engine.core.queue.pop().unwrap();
        engine.step(now, event, None);
        let job = &mut engine.core.jobs[0];
        job.refresh_status(SimTime::from_secs(5));
        assert_eq!(job.status.stage_fraction, vec![0.0, 0.0]);
        assert_eq!(job.status.running, 2);
        assert_eq!(job.status.guarantee, 2);
        assert_eq!(job.status.elapsed, SimDuration::from_secs(5));
        assert!(!job.status.finished);
    }
}
