//! Aggregate background-load model.
//!
//! Rather than simulating thousands of co-located jobs individually,
//! the simulator models their aggregate token demand as a stochastic
//! utilization process: an Ornstein–Uhlenbeck (mean-reverting) random
//! walk sampled on a fixed tick, overlaid with Poisson-arriving
//! *overload events* during which utilization pins at a configured
//! ceiling. This captures the two phenomena §2.3–§2.4 attribute to
//! other jobs: fluctuating spare-token availability, and cluster-wide
//! slowdown under contention.

use crate::config::BackgroundConfig;
use jockey_simrt::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// The evolving background-load state.
///
/// Call [`BackgroundModel::advance_to`] before reading; the model
/// resamples itself on its internal tick.
#[derive(Clone, Debug)]
pub struct BackgroundModel {
    cfg: BackgroundConfig,
    rng: StdRng,
    /// Current OU utilization (before overload override).
    util: f64,
    /// Time the process last ticked.
    last_tick: SimTime,
    /// End of the current overload event, if one is active.
    overload_until: Option<SimTime>,
    /// Next scheduled overload arrival.
    next_overload: SimTime,
}

impl BackgroundModel {
    /// Creates the model; `rng` must be a dedicated stream.
    pub fn new(cfg: BackgroundConfig, mut rng: StdRng) -> Self {
        let next_overload = if cfg.enabled && cfg.overload_rate_per_hour > 0.0 {
            SimTime::ZERO + exp_duration(&mut rng, 3600.0 / cfg.overload_rate_per_hour)
        } else {
            SimTime::MAX
        };
        let util = cfg.mean_util;
        BackgroundModel {
            cfg,
            rng,
            util,
            last_tick: SimTime::ZERO,
            overload_until: None,
            next_overload,
        }
    }

    /// Advances the process to `now`, resampling on each elapsed tick.
    pub fn advance_to(&mut self, now: SimTime) {
        if !self.cfg.enabled {
            return;
        }
        // Start/stop overload episodes.
        while self.next_overload <= now {
            let dur = exp_duration(
                &mut self.rng,
                self.cfg.overload_duration_mins.max(0.01) * 60.0,
            );
            let start = self.next_overload;
            self.overload_until = Some(start + dur);
            self.next_overload =
                start + exp_duration(&mut self.rng, 3600.0 / self.cfg.overload_rate_per_hour) + dur;
        }
        if let Some(until) = self.overload_until {
            if now >= until {
                self.overload_until = None;
            }
        }
        // OU steps on the tick grid.
        while now.saturating_since(self.last_tick) >= self.cfg.tick {
            self.last_tick += self.cfg.tick;
            let noise: f64 = standard_normal(&mut self.rng) * self.cfg.volatility;
            self.util += self.cfg.reversion * (self.cfg.mean_util - self.util) + noise;
            self.util = self.util.clamp(0.0, 1.0);
        }
    }

    /// Current effective utilization in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if !self.cfg.enabled {
            return 0.0;
        }
        match self.overload_until {
            Some(until) if now < until => self.cfg.overload_util,
            _ => self.util,
        }
    }

    /// Tokens demanded by background jobs out of `total`.
    pub fn demand_tokens(&self, now: SimTime, total: u32) -> u32 {
        (self.utilization(now) * f64::from(total)).round() as u32
    }

    /// Cluster-wide task slowdown multiplier at `now`:
    /// `1 + slope * max(0, util - knee)`.
    pub fn slowdown(&self, now: SimTime) -> f64 {
        let u = self.utilization(now);
        1.0 + self.cfg.slowdown_slope * (u - self.cfg.slowdown_knee).max(0.0)
    }

    /// True while an overload episode is active.
    pub fn in_overload(&self, now: SimTime) -> bool {
        matches!(self.overload_until, Some(until) if now < until)
    }

    /// The process resampling period.
    pub fn tick(&self) -> SimDuration {
        self.cfg.tick
    }
}

/// Samples an exponential duration with the given mean in seconds.
fn exp_duration(rng: &mut StdRng, mean_secs: f64) -> SimDuration {
    let u: f64 = 1.0 - rng.gen::<f64>();
    SimDuration::from_secs_f64(-mean_secs * u.ln())
}

/// One Box–Muller standard normal draw.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::rng::SeedDeriver;

    fn rng() -> StdRng {
        SeedDeriver::new(11).rng("bg")
    }

    #[test]
    fn disabled_model_is_silent() {
        let mut m = BackgroundModel::new(BackgroundConfig::none(), rng());
        m.advance_to(SimTime::from_mins(60));
        assert_eq!(m.utilization(SimTime::from_mins(60)), 0.0);
        assert_eq!(m.demand_tokens(SimTime::from_mins(60), 1000), 0);
        assert_eq!(m.slowdown(SimTime::from_mins(60)), 1.0);
    }

    #[test]
    fn utilization_reverts_to_mean() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 0.0;
        let mut m = BackgroundModel::new(cfg.clone(), rng());
        let mut total = 0.0;
        let mut n = 0;
        for minute in 1..=600 {
            let t = SimTime::from_mins(minute);
            m.advance_to(t);
            total += m.utilization(t);
            n += 1;
        }
        let avg = total / f64::from(n);
        assert!((avg - cfg.mean_util).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn utilization_stays_in_bounds() {
        let mut cfg = BackgroundConfig::production();
        cfg.volatility = 0.5; // Extreme noise.
        let mut m = BackgroundModel::new(cfg, rng());
        for minute in 1..=240 {
            let t = SimTime::from_mins(minute);
            m.advance_to(t);
            let u = m.utilization(t);
            assert!((0.0..=1.0).contains(&u), "u {u}");
        }
    }

    #[test]
    fn overloads_occur_and_end() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 6.0; // Frequent for the test.
        cfg.overload_duration_mins = 5.0;
        let mut m = BackgroundModel::new(cfg.clone(), rng());
        let mut overloaded_minutes = 0;
        let mut normal_minutes = 0;
        for minute in 1..=600 {
            let t = SimTime::from_mins(minute);
            m.advance_to(t);
            if m.in_overload(t) {
                overloaded_minutes += 1;
                assert_eq!(m.utilization(t), cfg.overload_util);
            } else {
                normal_minutes += 1;
            }
        }
        assert!(overloaded_minutes > 10, "got {overloaded_minutes}");
        assert!(normal_minutes > 100, "got {normal_minutes}");
    }

    #[test]
    fn slowdown_kicks_in_above_knee() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 0.0;
        cfg.slowdown_knee = 0.0;
        cfg.slowdown_slope = 2.0;
        let m = BackgroundModel::new(cfg.clone(), rng());
        let t = SimTime::ZERO;
        let expected = 1.0 + 2.0 * m.utilization(t);
        assert!((m.slowdown(t) - expected).abs() < 1e-12);
    }

    #[test]
    fn demand_tokens_scales_with_total() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 0.0;
        cfg.volatility = 0.0;
        let m = BackgroundModel::new(cfg, rng());
        assert_eq!(m.demand_tokens(SimTime::ZERO, 1000), 800);
        assert_eq!(m.demand_tokens(SimTime::ZERO, 10), 8);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = BackgroundConfig::production();
        let mut a = BackgroundModel::new(cfg.clone(), rng());
        let mut b = BackgroundModel::new(cfg, rng());
        for minute in 1..=120 {
            let t = SimTime::from_mins(minute);
            a.advance_to(t);
            b.advance_to(t);
            assert_eq!(a.utilization(t), b.utilization(t));
        }
    }
}
