//! Aggregate background-load model.
//!
//! Rather than simulating thousands of co-located jobs individually,
//! the simulator models their aggregate token demand as a stochastic
//! utilization process: an Ornstein–Uhlenbeck (mean-reverting) random
//! walk sampled on a fixed tick, overlaid with Poisson-arriving
//! *overload events* during which utilization pins at a configured
//! ceiling. This captures the two phenomena §2.3–§2.4 attribute to
//! other jobs: fluctuating spare-token availability, and cluster-wide
//! slowdown under contention.

use crate::config::BackgroundConfig;
use jockey_simrt::dist::exp_duration;
use jockey_simrt::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// The evolving background-load state.
///
/// Call [`BackgroundModel::advance_to`] before reading; the model
/// resamples itself on its internal tick.
#[derive(Clone, Debug)]
pub struct BackgroundModel {
    cfg: BackgroundConfig,
    rng: StdRng,
    /// Current OU utilization (before overload override).
    util: f64,
    /// Time the process last ticked.
    last_tick: SimTime,
    /// End of the current overload event, if one is active.
    overload_until: Option<SimTime>,
    /// Next scheduled overload arrival.
    next_overload: SimTime,
}

impl BackgroundModel {
    /// Creates the model; `rng` must be a dedicated stream.
    pub fn new(cfg: BackgroundConfig, mut rng: StdRng) -> Self {
        let next_overload = if cfg.enabled && cfg.overload_rate_per_hour > 0.0 {
            SimTime::ZERO + exp_duration(&mut rng, 3600.0 / cfg.overload_rate_per_hour)
        } else {
            SimTime::MAX
        };
        let util = cfg.mean_util;
        BackgroundModel {
            cfg,
            rng,
            util,
            last_tick: SimTime::ZERO,
            overload_until: None,
            next_overload,
        }
    }

    /// Advances the process to `now`, resampling on each elapsed tick.
    ///
    /// Overload-arrival draws and OU tick draws share one RNG stream,
    /// so they are consumed in *simulated-time order* (ties go to the
    /// arrival, matching a caller that advances one instant at a
    /// time). The trajectory therefore depends only on the tick grid
    /// and the RNG stream — never on how callers chunk their
    /// `advance_to` calls.
    pub fn advance_to(&mut self, now: SimTime) {
        if !self.cfg.enabled {
            return;
        }
        loop {
            let next_tick = self.last_tick + self.cfg.tick;
            let arrival_due = self.next_overload <= now;
            let tick_due = next_tick <= now;
            if arrival_due && (!tick_due || self.next_overload <= next_tick) {
                // Start an overload episode and schedule the next.
                let dur = exp_duration(
                    &mut self.rng,
                    self.cfg.overload_duration_mins.max(0.01) * 60.0,
                );
                let start = self.next_overload;
                self.overload_until = Some(start + dur);
                self.next_overload = start
                    + exp_duration(&mut self.rng, 3600.0 / self.cfg.overload_rate_per_hour)
                    + dur;
            } else if tick_due {
                // One OU step. The reversion target is the (possibly
                // diurnally-modulated) mean evaluated *at the tick
                // being stepped*.
                self.last_tick = next_tick;
                let noise: f64 = standard_normal(&mut self.rng) * self.cfg.volatility;
                let target = self.effective_mean(self.last_tick);
                self.util += self.cfg.reversion * (target - self.util) + noise;
                self.util = self.util.clamp(0.0, 1.0);
            } else {
                break;
            }
        }
        if let Some(until) = self.overload_until {
            if now >= until {
                self.overload_until = None;
            }
        }
    }

    /// The OU reversion target at `at`: the configured mean, plus the
    /// diurnal modulation when enabled. With `diurnal_amplitude == 0`
    /// this returns `mean_util` exactly (no trig evaluated), keeping
    /// the stationary process bit-identical to the pre-diurnal model.
    pub fn effective_mean(&self, at: SimTime) -> f64 {
        if self.cfg.diurnal_amplitude == 0.0 {
            return self.cfg.mean_util;
        }
        let cycles = at.as_secs_f64() / self.cfg.diurnal_period.as_secs_f64();
        let wave = (std::f64::consts::TAU * (cycles + self.cfg.diurnal_phase)).sin();
        (self.cfg.mean_util + self.cfg.diurnal_amplitude * wave).clamp(0.0, 1.0)
    }

    /// Current effective utilization in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if !self.cfg.enabled {
            return 0.0;
        }
        match self.overload_until {
            Some(until) if now < until => self.cfg.overload_util,
            _ => self.util,
        }
    }

    /// Tokens demanded by background jobs out of `total`.
    pub fn demand_tokens(&self, now: SimTime, total: u32) -> u32 {
        (self.utilization(now) * f64::from(total)).round() as u32
    }

    /// Cluster-wide task slowdown multiplier at `now`:
    /// `1 + slope * max(0, util - knee)`.
    pub fn slowdown(&self, now: SimTime) -> f64 {
        let u = self.utilization(now);
        1.0 + self.cfg.slowdown_slope * (u - self.cfg.slowdown_knee).max(0.0)
    }

    /// True while an overload episode is active.
    pub fn in_overload(&self, now: SimTime) -> bool {
        matches!(self.overload_until, Some(until) if now < until)
    }

    /// The process resampling period.
    pub fn tick(&self) -> SimDuration {
        self.cfg.tick
    }
}

/// One Box–Muller standard normal draw.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jockey_simrt::rng::SeedDeriver;

    fn rng() -> StdRng {
        SeedDeriver::new(11).rng("bg")
    }

    #[test]
    fn disabled_model_is_silent() {
        let mut m = BackgroundModel::new(BackgroundConfig::none(), rng());
        m.advance_to(SimTime::from_mins(60));
        assert_eq!(m.utilization(SimTime::from_mins(60)), 0.0);
        assert_eq!(m.demand_tokens(SimTime::from_mins(60), 1000), 0);
        assert_eq!(m.slowdown(SimTime::from_mins(60)), 1.0);
    }

    #[test]
    fn utilization_reverts_to_mean() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 0.0;
        let mut m = BackgroundModel::new(cfg.clone(), rng());
        let mut total = 0.0;
        let mut n = 0;
        for minute in 1..=600 {
            let t = SimTime::from_mins(minute);
            m.advance_to(t);
            total += m.utilization(t);
            n += 1;
        }
        let avg = total / f64::from(n);
        assert!((avg - cfg.mean_util).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn utilization_stays_in_bounds() {
        let mut cfg = BackgroundConfig::production();
        cfg.volatility = 0.5; // Extreme noise.
        let mut m = BackgroundModel::new(cfg, rng());
        for minute in 1..=240 {
            let t = SimTime::from_mins(minute);
            m.advance_to(t);
            let u = m.utilization(t);
            assert!((0.0..=1.0).contains(&u), "u {u}");
        }
    }

    #[test]
    fn overloads_occur_and_end() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 6.0; // Frequent for the test.
        cfg.overload_duration_mins = 5.0;
        let mut m = BackgroundModel::new(cfg.clone(), rng());
        let mut overloaded_minutes = 0;
        let mut normal_minutes = 0;
        for minute in 1..=600 {
            let t = SimTime::from_mins(minute);
            m.advance_to(t);
            if m.in_overload(t) {
                overloaded_minutes += 1;
                assert_eq!(m.utilization(t), cfg.overload_util);
            } else {
                normal_minutes += 1;
            }
        }
        assert!(overloaded_minutes > 10, "got {overloaded_minutes}");
        assert!(normal_minutes > 100, "got {normal_minutes}");
    }

    #[test]
    fn slowdown_kicks_in_above_knee() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 0.0;
        cfg.slowdown_knee = 0.0;
        cfg.slowdown_slope = 2.0;
        let m = BackgroundModel::new(cfg.clone(), rng());
        let t = SimTime::ZERO;
        let expected = 1.0 + 2.0 * m.utilization(t);
        assert!((m.slowdown(t) - expected).abs() < 1e-12);
    }

    #[test]
    fn demand_tokens_scales_with_total() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 0.0;
        cfg.volatility = 0.0;
        let m = BackgroundModel::new(cfg, rng());
        assert_eq!(m.demand_tokens(SimTime::ZERO, 1000), 800);
        assert_eq!(m.demand_tokens(SimTime::ZERO, 10), 8);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = BackgroundConfig::production();
        let mut a = BackgroundModel::new(cfg.clone(), rng());
        let mut b = BackgroundModel::new(cfg, rng());
        for minute in 1..=120 {
            let t = SimTime::from_mins(minute);
            a.advance_to(t);
            b.advance_to(t);
            assert_eq!(a.utilization(t), b.utilization(t));
        }
    }

    /// The trajectory is a function of the tick grid and the RNG
    /// stream, not of how callers chunk their `advance_to` calls:
    /// advancing in one jump visits exactly the per-tick states (OU
    /// utilization *and* overload-episode bookkeeping) that many small
    /// steps visit.
    #[test]
    fn advance_granularity_does_not_change_tick_states() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 6.0; // Exercise the episode path.
        cfg.overload_duration_mins = 5.0;
        cfg.diurnal_amplitude = 0.2; // And the modulated OU target.
        cfg.diurnal_period = SimDuration::from_mins(240);

        // Fine: one advance per simulated second for four hours.
        let mut fine = BackgroundModel::new(cfg.clone(), rng());
        let mut fine_states = Vec::new();
        for sec in 1..=(4 * 3600) {
            let t = SimTime::from_secs(sec);
            fine.advance_to(t);
            if sec % 30 == 0 {
                // On the 30 s tick grid: record the post-tick state.
                fine_states.push((fine.utilization(t).to_bits(), fine.in_overload(t)));
            }
        }

        // Coarse: jump straight to each tick boundary.
        let mut coarse = BackgroundModel::new(cfg.clone(), rng());
        let mut coarse_states = Vec::new();
        for tick in 1..=(4 * 3600 / 30) {
            let t = SimTime::from_secs(tick * 30);
            coarse.advance_to(t);
            coarse_states.push((coarse.utilization(t).to_bits(), coarse.in_overload(t)));
        }
        assert_eq!(fine_states, coarse_states);

        // Coarsest: one four-hour jump lands in the same final state.
        let mut jump = BackgroundModel::new(cfg, rng());
        let end = SimTime::from_secs(4 * 3600);
        jump.advance_to(end);
        assert_eq!(
            jump.utilization(end).to_bits(),
            fine_states.last().unwrap().0
        );
    }

    #[test]
    fn zero_amplitude_diurnal_is_bit_identical_to_stationary() {
        let stationary = BackgroundConfig::production();
        let mut explicit = stationary.clone();
        explicit.diurnal_amplitude = 0.0;
        explicit.diurnal_phase = 0.25; // Irrelevant at zero amplitude.
        let mut a = BackgroundModel::new(stationary, rng());
        let mut b = BackgroundModel::new(explicit, rng());
        for minute in 1..=240 {
            let t = SimTime::from_mins(minute);
            a.advance_to(t);
            b.advance_to(t);
            assert_eq!(a.utilization(t).to_bits(), b.utilization(t).to_bits());
        }
    }

    #[test]
    fn diurnal_modulation_shifts_the_daily_load_profile() {
        let mut cfg = BackgroundConfig::production();
        cfg.overload_rate_per_hour = 0.0;
        cfg.mean_util = 0.5;
        cfg.volatility = 0.01;
        cfg.diurnal_amplitude = 0.3;
        cfg.diurnal_period = SimDuration::from_mins(24 * 60);
        cfg.diurnal_phase = 0.0; // Peak at 6 h, trough at 18 h.
        let mut m = BackgroundModel::new(cfg, rng());
        let mut peak = 0.0;
        let mut trough = 0.0;
        let mut peak_n = 0.0;
        let mut trough_n = 0.0;
        for minute in 1..=(24 * 60) {
            let t = SimTime::from_mins(minute);
            m.advance_to(t);
            let hour = minute as f64 / 60.0;
            if (5.0..7.0).contains(&hour) {
                peak += m.utilization(t);
                peak_n += 1.0;
            }
            if (17.0..19.0).contains(&hour) {
                trough += m.utilization(t);
                trough_n += 1.0;
            }
        }
        let peak = peak / peak_n;
        let trough = trough / trough_n;
        assert!(
            peak - trough > 0.3,
            "diurnal peak {peak:.3} vs trough {trough:.3}"
        );
    }
}
