//! The discrete-event cluster simulator.
//!
//! Executes one or more jobs under token scheduling with spare
//! capacity, background load, failures and per-job controllers. See the
//! crate docs for the model; the implementation notes that matter:
//!
//! - **Stale-event filtering**: task completions are scheduled when the
//!   task starts; if the task is evicted or killed before the event
//!   fires, the event is recognized as stale by an attempt counter and
//!   ignored.
//! - **Token classes**: a task runs as `Guaranteed` (within the job's
//!   guarantee) or `Spare`. Class changes in flight (upgrades on a
//!   guarantee increase, demotions on a decrease) alter eviction
//!   priority but not the already-sampled completion time.
//! - **Data loss**: machine failures may force recomputation of
//!   completed tasks, but only in *incomplete* stages — outputs of
//!   fully completed stages are treated as durably replicated. This
//!   keeps barrier bookkeeping consistent while still exercising the
//!   expensive pre-barrier failure mode.

use std::collections::VecDeque;

use jockey_jobgraph::profile::{JobProfile, ProfileBuilder};
use jockey_jobgraph::task::{TaskDeps, TaskId};
use jockey_simrt::dist::{bernoulli, Exponential, Sample};
use jockey_simrt::event::EventQueue;
use jockey_simrt::observe;
use jockey_simrt::observe::{EntryKind, NoopObserver, SharedJournal, SimObserver};
use jockey_simrt::rng::SeedDeriver;
use jockey_simrt::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

use crate::background::BackgroundModel;
use crate::config::ClusterConfig;
use crate::controller::{ControlDecision, JobController, JobStatus};
use crate::job::JobSpec;
use crate::trace::RunTrace;

/// Token class a running task occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TokenClass {
    Guaranteed,
    Spare,
}

/// Per-task lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq)]
enum TaskState {
    /// Dependencies not yet satisfied.
    Pending,
    /// Ready to run; present in the ready queue.
    Ready,
    /// Occupying a token; the attempt number identifies the scheduled
    /// completion event.
    Running { attempt: u32 },
    /// Completed; remembers the attempt's execution seconds so that
    /// recomputation can roll back work accounting.
    Done { run_secs: f64 },
}

/// A task currently occupying a token.
#[derive(Clone, Copy, Debug)]
struct RunningTask {
    task: TaskId,
    attempt: u32,
    class: TokenClass,
    started: SimTime,
    queue_secs: f64,
    run_secs: f64,
    /// Hosting machine (placement model only).
    machine: Option<u32>,
}

/// Simulation events.
enum Event {
    JobStart {
        job: usize,
    },
    TaskDone {
        job: usize,
        task: TaskId,
        attempt: u32,
    },
    ControlTick {
        job: usize,
    },
    BackgroundTick,
    MachineFailure,
    DeadlineChange {
        job: usize,
        new_deadline: SimDuration,
    },
}

/// One job's dynamic state inside the simulator.
struct JobRun {
    spec: JobSpec,
    controller: Box<dyn JobController>,
    start_at: SimTime,
    started: Option<SimTime>,
    finished_at: Option<SimTime>,
    state: Vec<Vec<TaskState>>,
    attempts: Vec<Vec<u32>>,
    completed: Vec<u32>,
    done_tasks: u64,
    ready: VecDeque<TaskId>,
    running: Vec<RunningTask>,
    guarantee: u32,
    work_done: f64,
    wasted: f64,
    guaranteed_task_count: u64,
    spare_task_count: u64,
    profile: ProfileBuilder,
    trace: RunTrace,
    rng_runtime: StdRng,
    rng_queue: StdRng,
    rng_fail: StdRng,
}

impl JobRun {
    fn total_tasks(&self) -> u64 {
        self.spec.graph.total_tasks()
    }

    fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    fn is_active(&self) -> bool {
        self.started.is_some() && self.finished_at.is_none()
    }

    fn running_in_class(&self, class: TokenClass) -> u32 {
        self.running.iter().filter(|r| r.class == class).count() as u32
    }

    fn task_state(&self, t: TaskId) -> TaskState {
        self.state[t.stage.index()][t.index as usize]
    }

    fn set_task_state(&mut self, t: TaskId, s: TaskState) {
        self.state[t.stage.index()][t.index as usize] = s;
    }

    /// Pops ready tasks, skipping stale queue entries.
    fn pop_ready(&mut self) -> Option<TaskId> {
        while let Some(t) = self.ready.pop_front() {
            if self.task_state(t) == TaskState::Ready {
                return Some(t);
            }
        }
        None
    }

    fn status(&self, now: SimTime) -> JobStatus {
        let graph = &self.spec.graph;
        let stage_fraction = graph
            .stage_ids()
            .map(|s| f64::from(self.completed[s.index()]) / f64::from(graph.tasks_in(s)))
            .collect();
        JobStatus {
            now,
            elapsed: now.saturating_since(self.started.unwrap_or(now)),
            stage_fraction,
            stage_completed: self.completed.clone(),
            running: self.running.len() as u32,
            running_guaranteed: self.running_in_class(TokenClass::Guaranteed),
            guarantee: self.guarantee,
            work_done: self.work_done,
            finished: self.is_finished(),
        }
    }
}

/// The outcome of one job's simulated execution.
#[derive(Debug)]
pub struct JobResult {
    /// Job name (from its graph).
    pub name: String,
    /// When the job was submitted.
    pub started_at: SimTime,
    /// Completion time, or `None` if the simulation horizon was hit.
    pub completed_at: Option<SimTime>,
    /// Completed-work task-seconds (excluding failed/evicted attempts).
    pub work_done_secs: f64,
    /// Task-seconds lost to failures and evictions.
    pub wasted_secs: f64,
    /// Tasks started on guaranteed tokens.
    pub guaranteed_task_count: u64,
    /// Tasks started on spare tokens.
    pub spare_task_count: u64,
    /// Recorded control/allocation time series.
    pub trace: RunTrace,
    /// The profile measured during this run (usable as training data).
    pub profile: JobProfile,
}

impl JobResult {
    /// End-to-end latency, if the job finished.
    pub fn duration(&self) -> Option<SimDuration> {
        self.completed_at
            .map(|t| t.saturating_since(self.started_at))
    }

    /// The oracle allocation `O(T, d) = ceil(T/d)` for deadline `d`
    /// (§5.1), using this run's completed work as `T`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn oracle_allocation(&self, deadline: SimDuration) -> u32 {
        assert!(!deadline.is_zero());
        (self.work_done_secs / deadline.as_secs_f64()).ceil() as u32
    }
}

/// The cluster simulator. See the crate docs for an end-to-end example.
///
/// # Diagnostics
///
/// Every dispatched event, control decision, task transition and RNG
/// stream fork is reported through a [`SimObserver`]. The default
/// observer is a no-op; call [`ClusterSim::attach_journal`] to retain
/// the last `N` records in a [`SharedJournal`] and dump them from a
/// failing test. In debug/test builds, after every [`ClusterSim::step`]
/// the simulator checks its core invariants (token conservation,
/// event-time monotonicity, per-stage task accounting, monotone stage
/// fractions) and panics with the journal tail when one is violated.
pub struct ClusterSim {
    cfg: ClusterConfig,
    jobs: Vec<JobRun>,
    queue: EventQueue<Event>,
    background: BackgroundModel,
    rng_machine: StdRng,
    seeds: SeedDeriver,
    observer: Box<dyn SimObserver>,
    invariants_enabled: bool,
    /// Time of the most recently dispatched event (event-time
    /// monotonicity invariant).
    last_event_time: SimTime,
    /// Per-job, per-stage floor on completed-task counts (monotone
    /// stage-fraction invariant); lowered explicitly when a data-loss
    /// event legitimately rolls completions back.
    completed_floor: Vec<Vec<u32>>,
}

impl ClusterSim {
    /// Creates a simulator with the given configuration and root seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid cluster config: {e}");
        }
        let seeds = SeedDeriver::new(seed);
        let background = BackgroundModel::new(cfg.background.clone(), seeds.rng("background"));
        ClusterSim {
            cfg,
            jobs: Vec::new(),
            queue: EventQueue::new(),
            background,
            rng_machine: seeds.rng("machine-failures"),
            seeds,
            observer: Box::new(NoopObserver),
            invariants_enabled: cfg!(debug_assertions),
            last_event_time: SimTime::ZERO,
            completed_floor: Vec::new(),
        }
    }

    /// Replaces the simulator's observer (the default records nothing).
    pub fn set_observer(&mut self, observer: Box<dyn SimObserver>) {
        self.observer = observer;
    }

    /// Attaches a fresh ring journal retaining `capacity` entries and
    /// returns a handle to it; use [`SharedJournal::dump`] after the
    /// run (or from a panic hook) to see what the simulator did last.
    pub fn attach_journal(&mut self, capacity: usize) -> SharedJournal {
        let journal = SharedJournal::new(capacity);
        self.observer = Box::new(journal.clone());
        journal
    }

    /// Enables or disables the per-step invariant checks. They default
    /// to on in debug/test builds and off in release builds.
    pub fn set_invariant_checks(&mut self, enabled: bool) {
        self.invariants_enabled = enabled;
    }

    /// Adds a job starting at time zero. Returns its index.
    pub fn add_job(&mut self, spec: JobSpec, controller: Box<dyn JobController>) -> usize {
        self.add_job_at(spec, controller, SimTime::ZERO)
    }

    /// Adds a job submitted at `start_at`. Returns its index.
    pub fn add_job_at(
        &mut self,
        spec: JobSpec,
        controller: Box<dyn JobController>,
        start_at: SimTime,
    ) -> usize {
        let idx = self.jobs.len();
        let graph = spec.graph.clone();
        let n = graph.num_stages();
        let state = graph
            .stage_ids()
            .map(|s| vec![TaskState::Pending; graph.tasks_in(s) as usize])
            .collect();
        let attempts = graph
            .stage_ids()
            .map(|s| vec![0_u32; graph.tasks_in(s) as usize])
            .collect();
        let job = JobRun {
            controller,
            start_at,
            started: None,
            finished_at: None,
            state,
            attempts,
            completed: vec![0; n],
            done_tasks: 0,
            ready: VecDeque::new(),
            running: Vec::new(),
            guarantee: 0,
            work_done: 0.0,
            wasted: 0.0,
            guaranteed_task_count: 0,
            spare_task_count: 0,
            profile: ProfileBuilder::new(&graph),
            trace: RunTrace::new(),
            rng_runtime: self.seeds.rng_indexed("job-runtime", idx as u64),
            rng_queue: self.seeds.rng_indexed("job-queue", idx as u64),
            rng_fail: self.seeds.rng_indexed("job-fail", idx as u64),
            spec,
        };
        self.jobs.push(job);
        self.completed_floor.push(vec![0; n]);
        observe!(
            self.observer,
            start_at,
            EntryKind::RngFork,
            "job {idx}: streams \"job-runtime\"/\"job-queue\"/\"job-fail\" forked"
        );
        idx
    }

    /// Schedules a deadline change for `job` at time `at` (§5.2's
    /// deadline-change experiments). The job's controller is notified
    /// via [`JobController::deadline_changed`].
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn schedule_deadline_change(&mut self, job: usize, at: SimTime, new_deadline: SimDuration) {
        assert!(job < self.jobs.len());
        self.queue
            .schedule(at, Event::DeadlineChange { job, new_deadline });
    }

    /// Runs the simulation to completion (all jobs done, queue drained,
    /// or the configured horizon reached) and returns per-job results.
    pub fn run(mut self) -> Vec<JobResult> {
        self.prime();
        while let Some((now, event)) = self.queue.pop() {
            if now > self.cfg.max_sim_time {
                break;
            }
            self.step(now, event);
            if self.jobs.iter().all(JobRun::is_finished) {
                break;
            }
        }

        let horizon = self.queue.now();
        self.jobs
            .into_iter()
            .map(|j| {
                let end = j.finished_at.unwrap_or(horizon.max_of(j.start_at));
                let duration = end.saturating_since(j.started.unwrap_or(j.start_at));
                let profile = j
                    .profile
                    .finish(duration.as_secs_f64().max(1e-3), j.spec.data_gb);
                JobResult {
                    name: j.spec.graph.name().to_string(),
                    started_at: j.start_at,
                    completed_at: j.finished_at,
                    work_done_secs: j.work_done,
                    wasted_secs: j.wasted,
                    guaranteed_task_count: j.guaranteed_task_count,
                    spare_task_count: j.spare_task_count,
                    trace: j.trace,
                    profile,
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // The event loop.
    // ------------------------------------------------------------------

    /// Seeds the event queue with job starts, the background tick and
    /// the first machine failure.
    fn prime(&mut self) {
        observe!(
            self.observer,
            SimTime::ZERO,
            EntryKind::RngFork,
            "root streams \"background\" and \"machine-failures\" forked"
        );
        for j in 0..self.jobs.len() {
            self.queue
                .schedule(self.jobs[j].start_at, Event::JobStart { job: j });
        }
        if self.cfg.background.enabled {
            let tick = self.background.tick();
            self.queue
                .schedule(SimTime::ZERO + tick, Event::BackgroundTick);
        }
        if self.cfg.failures.machine_failure_rate_per_hour > 0.0 {
            self.arm_machine_failure(SimTime::ZERO);
        }
    }

    /// Dispatches one event, then (in test/debug builds) checks the
    /// simulator's invariants. Every event path funnels through the
    /// scheduling pass, so post-step state is always consistent.
    fn step(&mut self, now: SimTime, event: Event) {
        if now > self.last_event_time {
            observe!(
                self.observer,
                now,
                EntryKind::Clock,
                "clock advances from {:.3}s",
                self.last_event_time.as_secs_f64()
            );
        }
        match &event {
            Event::JobStart { job } => {
                observe!(self.observer, now, EntryKind::Event, "JobStart job={job}");
            }
            Event::TaskDone { job, task, attempt } => {
                observe!(
                    self.observer,
                    now,
                    EntryKind::Event,
                    "TaskDone job={job} task=s{}/{} attempt={attempt}",
                    task.stage.index(),
                    task.index
                );
            }
            Event::ControlTick { job } => {
                observe!(
                    self.observer,
                    now,
                    EntryKind::Event,
                    "ControlTick job={job}"
                );
            }
            Event::BackgroundTick => {
                observe!(self.observer, now, EntryKind::Event, "BackgroundTick");
            }
            Event::MachineFailure => {
                observe!(self.observer, now, EntryKind::Event, "MachineFailure");
            }
            Event::DeadlineChange { job, new_deadline } => {
                observe!(
                    self.observer,
                    now,
                    EntryKind::Event,
                    "DeadlineChange job={job} new_deadline={:.1}s",
                    new_deadline.as_secs_f64()
                );
            }
        }
        match event {
            Event::JobStart { job } => self.on_job_start(job, now),
            Event::TaskDone { job, task, attempt } => self.on_task_done(job, task, attempt, now),
            Event::ControlTick { job } => self.on_control_tick(job, now),
            Event::BackgroundTick => self.on_background_tick(now),
            Event::MachineFailure => self.on_machine_failure(now),
            Event::DeadlineChange { job, new_deadline } => {
                self.jobs[job].controller.deadline_changed(new_deadline);
                // Force an immediate control decision at the new
                // deadline rather than waiting for the next tick.
                self.control_decision(job, now);
                self.schedule_tasks(now);
            }
        }
        if self.invariants_enabled {
            self.check_invariants(now);
        } else {
            self.last_event_time = now;
        }
    }

    // ------------------------------------------------------------------
    // Invariant checks.
    // ------------------------------------------------------------------

    /// Verifies the simulator's core invariants after an event:
    ///
    /// 1. **Event-time monotonicity** — dispatched event times never go
    ///    backwards.
    /// 2. **Token conservation** — per job, guaranteed-class tasks never
    ///    exceed the guarantee, and globally `guaranteed + spare +
    ///    background + idle = capacity` with `idle >= 0` for the spare
    ///    class (guaranteed admission is bounded separately, so a
    ///    guarantee above cluster size surfaces here too).
    /// 3. **Per-stage task accounting** — `pending + ready + running +
    ///    done == total` per stage, the `Done` count matches
    ///    `completed`, the running list matches `Running` task states,
    ///    and `done_tasks` equals the per-stage sum.
    /// 4. **Monotone stage fractions** — completed counts never
    ///    decrease except through an explicit data-loss rollback (which
    ///    lowers the floor).
    fn check_invariants(&mut self, now: SimTime) {
        if now < self.last_event_time {
            self.invariant_violation(
                now,
                "event-time monotonicity",
                format!(
                    "event dispatched at {:.3}s after the clock reached {:.3}s",
                    now.as_secs_f64(),
                    self.last_event_time.as_secs_f64()
                ),
            );
        }
        self.last_event_time = now;

        // Token conservation.
        let total = self.cfg.total_tokens;
        self.background.advance_to(now);
        let bg_demand = self.background.demand_tokens(now, total);
        let mut guar_running: u32 = 0;
        let mut spare_running: u32 = 0;
        for (j, job) in self.jobs.iter().enumerate() {
            let g = job.running_in_class(TokenClass::Guaranteed);
            if g > job.guarantee {
                self.invariant_violation(
                    now,
                    "token conservation",
                    format!(
                        "job {j} runs {g} guaranteed tasks above its guarantee {}",
                        job.guarantee
                    ),
                );
            }
            guar_running += g;
            spare_running += job.running_in_class(TokenClass::Spare);
        }
        let spare_budget =
            (i64::from(total) - i64::from(bg_demand) - i64::from(guar_running)).max(0);
        if i64::from(spare_running) > spare_budget {
            self.invariant_violation(
                now,
                "token conservation",
                format!(
                    "{spare_running} spare tasks exceed the spare budget {spare_budget} \
                     (capacity {total} - background {bg_demand} - guaranteed {guar_running})"
                ),
            );
        }

        // Per-stage task accounting.
        for (j, job) in self.jobs.iter().enumerate() {
            let graph = &job.spec.graph;
            let mut done_total: u64 = 0;
            let mut running_states: usize = 0;
            for s in graph.stage_ids() {
                let mut done: u32 = 0;
                for st in &job.state[s.index()] {
                    match st {
                        TaskState::Done { .. } => done += 1,
                        TaskState::Running { .. } => running_states += 1,
                        TaskState::Pending | TaskState::Ready => {}
                    }
                }
                if done != job.completed[s.index()] {
                    self.invariant_violation(
                        now,
                        "per-stage task accounting",
                        format!(
                            "job {j} stage {}: {done} Done task states but completed counter is {}",
                            s.index(),
                            job.completed[s.index()]
                        ),
                    );
                }
                done_total += u64::from(done);
            }
            if done_total != job.done_tasks {
                self.invariant_violation(
                    now,
                    "per-stage task accounting",
                    format!(
                        "job {j}: per-stage completed sum {done_total} != done_tasks {}",
                        job.done_tasks
                    ),
                );
            }
            if running_states != job.running.len() {
                self.invariant_violation(
                    now,
                    "per-stage task accounting",
                    format!(
                        "job {j}: {running_states} Running task states but {} running-list entries",
                        job.running.len()
                    ),
                );
            }
            for r in &job.running {
                match job.task_state(r.task) {
                    TaskState::Running { attempt } if attempt == r.attempt => {}
                    other => self.invariant_violation(
                        now,
                        "per-stage task accounting",
                        format!(
                            "job {j}: running-list entry s{}/{} attempt {} has task state {other:?}",
                            r.task.stage.index(),
                            r.task.index,
                            r.attempt
                        ),
                    ),
                }
            }
        }

        // Monotone stage fractions.
        for j in 0..self.jobs.len() {
            for s in 0..self.jobs[j].completed.len() {
                if self.jobs[j].completed[s] < self.completed_floor[j][s] {
                    self.invariant_violation(
                        now,
                        "monotone stage fractions",
                        format!(
                            "job {j} stage {s}: completed fell from {} to {} without a data-loss rollback",
                            self.completed_floor[j][s], self.jobs[j].completed[s]
                        ),
                    );
                }
            }
            self.completed_floor[j].copy_from_slice(&self.jobs[j].completed);
        }
    }

    /// Panics with the violation and the tail of the attached journal.
    fn invariant_violation(&self, now: SimTime, what: &str, detail: String) -> ! {
        let tail = match self.observer.tail(32) {
            Some(t) if !t.is_empty() => format!("\nlast journal entries:\n{t}"),
            _ => {
                String::from("\n(no journal attached; call ClusterSim::attach_journal for history)")
            }
        };
        panic!(
            "sim invariant violated at {:.3}s: {what}: {detail}{tail}",
            now.as_secs_f64()
        );
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn on_job_start(&mut self, j: usize, now: SimTime) {
        {
            let job = &mut self.jobs[j];
            job.started = Some(now);
            let graph = job.spec.graph.clone();
            let deps = TaskDeps::new(&graph);
            for t in deps.initial_tasks() {
                job.set_task_state(t, TaskState::Ready);
                job.ready.push_back(t);
            }
        }
        // Initial control decision.
        let status = self.jobs[j].status(now);
        let decision = self.jobs[j].controller.initial(&status);
        self.apply_decision(j, now, decision);
        self.queue
            .schedule(now + self.cfg.control_period, Event::ControlTick { job: j });
        self.schedule_tasks(now);
    }

    fn on_control_tick(&mut self, j: usize, now: SimTime) {
        if self.jobs[j].is_finished() {
            return;
        }
        self.control_decision(j, now);
        self.queue
            .schedule(now + self.cfg.control_period, Event::ControlTick { job: j });
        self.schedule_tasks(now);
    }

    fn control_decision(&mut self, j: usize, now: SimTime) {
        let status = self.jobs[j].status(now);
        let decision = self.jobs[j].controller.tick(&status);
        self.apply_decision(j, now, decision);
    }

    fn apply_decision(&mut self, j: usize, now: SimTime, decision: ControlDecision) {
        let util = self.background.utilization(now);
        let job = &mut self.jobs[j];
        job.guarantee = decision.guarantee.min(self.cfg.max_guarantee);
        job.trace.guarantee.push(now, f64::from(job.guarantee));
        job.trace.running.push(now, job.running.len() as f64);
        job.trace.background_util.push(now, util);
        if let Some(raw) = decision.raw {
            job.trace.raw_allocation.push(now, raw);
        }
        if let Some(p) = decision.progress {
            job.trace.progress.push(now, p);
        }
        if let Some(t) = decision.predicted_completion {
            job.trace.predicted_completion.push(now, t);
        }
        // Record the raw stage-fraction trajectory so progress
        // indicators can be re-evaluated offline over this exact run.
        let graph = &job.spec.graph;
        if job.trace.stage_fractions.is_empty() {
            job.trace.stage_fractions =
                vec![jockey_simrt::series::TimeSeries::new(); graph.num_stages()];
        }
        for s in graph.stage_ids() {
            let frac = f64::from(job.completed[s.index()]) / f64::from(graph.tasks_in(s));
            job.trace.stage_fractions[s.index()].push(now, frac);
        }
        let guarantee = job.guarantee;
        observe!(
            self.observer,
            now,
            EntryKind::Decision,
            "job {j}: guarantee={guarantee} raw={:?} progress={:?} predicted_completion={:?}",
            decision.raw,
            decision.progress,
            decision.predicted_completion
        );
    }

    fn on_task_done(&mut self, j: usize, task: TaskId, attempt: u32, now: SimTime) {
        let failure_prob = self
            .cfg
            .failures
            .task_failure_prob
            .unwrap_or(self.jobs[j].spec.task_failure_prob);

        let stage_now_complete;
        let failed;
        {
            let job = &mut self.jobs[j];
            // Stale completion (task was evicted/killed since scheduling)?
            match job.task_state(task) {
                TaskState::Running { attempt: a } if a == attempt => {}
                _ => {
                    observe!(
                        self.observer,
                        now,
                        EntryKind::Task,
                        "job {j}: stale TaskDone for s{}/{} attempt {attempt} ignored",
                        task.stage.index(),
                        task.index
                    );
                    return;
                }
            }
            let Some(pos) = job
                .running
                .iter()
                .position(|r| r.task == task && r.attempt == attempt)
            else {
                return;
            };
            let running = job.running.swap_remove(pos);

            failed = bernoulli(&mut job.rng_fail, failure_prob);
            job.profile
                .record_task(task.stage, running.queue_secs, running.run_secs, failed);
            if failed {
                job.wasted += running.run_secs;
                job.set_task_state(task, TaskState::Ready);
                job.ready.push_back(task);
                stage_now_complete = false;
            } else {
                job.work_done += running.run_secs;
                job.set_task_state(
                    task,
                    TaskState::Done {
                        run_secs: running.run_secs,
                    },
                );
                job.completed[task.stage.index()] += 1;
                job.done_tasks += 1;
                job.profile.record_stage_window(
                    task.stage,
                    running
                        .started
                        .saturating_since(job.started.unwrap())
                        .as_secs_f64(),
                    now.saturating_since(job.started.unwrap()).as_secs_f64(),
                );
                stage_now_complete =
                    job.completed[task.stage.index()] == job.spec.graph.tasks_in(task.stage);
            }
        }
        observe!(
            self.observer,
            now,
            EntryKind::Task,
            "job {j}: s{}/{} attempt {attempt} {}{}",
            task.stage.index(),
            task.index,
            if failed { "failed, requeued" } else { "done" },
            if stage_now_complete {
                " (stage complete)"
            } else {
                ""
            }
        );

        // Promote newly ready dependents.
        if !matches!(self.jobs[j].task_state(task), TaskState::Ready) {
            let graph = self.jobs[j].spec.graph.clone();
            let deps = TaskDeps::new(&graph);
            let candidates = deps.candidate_dependents(task, stage_now_complete);
            let job = &mut self.jobs[j];
            for c in candidates {
                if job.task_state(c) == TaskState::Pending
                    && deps.is_ready(c, &job.completed, |t| {
                        matches!(
                            job.state[t.stage.index()][t.index as usize],
                            TaskState::Done { .. }
                        )
                    })
                {
                    job.set_task_state(c, TaskState::Ready);
                    job.ready.push_back(c);
                }
            }
            if job.done_tasks == job.total_tasks() {
                job.finished_at = Some(now);
                job.trace.guarantee.push(now, f64::from(job.guarantee));
                job.trace.running.push(now, 0.0);
                observe!(
                    self.observer,
                    now,
                    EntryKind::Task,
                    "job {j}: all tasks done"
                );
            }
        }

        self.schedule_tasks(now);
    }

    fn on_background_tick(&mut self, now: SimTime) {
        self.schedule_tasks(now);
        if self.jobs.iter().any(|j| !j.is_finished()) {
            self.queue
                .schedule(now + self.background.tick(), Event::BackgroundTick);
        }
    }

    /// Machines in the simulated slice: explicit under the placement
    /// model, otherwise implied by token count and machine size.
    fn machine_count(&self) -> u32 {
        match &self.cfg.placement {
            Some(p) => p.machines,
            None => self
                .cfg
                .total_tokens
                .div_ceil(self.cfg.failures.tasks_per_machine.max(1)),
        }
    }

    /// Arms the next machine-failure arrival. The configured rate is a
    /// per-machine hazard, so the slice's aggregate Poisson rate scales
    /// with its machine count — a 4-machine slice fails less often than
    /// a 400-machine one at the same per-machine reliability.
    fn arm_machine_failure(&mut self, now: SimTime) {
        let rate =
            self.cfg.failures.machine_failure_rate_per_hour * f64::from(self.machine_count());
        if rate <= 0.0 {
            return;
        }
        let exp = Exponential::with_mean(3600.0 / rate);
        let delay = SimDuration::from_secs_f64(exp.sample(&mut self.rng_machine));
        observe!(
            self.observer,
            now,
            EntryKind::Decision,
            "next machine failure armed in {:.3}s",
            delay.as_secs_f64()
        );
        self.queue.schedule(now + delay, Event::MachineFailure);
    }

    fn on_machine_failure(&mut self, now: SimTime) {
        // Choose a victim job weighted by running-task count.
        let weights: Vec<u32> = self
            .jobs
            .iter()
            .map(|j| {
                if j.is_active() {
                    j.running.len() as u32
                } else {
                    0
                }
            })
            .collect();
        let total: u32 = weights.iter().sum();
        if total > 0 {
            let mut pick = self.rng_machine.gen_range(0..total);
            let mut victim = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    victim = i;
                    break;
                }
                pick -= w;
            }
            match self.cfg.placement.clone() {
                Some(p) => {
                    // A concrete machine dies: every resident task (of
                    // every job) is killed.
                    let machine = self.rng_machine.gen_range(0..p.machines);
                    for j in 0..self.jobs.len() {
                        self.kill_tasks_on_machine(j, machine, now);
                    }
                }
                None => {
                    self.kill_running_tasks(victim, self.cfg.failures.tasks_per_machine, now);
                }
            }
            if bernoulli(&mut self.rng_machine, self.cfg.failures.data_loss_prob) {
                self.lose_completed_outputs(victim, self.cfg.failures.tasks_per_machine, now);
            }
        }
        self.arm_machine_failure(now);
        self.schedule_tasks(now);
    }

    /// Kills every running task of job `j` hosted on `machine`
    /// (placement model's machine-failure semantics).
    fn kill_tasks_on_machine(&mut self, j: usize, machine: u32, now: SimTime) {
        let job = &mut self.jobs[j];
        let mut killed: u32 = 0;
        let mut i = 0;
        while i < job.running.len() {
            if job.running[i].machine == Some(machine) {
                let victim = job.running.swap_remove(i);
                let elapsed = now.saturating_since(victim.started).as_secs_f64();
                job.wasted += elapsed.min(victim.run_secs);
                job.profile.record_task(
                    victim.task.stage,
                    victim.queue_secs,
                    elapsed.min(victim.run_secs),
                    true,
                );
                job.set_task_state(victim.task, TaskState::Ready);
                job.ready.push_back(victim.task);
                killed += 1;
            } else {
                i += 1;
            }
        }
        if killed > 0 {
            observe!(
                self.observer,
                now,
                EntryKind::Task,
                "job {j}: machine {machine} died, {killed} resident tasks killed"
            );
        }
    }

    /// Kills up to `count` randomly chosen running tasks of job `j`;
    /// they re-queue and rerun from scratch.
    fn kill_running_tasks(&mut self, j: usize, count: u32, now: SimTime) {
        let job = &mut self.jobs[j];
        let mut killed: u32 = 0;
        for _ in 0..count {
            if job.running.is_empty() {
                break;
            }
            let pos = job.rng_fail.gen_range(0..job.running.len());
            let victim = job.running.swap_remove(pos);
            let elapsed = now.saturating_since(victim.started).as_secs_f64();
            job.wasted += elapsed.min(victim.run_secs);
            job.profile.record_task(
                victim.task.stage,
                victim.queue_secs,
                elapsed.min(victim.run_secs),
                true,
            );
            job.set_task_state(victim.task, TaskState::Ready);
            job.ready.push_back(victim.task);
            killed += 1;
        }
        observe!(
            self.observer,
            now,
            EntryKind::Task,
            "job {j}: machine failure killed {killed} of up to {count} running tasks"
        );
    }

    /// Destroys the outputs of up to `count` completed tasks in one
    /// randomly chosen *incomplete* stage of job `j`, forcing their
    /// recomputation. One-to-one dependents that were only Ready are
    /// demoted back to Pending.
    fn lose_completed_outputs(&mut self, j: usize, count: u32, now: SimTime) {
        let graph = self.jobs[j].spec.graph.clone();
        let deps = TaskDeps::new(&graph);
        let job = &mut self.jobs[j];

        // Candidate stages: incomplete, with at least one done task.
        let candidates: Vec<_> = graph
            .stage_ids()
            .filter(|s| {
                let done = job.completed[s.index()];
                done > 0 && done < graph.tasks_in(*s)
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        let stage = candidates[job.rng_fail.gen_range(0..candidates.len())];

        // Collect done tasks of that stage whose one-to-one children
        // have not started (undoing them is then safe).
        let undoable: Vec<TaskId> = (0..graph.tasks_in(stage))
            .map(|i| TaskId::new(stage, i))
            .filter(|&t| matches!(job.task_state(t), TaskState::Done { .. }))
            .filter(|&t| {
                graph.children(stage).iter().all(|&(c, kind)| match kind {
                    jockey_jobgraph::graph::EdgeKind::OneToOne => matches!(
                        job.task_state(TaskId::new(c, t.index)),
                        TaskState::Pending | TaskState::Ready
                    ),
                    // Barrier children can't have started: stage is incomplete.
                    jockey_jobgraph::graph::EdgeKind::AllToAll => true,
                })
            })
            .collect();

        for &t in undoable.iter().take(count as usize) {
            let TaskState::Done { run_secs } = job.task_state(t) else {
                continue;
            };
            job.work_done -= run_secs;
            job.wasted += run_secs;
            job.completed[stage.index()] -= 1;
            job.done_tasks -= 1;
            // Demote one-to-one children back to Pending; their queue
            // entries (if any) become stale.
            for &(c, kind) in graph.children(stage) {
                if kind == jockey_jobgraph::graph::EdgeKind::OneToOne
                    && job.task_state(TaskId::new(c, t.index)) == TaskState::Ready
                {
                    job.set_task_state(TaskId::new(c, t.index), TaskState::Pending);
                }
            }
            // The undone task reruns; its own inputs may still be intact.
            let ready = deps.is_ready(t, &job.completed, |x| {
                matches!(
                    job.state[x.stage.index()][x.index as usize],
                    TaskState::Done { .. }
                )
            });
            if ready {
                job.set_task_state(t, TaskState::Ready);
                job.ready.push_back(t);
            } else {
                job.set_task_state(t, TaskState::Pending);
            }
        }
        let undone = undoable.len().min(count as usize);
        // Legitimate rollback: lower the monotone-fraction floor so the
        // invariant checker accepts the reduced completion count.
        self.completed_floor[j][stage.index()] =
            self.jobs[j].completed[stage.index()].min(self.completed_floor[j][stage.index()]);
        observe!(
            self.observer,
            now,
            EntryKind::Task,
            "job {j}: data loss undid {undone} completed outputs in stage {}",
            stage.index()
        );
    }

    // ------------------------------------------------------------------
    // Scheduling.
    // ------------------------------------------------------------------

    /// The scheduling pass: adjusts token classes, starts guaranteed
    /// then spare tasks, and evicts spare tasks on capacity pressure.
    fn schedule_tasks(&mut self, now: SimTime) {
        self.background.advance_to(now);
        let total = self.cfg.total_tokens;
        let bg_demand = self.background.demand_tokens(now, total);
        let slowdown = self.background.slowdown(now);

        // Phase 1: per-job class balancing and guaranteed starts.
        for j in 0..self.jobs.len() {
            if !self.jobs[j].is_active() {
                continue;
            }
            let guarantee = self.jobs[j].guarantee;
            {
                let job = &mut self.jobs[j];
                // Demote newest guaranteed tasks above the guarantee.
                while job.running_in_class(TokenClass::Guaranteed) > guarantee {
                    let pos = job
                        .running
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.class == TokenClass::Guaranteed)
                        .max_by_key(|(_, r)| r.started)
                        .map(|(i, _)| i)
                        .expect("counted above");
                    job.running[pos].class = TokenClass::Spare;
                }
                // Upgrade oldest spare tasks into unused guarantee.
                while job.running_in_class(TokenClass::Guaranteed) < guarantee {
                    let pos = job
                        .running
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.class == TokenClass::Spare)
                        .min_by_key(|(_, r)| r.started);
                    match pos {
                        Some((i, _)) => job.running[i].class = TokenClass::Guaranteed,
                        None => break,
                    }
                }
            }
            // Start new guaranteed tasks.
            while self.jobs[j].running_in_class(TokenClass::Guaranteed) < guarantee {
                let Some(task) = self.jobs[j].pop_ready() else {
                    break;
                };
                self.start_task(j, task, TokenClass::Guaranteed, now, slowdown);
            }
        }

        // Phase 2: spare capacity accounting.
        let guar_running: u32 = self
            .jobs
            .iter()
            .map(|j| j.running_in_class(TokenClass::Guaranteed))
            .sum();
        let spare_running: u32 = self
            .jobs
            .iter()
            .map(|j| j.running_in_class(TokenClass::Spare))
            .sum();
        let spare_budget = i64::from(total) - i64::from(bg_demand) - i64::from(guar_running);

        if i64::from(spare_running) > spare_budget {
            // Evict newest spare tasks first until within budget.
            let mut to_evict = i64::from(spare_running) - spare_budget.max(0);
            while to_evict > 0 {
                // Find the globally newest spare task.
                let mut newest: Option<(usize, usize, SimTime)> = None;
                for (ji, job) in self.jobs.iter().enumerate() {
                    for (ri, r) in job.running.iter().enumerate() {
                        if r.class == TokenClass::Spare
                            && newest.is_none_or(|(_, _, t)| r.started > t)
                        {
                            newest = Some((ji, ri, r.started));
                        }
                    }
                }
                let Some((ji, ri, _)) = newest else { break };
                let job = &mut self.jobs[ji];
                let victim = job.running.swap_remove(ri);
                let elapsed = now.saturating_since(victim.started).as_secs_f64();
                job.wasted += elapsed.min(victim.run_secs);
                job.set_task_state(victim.task, TaskState::Ready);
                job.ready.push_back(victim.task);
                observe!(
                    self.observer,
                    now,
                    EntryKind::Task,
                    "job {ji}: spare task s{}/{} evicted under capacity pressure",
                    victim.task.stage.index(),
                    victim.task.index
                );
                to_evict -= 1;
            }
        } else if self.cfg.spare_enabled {
            // Distribute spare tokens round-robin among jobs with
            // pending work.
            let mut avail = spare_budget - i64::from(spare_running);
            'outer: while avail > 0 {
                let mut progressed = false;
                for j in 0..self.jobs.len() {
                    if avail == 0 {
                        break 'outer;
                    }
                    if !self.jobs[j].is_active() {
                        continue;
                    }
                    if let Some(task) = self.jobs[j].pop_ready() {
                        self.start_task(j, task, TokenClass::Spare, now, slowdown);
                        avail -= 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }

        // Token conservation: foreground tasks plus the background's
        // demand can never exceed the slice (guaranteed starts are
        // admission-bounded; spare starts are budgeted above).
        debug_assert!(
            {
                let fg: u32 = self.jobs.iter().map(|j| j.running.len() as u32).sum();
                i64::from(fg) + i64::from(bg_demand) <= i64::from(total) + i64::from(guar_running)
            },
            "token over-commit in scheduling pass"
        );
    }

    /// Starts one task attempt and schedules its completion event.
    fn start_task(
        &mut self,
        j: usize,
        task: TaskId,
        class: TokenClass,
        now: SimTime,
        slowdown: f64,
    ) {
        let job = &mut self.jobs[j];
        debug_assert_eq!(job.task_state(task), TaskState::Ready);
        let s = task.stage.index();
        job.attempts[s][task.index as usize] += 1;
        let attempt = job.attempts[s][task.index as usize];

        let base_run = job.spec.stage_runtimes[s].sample(&mut job.rng_runtime);
        let base_queue = job.spec.stage_queues[s].sample(&mut job.rng_queue);
        let class_mult = match class {
            TokenClass::Guaranteed => 1.0,
            TokenClass::Spare => self.cfg.spare_slowdown,
        };
        // Machine placement: pick a host and apply the remote-read
        // penalty when the task loses locality.
        let (machine, locality_mult) = match &self.cfg.placement {
            Some(p) => {
                let (m, mult) = p.place(&mut job.rng_queue);
                (Some(m), mult)
            }
            None => (None, 1.0),
        };
        let queue_secs = base_queue * slowdown;
        let run_secs = base_run * slowdown * class_mult * locality_mult;

        match class {
            TokenClass::Guaranteed => job.guaranteed_task_count += 1,
            TokenClass::Spare => job.spare_task_count += 1,
        }
        job.set_task_state(task, TaskState::Running { attempt });
        job.running.push(RunningTask {
            task,
            attempt,
            class,
            started: now,
            queue_secs,
            run_secs,
            machine,
        });
        observe!(
            self.observer,
            now,
            EntryKind::Task,
            "job {j}: start s{}/{} attempt {attempt} class={class:?} queue={queue_secs:.2}s run={run_secs:.2}s machine={machine:?}",
            task.stage.index(),
            task.index
        );
        let occupancy =
            SimDuration::from_secs_f64(queue_secs + run_secs).max(SimDuration::from_millis(1));
        self.queue.schedule(
            now + occupancy,
            Event::TaskDone {
                job: j,
                task,
                attempt,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackgroundConfig, FailureConfig};
    use crate::controller::FixedAllocation;
    use jockey_jobgraph::graph::{EdgeKind, JobGraph, JobGraphBuilder};
    use jockey_simrt::dist::Constant;
    use std::sync::Arc;

    fn two_stage_graph(map_tasks: u32, reduce_tasks: u32) -> Arc<JobGraph> {
        let mut b = JobGraphBuilder::new("test-job");
        let m = b.stage("map", map_tasks);
        let r = b.stage("reduce", reduce_tasks);
        b.edge(m, r, EdgeKind::AllToAll);
        Arc::new(b.build().unwrap())
    }

    fn spec(map_tasks: u32, reduce_tasks: u32, secs: f64) -> JobSpec {
        JobSpec::uniform(
            two_stage_graph(map_tasks, reduce_tasks),
            Constant(secs),
            Constant(0.0),
            0.0,
        )
    }

    #[test]
    fn dedicated_run_completes_with_exact_latency() {
        // 8 map tasks of 10 s on 4 tokens = 2 waves (20 s); then 2
        // reduce tasks of 10 s in parallel (10 s). Total 30 s.
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
        sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
        let r = sim.run();
        assert_eq!(r[0].completed_at, Some(SimTime::from_secs(30)));
        assert_eq!(r[0].duration(), Some(SimDuration::from_secs(30)));
        assert_eq!(r[0].work_done_secs, 100.0);
        assert_eq!(r[0].wasted_secs, 0.0);
        assert_eq!(r[0].guaranteed_task_count, 10);
        assert_eq!(r[0].spare_task_count, 0);
    }

    #[test]
    fn barrier_serializes_stages() {
        // 2 map tasks, 10 s each, 10 tokens: reduce cannot overlap map.
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(10), 1);
        sim.add_job(spec(2, 2, 10.0), Box::new(FixedAllocation(10)));
        let r = sim.run();
        assert_eq!(r[0].completed_at, Some(SimTime::from_secs(20)));
    }

    #[test]
    fn one_to_one_edges_pipeline() {
        let mut b = JobGraphBuilder::new("pipe");
        let a = b.stage("a", 2);
        let c = b.stage("b", 2);
        b.edge(a, c, EdgeKind::OneToOne);
        let graph = Arc::new(b.build().unwrap());
        let spec = JobSpec::uniform(graph, Constant(10.0), Constant(0.0), 0.0);
        // 2 tokens: both chains run fully parallel; 20 s total (no barrier).
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(2), 1);
        sim.add_job(spec, Box::new(FixedAllocation(2)));
        let r = sim.run();
        assert_eq!(r[0].completed_at, Some(SimTime::from_secs(20)));
    }

    #[test]
    fn fewer_tokens_make_jobs_slower() {
        let latency = |tokens: u32| {
            let mut sim = ClusterSim::new(ClusterConfig::dedicated(tokens), 1);
            sim.add_job(spec(16, 2, 10.0), Box::new(FixedAllocation(tokens)));
            sim.run()[0].duration().unwrap()
        };
        assert!(latency(2) > latency(4));
        assert!(latency(4) > latency(16));
    }

    #[test]
    fn queue_latency_delays_completion() {
        let graph = two_stage_graph(1, 1);
        let spec = JobSpec::uniform(graph, Constant(10.0), Constant(3.0), 0.0);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(2), 1);
        sim.add_job(spec, Box::new(FixedAllocation(2)));
        let r = sim.run();
        // Two serial tasks, each 3 s queue + 10 s run.
        assert_eq!(r[0].completed_at, Some(SimTime::from_secs(26)));
    }

    #[test]
    fn task_failures_cause_retries_and_waste() {
        let graph = two_stage_graph(20, 2);
        let spec = JobSpec::uniform(graph, Constant(5.0), Constant(0.0), 0.3);
        let mut sim = ClusterSim::new(ClusterConfig::dedicated_with_failures(4), 3);
        sim.add_job(spec, Box::new(FixedAllocation(4)));
        let r = sim.run();
        assert!(r[0].completed_at.is_some());
        assert!(r[0].wasted_secs > 0.0, "failures should waste work");
        assert_eq!(r[0].work_done_secs, 110.0);
        // The profile should have recorded failed attempts.
        assert!(r[0].profile.task_failure_prob > 0.05);
    }

    #[test]
    fn spare_capacity_accelerates_beyond_guarantee() {
        let mut cfg = ClusterConfig::production();
        cfg.total_tokens = 100;
        cfg.max_guarantee = 10;
        cfg.background = BackgroundConfig::none();
        cfg.failures = FailureConfig::none();
        // All 100 tokens idle; guarantee only 2 of them.
        let mut sim = ClusterSim::new(cfg, 5);
        sim.add_job(spec(40, 2, 10.0), Box::new(FixedAllocation(2)));
        let r = sim.run();
        // With only 2 guaranteed tokens this would take 40/2*10 + 10 = 210 s;
        // spare tokens (even at 1.25x slowdown) must beat that easily.
        let d = r[0].duration().unwrap();
        assert!(d < SimDuration::from_secs(60), "took {d:?}");
        assert!(r[0].spare_task_count > 0);
    }

    #[test]
    fn disabled_spare_keeps_job_at_guarantee() {
        let mut cfg = ClusterConfig::dedicated(100);
        cfg.max_guarantee = 100;
        cfg.spare_enabled = false;
        let mut sim = ClusterSim::new(cfg, 5);
        sim.add_job(spec(40, 2, 10.0), Box::new(FixedAllocation(2)));
        let r = sim.run();
        assert_eq!(r[0].spare_task_count, 0);
        assert_eq!(
            r[0].duration().unwrap(),
            SimDuration::from_secs(40 / 2 * 10 + 10)
        );
    }

    #[test]
    fn background_load_squeezes_spare_and_evicts() {
        let mut cfg = ClusterConfig::production();
        cfg.total_tokens = 50;
        cfg.max_guarantee = 4;
        cfg.background.mean_util = 0.9;
        cfg.background.volatility = 0.1;
        cfg.background.overload_rate_per_hour = 20.0;
        cfg.background.overload_duration_mins = 3.0;
        cfg.failures = FailureConfig::none();
        let mut sim = ClusterSim::new(cfg, 11);
        sim.add_job(spec(60, 2, 20.0), Box::new(FixedAllocation(4)));
        let r = sim.run();
        assert!(r[0].completed_at.is_some());
        // Evictions show up as wasted seconds without task failures.
        assert!(r[0].wasted_secs > 0.0, "expected spare evictions");
    }

    #[test]
    fn machine_failures_do_not_wedge_the_job() {
        let mut cfg = ClusterConfig::dedicated(8);
        cfg.failures = FailureConfig {
            task_failure_prob: Some(0.0),
            machine_failure_rate_per_hour: 120.0, // Very frequent.
            tasks_per_machine: 3,
            data_loss_prob: 1.0,
        };
        let mut sim = ClusterSim::new(cfg, 13);
        sim.add_job(spec(30, 5, 8.0), Box::new(FixedAllocation(8)));
        let r = sim.run();
        assert!(r[0].completed_at.is_some(), "job must still finish");
        assert!(r[0].wasted_secs > 0.0);
        assert_eq!(r[0].work_done_secs, 30.0 * 8.0 + 5.0 * 8.0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = |seed| {
            let mut cfg = ClusterConfig::production();
            cfg.total_tokens = 60;
            cfg.max_guarantee = 10;
            let mut sim = ClusterSim::new(cfg, seed);
            sim.add_job(spec(30, 3, 12.0), Box::new(FixedAllocation(6)));
            sim.run()[0].completed_at
        };
        assert_eq!(run(42), run(42));
        assert!(run(42).is_some());
    }

    #[test]
    fn different_seeds_vary_under_noise() {
        let run = |seed| {
            let mut cfg = ClusterConfig::production();
            cfg.total_tokens = 60;
            cfg.max_guarantee = 10;
            let mut sim = ClusterSim::new(cfg, seed);
            sim.add_job(spec(30, 3, 12.0), Box::new(FixedAllocation(6)));
            sim.run()[0].completed_at.unwrap()
        };
        let outcomes: std::collections::HashSet<_> = (0..5).map(run).collect();
        assert!(outcomes.len() > 1, "noise should differentiate seeds");
    }

    #[test]
    fn multiple_jobs_share_the_cluster() {
        let mut cfg = ClusterConfig::dedicated(8);
        cfg.max_guarantee = 4;
        let mut sim = ClusterSim::new(cfg, 7);
        sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
        sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
        let r = sim.run();
        assert!(r[0].completed_at.is_some());
        assert!(r[1].completed_at.is_some());
        assert_eq!(r[0].completed_at, r[1].completed_at);
    }

    #[test]
    fn delayed_submission_starts_later() {
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
        sim.add_job_at(
            spec(4, 1, 10.0),
            Box::new(FixedAllocation(4)),
            SimTime::from_mins(5),
        );
        let r = sim.run();
        assert_eq!(r[0].started_at, SimTime::from_mins(5));
        assert_eq!(
            r[0].completed_at,
            Some(SimTime::from_mins(5) + SimDuration::from_secs(20))
        );
        assert_eq!(r[0].duration(), Some(SimDuration::from_secs(20)));
    }

    #[test]
    fn horizon_reports_unfinished_jobs() {
        let mut cfg = ClusterConfig::dedicated(1);
        cfg.max_sim_time = SimTime::from_secs(15);
        let mut sim = ClusterSim::new(cfg, 1);
        sim.add_job(spec(100, 1, 10.0), Box::new(FixedAllocation(1)));
        let r = sim.run();
        assert_eq!(r[0].completed_at, None);
        assert!(r[0].work_done_secs < 100.0 * 10.0);
    }

    #[test]
    fn oracle_allocation_matches_formula() {
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
        sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
        let r = sim.run();
        // T = 100 s of work; d = 50 s -> ceil(2) = 2 tokens.
        assert_eq!(r[0].oracle_allocation(SimDuration::from_secs(50)), 2);
        assert_eq!(r[0].oracle_allocation(SimDuration::from_secs(30)), 4);
    }

    #[test]
    fn run_profile_is_usable_as_training_data() {
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
        sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
        let r = sim.run();
        let p = &r[0].profile;
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[0].runtimes.len(), 8);
        assert_eq!(p.total_work(), 100.0);
        assert!(p.duration >= 29.0 && p.duration <= 31.0);
        // Stage windows: map [0, 20], reduce [20, 30] relative to 30 s.
        assert!(p.stages[1].rel_start > 0.6 && p.stages[1].rel_start < 0.7);
    }

    #[test]
    fn trace_records_control_ticks() {
        let mut cfg = ClusterConfig::dedicated(4);
        cfg.control_period = SimDuration::from_secs(10);
        let mut sim = ClusterSim::new(cfg, 1);
        sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
        let r = sim.run();
        // Ticks at 0, 10, 20 (+ final sample at 30).
        assert!(r[0].trace.guarantee.len() >= 3);
        assert_eq!(r[0].trace.guarantee.points()[0].1, 4.0);
        assert_eq!(r[0].trace.last_guarantee(), 4.0);
    }

    #[test]
    fn guarantee_is_capped_by_config() {
        let mut cfg = ClusterConfig::dedicated(4);
        cfg.max_guarantee = 3;
        let mut sim = ClusterSim::new(cfg, 1);
        sim.add_job(spec(9, 1, 10.0), Box::new(FixedAllocation(100)));
        let r = sim.run();
        assert_eq!(r[0].trace.max_guarantee(), 3.0);
        // 9 tasks at 3 tokens = 3 waves of 10 s, plus 10 s reduce.
        assert_eq!(r[0].completed_at, Some(SimTime::from_secs(40)));
    }

    // ------------------------------------------------------------------
    // Invariant checkers: each must fire on a seeded violation. The
    // tests corrupt private simulator state directly — no legitimate
    // event path produces these states (that is the point of the
    // checks).
    // ------------------------------------------------------------------

    /// Steps a fresh sim until the first task completes, so tasks are
    /// both `Done` and `Running` and the clock has advanced.
    fn stepped_sim(journal: bool) -> (ClusterSim, Option<SharedJournal>, SimTime) {
        let mut sim = ClusterSim::new(ClusterConfig::dedicated(4), 1);
        let journal = journal.then(|| sim.attach_journal(64));
        sim.add_job(spec(8, 2, 10.0), Box::new(FixedAllocation(4)));
        sim.prime();
        while sim.jobs[0].done_tasks == 0 {
            let (now, event) = sim
                .queue
                .pop()
                .expect("job cannot finish with no done tasks");
            sim.step(now, event);
        }
        let now = sim.last_event_time;
        (sim, journal, now)
    }

    #[test]
    #[should_panic(expected = "event-time monotonicity")]
    fn invariant_fires_on_time_regression() {
        let (mut sim, _, now) = stepped_sim(false);
        assert!(now > SimTime::ZERO);
        sim.check_invariants(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "token conservation")]
    fn invariant_fires_on_guarantee_overcommit() {
        let (mut sim, _, now) = stepped_sim(false);
        assert!(sim.jobs[0].running_in_class(TokenClass::Guaranteed) > 0);
        sim.jobs[0].guarantee = 0;
        sim.check_invariants(now);
    }

    #[test]
    #[should_panic(expected = "per-stage task accounting")]
    fn invariant_fires_on_completed_counter_drift() {
        let (mut sim, _, now) = stepped_sim(false);
        sim.jobs[0].completed[0] += 1;
        sim.check_invariants(now);
    }

    #[test]
    #[should_panic(expected = "monotone stage fractions")]
    fn invariant_fires_on_fraction_regression() {
        let (mut sim, _, now) = stepped_sim(false);
        // A floor above the live counter models a completion count that
        // silently went backwards (without the data-loss path that
        // legitimately lowers the floor).
        sim.completed_floor[0][0] = sim.jobs[0].completed[0] + 1;
        sim.check_invariants(now);
    }

    #[test]
    #[should_panic(expected = "no journal attached")]
    fn invariant_panic_hints_at_journal_when_absent() {
        let (mut sim, _, now) = stepped_sim(false);
        sim.jobs[0].guarantee = 0;
        sim.check_invariants(now);
    }

    #[test]
    fn invariant_panic_includes_journal_tail() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (mut sim, journal, now) = stepped_sim(true);
            assert!(!journal.expect("journal attached").is_empty());
            sim.jobs[0].guarantee = 0;
            sim.check_invariants(now);
        }));
        let payload = result.expect_err("corrupted sim must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted message");
        assert!(msg.contains("token conservation"), "{msg}");
        assert!(msg.contains("last journal entries"), "{msg}");
        // The tail shows real dispatched events, e.g. TaskDone records.
        assert!(msg.contains("TaskDone"), "{msg}");
    }

    #[test]
    fn invariant_checks_can_be_disabled() {
        let (mut sim, _, _) = stepped_sim(false);
        assert!(sim.invariants_enabled, "test builds default to enabled");
        sim.set_invariant_checks(false);
        sim.jobs[0].guarantee = 0; // Would trip token conservation.
        let (now, event) = sim.queue.pop().expect("events remain");
        sim.step(now, event); // Must not panic with checks off.
        assert_eq!(sim.last_event_time, now);
    }
}
