//! The cluster-simulator facade.
//!
//! [`ClusterSim`] is the public entry point; the machinery lives in the
//! layered modules it composes:
//!
//! - [`engine`](crate::engine) — the discrete-event loop and the state
//!   mechanics (start/kill/evict/rollback);
//! - [`scheduler`](crate::scheduler) — token and spare-capacity
//!   arbitration behind [`SchedulerPolicy`];
//! - [`failure`](crate::failure) — task and machine hazards behind
//!   [`FailureModel`];
//! - `invariants` — post-step consistency checks;
//! - [`workspace`](crate::workspace) — buffer pooling for repeated
//!   runs.
//!
//! # Diagnostics
//!
//! Every dispatched event, control decision, task transition and RNG
//! stream fork is reported through a [`SimObserver`]. The default
//! observer is a no-op; call [`ClusterSim::attach_journal`] to retain
//! the last `N` records in a [`SharedJournal`] and dump them from a
//! failing test. In debug/test builds, after every step the simulator
//! checks its core invariants (token conservation, event-time
//! monotonicity, per-stage task accounting, monotone stage fractions)
//! and panics with the journal tail when one is violated.

use std::sync::Arc;

use jockey_jobgraph::profile::JobProfile;
use jockey_simrt::observe::{ProgressSink, SharedJournal, SimObserver};
use jockey_simrt::time::{SimDuration, SimTime};

use crate::config::ClusterConfig;
use crate::controller::JobController;
use crate::engine::{Engine, Event, JobRun};
use crate::failure::FailureModel;
use crate::job::JobSpec;
use crate::scheduler::SchedulerPolicy;
use crate::trace::RunTrace;
use crate::workspace::{JobBuffers, SimWorkspace};

/// The outcome of one job's simulated execution.
#[derive(Debug)]
pub struct JobResult {
    /// Job name (from its graph).
    pub name: String,
    /// When the job was submitted.
    pub started_at: SimTime,
    /// Completion time, or `None` if the simulation horizon was hit.
    pub completed_at: Option<SimTime>,
    /// Completed-work task-seconds (excluding failed/evicted attempts).
    pub work_done_secs: f64,
    /// Task-seconds lost to failures and evictions.
    pub wasted_secs: f64,
    /// Tasks started on guaranteed tokens.
    pub guaranteed_task_count: u64,
    /// Tasks started on spare tokens.
    pub spare_task_count: u64,
    /// Speculative clone attempts launched (clone-on-slow).
    pub clone_task_count: u64,
    /// Completions won by a clone (the straggling sibling lost).
    pub clone_wins: u64,
    /// Recorded control/allocation time series.
    pub trace: RunTrace,
    /// The profile measured during this run (usable as training data).
    pub profile: JobProfile,
}

impl JobResult {
    /// End-to-end latency, if the job finished.
    pub fn duration(&self) -> Option<SimDuration> {
        self.completed_at
            .map(|t| t.saturating_since(self.started_at))
    }

    /// The oracle allocation `O(T, d) = ceil(T/d)` for deadline `d`
    /// (§5.1), using this run's completed work as `T`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn oracle_allocation(&self, deadline: SimDuration) -> u32 {
        assert!(!deadline.is_zero());
        (self.work_done_secs / deadline.as_secs_f64()).ceil() as u32
    }
}

/// Borrowed hooks threaded through one run.
#[derive(Default)]
pub struct RunHooks<'a> {
    /// Receives a progress sample each time a job's controller is
    /// consulted (including the initial decision at job start).
    pub sink: Option<&'a mut dyn ProgressSink>,
    /// Workspace that reclaims the run's buffers after conversion.
    pub reclaim: Option<&'a mut SimWorkspace>,
}

/// The cluster simulator. See the crate docs for an end-to-end example.
pub struct ClusterSim {
    pub(crate) engine: Engine,
}

impl ClusterSim {
    /// Creates a simulator with the given configuration and root seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        ClusterSim {
            engine: Engine::new(cfg, seed),
        }
    }

    /// Like [`ClusterSim::new`], but rents per-job buffers from `ws`
    /// instead of allocating fresh ones. Pair with
    /// [`RunHooks::reclaim`] so the run returns them; reuse is
    /// observably identical to fresh allocation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn with_workspace(cfg: ClusterConfig, seed: u64, ws: &mut SimWorkspace) -> Self {
        ClusterSim {
            engine: Engine::with_workspace(cfg, seed, ws),
        }
    }

    /// Replaces the simulator's observer (the default records nothing).
    pub fn set_observer(&mut self, observer: Box<dyn SimObserver>) {
        self.engine.core.observer = observer;
    }

    /// Attaches a fresh ring journal retaining `capacity` entries and
    /// returns a handle to it; use [`SharedJournal::dump`] after the
    /// run (or from a panic hook) to see what the simulator did last.
    pub fn attach_journal(&mut self, capacity: usize) -> SharedJournal {
        let journal = SharedJournal::new(capacity);
        self.engine.core.observer = Box::new(journal.clone());
        journal
    }

    /// Enables or disables the per-step invariant checks. They default
    /// to on in debug/test builds and off in release builds.
    pub fn set_invariant_checks(&mut self, enabled: bool) {
        self.engine.core.invariants_enabled = enabled;
    }

    /// Enables or disables the dense-kernel completion batching
    /// (default on). When enabled — and the run qualifies: no spare
    /// capacity, no background model, no topology (live machine
    /// placement must see slots free one completion at a time), no
    /// speculation (kill-on-first-finish is completion-order-sensitive),
    /// invariant checks off, a [`SchedulerPolicy`] that declares
    /// itself batchable, every running task Guaranteed-class — the run
    /// loop drains same-instant task completions as one batch and runs
    /// a single merged scheduling pass. Results are bit-identical to per-event
    /// stepping; only the interleaving of observer/journal lines
    /// differs. Equivalence tests disable it to pin the per-event
    /// reference semantics.
    pub fn set_batching(&mut self, enabled: bool) {
        self.engine.core.batching_enabled = enabled;
    }

    /// Enables or disables per-task profile recording (default on).
    /// Training loops that only consume progress samples turn this off
    /// to keep per-run allocations out of the hot path; the returned
    /// [`JobResult::profile`] is then structurally empty (zero stages —
    /// the per-run profile builder itself is the allocation-free empty
    /// one). Must be set *before* jobs are added to take effect for
    /// those jobs.
    pub fn set_record_profile(&mut self, enabled: bool) {
        self.engine.core.record_profile = enabled;
    }

    /// Enables or disables control-trace recording (default on). With
    /// recording off, [`JobResult::trace`] stays empty.
    pub fn set_record_trace(&mut self, enabled: bool) {
        self.engine.core.record_trace = enabled;
    }

    /// Replaces the scheduling policy (default:
    /// [`WeightedFair`](crate::scheduler::WeightedFair)).
    pub fn set_scheduler(&mut self, scheduler: Box<dyn SchedulerPolicy>) {
        self.engine.scheduler = scheduler;
    }

    /// Replaces the failure model (default:
    /// [`DefaultFailureModel`](crate::failure::DefaultFailureModel),
    /// seeded from the root seed's `"machine-failures"` stream).
    pub fn set_failure_model(&mut self, failure: Box<dyn FailureModel>) {
        self.engine.failure = failure;
    }

    /// Replaces the speculation policy (default:
    /// [`CloneOnSlow`](crate::speculation::CloneOnSlow), which is inert
    /// unless [`ClusterConfig::speculation`] is set).
    pub fn set_speculation_policy(
        &mut self,
        policy: Box<dyn crate::speculation::SpeculationPolicy>,
    ) {
        self.engine.speculation = policy;
    }

    /// Replaces the placement policy used when a
    /// [`TopologyConfig`](crate::topology::TopologyConfig) is
    /// configured (default:
    /// [`LocalityFirst`](crate::topology::LocalityFirst)). Ignored in
    /// the flat (non-topology) model.
    pub fn set_placement_policy(&mut self, policy: Box<dyn crate::topology::PlacementPolicy>) {
        self.engine.core.placement_policy = policy;
    }

    /// Adds a job starting at time zero. Returns its index.
    pub fn add_job(&mut self, spec: JobSpec, controller: Box<dyn JobController>) -> usize {
        self.add_job_at(spec, controller, SimTime::ZERO)
    }

    /// Adds a job submitted at `start_at`. Returns its index.
    pub fn add_job_at(
        &mut self,
        spec: JobSpec,
        controller: Box<dyn JobController>,
        start_at: SimTime,
    ) -> usize {
        self.engine
            .core
            .add_job_at(Arc::new(spec), controller, start_at)
    }

    /// Adds a job from a shared spec, avoiding the per-run deep clone
    /// of graphs and distributions in repeated-simulation loops.
    /// Returns the job's index.
    pub fn add_job_shared(
        &mut self,
        spec: Arc<JobSpec>,
        controller: Box<dyn JobController>,
    ) -> usize {
        self.engine.core.add_job_at(spec, controller, SimTime::ZERO)
    }

    /// Schedules a deadline change for `job` at time `at` (§5.2's
    /// deadline-change experiments). The job's controller is notified
    /// via [`JobController::deadline_changed`].
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn schedule_deadline_change(&mut self, job: usize, at: SimTime, new_deadline: SimDuration) {
        assert!(job < self.engine.core.jobs.len());
        self.engine
            .core
            .queue
            .schedule(at, Event::DeadlineChange { job, new_deadline });
    }

    /// Runs the simulation to completion (all jobs done, queue drained,
    /// or the configured horizon reached) and returns per-job results.
    pub fn run(self) -> Vec<JobResult> {
        self.run_hooked(RunHooks::default())
    }

    /// Runs a single-job simulation and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the simulation holds more or fewer than one job.
    pub fn run_single(self) -> JobResult {
        self.run_single_hooked(RunHooks::default())
    }

    /// [`ClusterSim::run_single`] with borrowed run hooks.
    ///
    /// # Panics
    ///
    /// Panics if the simulation holds more or fewer than one job.
    pub fn run_single_hooked(self, hooks: RunHooks<'_>) -> JobResult {
        let mut results = self.run_hooked(hooks);
        assert_eq!(
            results.len(),
            1,
            "run_single on a simulation with {} jobs",
            results.len()
        );
        results.swap_remove(0)
    }

    /// Runs the simulation with borrowed hooks: a [`ProgressSink`]
    /// sampling every controller consult, and/or a [`SimWorkspace`]
    /// reclaiming the run's buffers.
    pub fn run_hooked(mut self, hooks: RunHooks<'_>) -> Vec<JobResult> {
        let RunHooks { sink, mut reclaim } = hooks;
        self.engine.run_loop(sink);

        let horizon = self.engine.core.queue.now();
        let core = self.engine.core;
        let mut results = Vec::with_capacity(core.jobs.len());
        for (job, floor) in core.jobs.into_iter().zip(core.completed_floor) {
            let JobRun {
                spec,
                start_at,
                started,
                finished_at,
                tasks,
                completed,
                ready,
                running,
                work_done,
                wasted,
                guaranteed_task_count,
                spare_task_count,
                clone_task_count,
                clone_wins,
                profile,
                trace,
                status,
                ..
            } = job;
            let end = finished_at.unwrap_or(horizon.max_of(start_at));
            let duration = end.saturating_since(started.unwrap_or(start_at));
            let profile = profile.finish(duration.as_secs_f64().max(1e-3), spec.data_gb);
            results.push(JobResult {
                name: spec.graph.name().to_string(),
                started_at: start_at,
                completed_at: finished_at,
                work_done_secs: work_done,
                wasted_secs: wasted,
                guaranteed_task_count,
                spare_task_count,
                clone_task_count,
                clone_wins,
                trace,
                profile,
            });
            if let Some(ws) = reclaim.as_mut() {
                ws.give_back(JobBuffers {
                    tasks,
                    completed,
                    floor,
                    ready,
                    running,
                    stage_fraction: status.stage_fraction,
                    stage_completed: status.stage_completed,
                });
            }
        }
        if let Some(ws) = reclaim {
            ws.reclaim_spares(core.spare_buffers, core.cand_scratch);
            ws.event_queue = Some(core.queue);
        }
        results
    }
}
