//! Property-based tests of the simulation runtime's invariants.

use jockey_simrt::dist::{Clamped, Exponential, LogNormal, Pareto, Sample, Uniform};
use jockey_simrt::event::EventQueue;
use jockey_simrt::rng::SeedDeriver;
use jockey_simrt::series::TimeSeries;
use jockey_simrt::stats::{percentile_sorted, Ecdf, OnlineStats};
use jockey_simrt::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Percentiles of a sorted sample stay within its range and are
    /// monotone in the requested quantile.
    #[test]
    fn percentile_bounds_and_monotonicity(
        mut xs in proptest::collection::vec(-1e6_f64..1e6, 1..200),
        q1 in 0.0_f64..100.0,
        q2 in 0.0_f64..100.0,
    ) {
        xs.sort_by(f64::total_cmp);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let plo = percentile_sorted(&xs, lo);
        let phi = percentile_sorted(&xs, hi);
        prop_assert!(plo <= phi + 1e-9);
        prop_assert!(plo >= xs[0] - 1e-9);
        prop_assert!(phi <= xs[xs.len() - 1] + 1e-9);
    }

    /// An ECDF is a valid distribution function: monotone, 0 below the
    /// minimum, 1 at and above the maximum, and quantile is a
    /// right-inverse up to sample resolution.
    #[test]
    fn ecdf_is_a_distribution_function(
        xs in proptest::collection::vec(-1e3_f64..1e3, 1..100),
        probe in -2e3_f64..2e3,
    ) {
        let e = Ecdf::new(xs.clone());
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.eval(min - 1.0), 0.0);
        prop_assert_eq!(e.eval(max), 1.0);
        let f = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(e.eval(probe + 1.0) >= f);
    }

    /// Welford merging is equivalent to batch accumulation, regardless
    /// of the split point.
    #[test]
    fn online_stats_merge_associative(
        xs in proptest::collection::vec(-1e4_f64..1e4, 2..120),
        split_frac in 0.0_f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
    }

    /// The event queue releases events in nondecreasing time order,
    /// FIFO within a timestamp.
    #[test]
    fn event_queue_is_stable_priority_queue(
        times in proptest::collection::vec(0_u64..1000, 1..100),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_millis(), t);
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
    }

    /// Distributions only emit non-negative, finite samples.
    #[test]
    fn distributions_emit_valid_samples(seed in any::<u64>()) {
        let mut rng = SeedDeriver::new(seed).rng("props");
        let dists: Vec<Box<dyn Sample>> = vec![
            Box::new(Uniform::new(0.0, 10.0)),
            Box::new(Exponential::with_mean(3.0)),
            Box::new(LogNormal::from_median_p90(2.0, 9.0)),
            Box::new(Pareto::new(1.0, 1.5)),
            Box::new(Clamped::new(Pareto::new(1.0, 0.5), 0.0, 100.0)),
        ];
        for d in &dists {
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "bad sample {}", x);
            }
        }
    }

    /// The log-normal (median, p90) fit reproduces its own parameters.
    #[test]
    fn lognormal_fit_roundtrip(median in 0.01_f64..1e4, ratio in 1.0_f64..50.0) {
        let d = LogNormal::from_median_p90(median, median * ratio);
        prop_assert!((d.median() / median - 1.0).abs() < 1e-9);
        prop_assert!((d.p90() / (median * ratio) - 1.0).abs() < 1e-9);
    }

    /// Time-series integral is additive across any split point.
    #[test]
    fn series_integral_additive(
        steps in proptest::collection::vec((1_u64..120, 0.0_f64..100.0), 1..30),
        split_min in 0_u64..300,
    ) {
        let mut s = TimeSeries::new();
        let mut t = SimTime::ZERO;
        for &(dt, v) in &steps {
            s.push(t, v);
            t += SimDuration::from_mins(dt);
        }
        let end = t;
        let mid = SimTime::from_mins(split_min).min(end);
        // integral(0..mid as end) + remaining piece == integral(0..end)
        let total = s.integral_until(end);
        let first = s.integral_until(mid);
        prop_assert!(first <= total + 1e-6);
    }

    /// Derived seed streams never collide across indices (sampled).
    #[test]
    fn seed_streams_distinct(root in any::<u64>(), a in 0_u64..1000, b in 0_u64..1000) {
        prop_assume!(a != b);
        let d = SeedDeriver::new(root);
        prop_assert_ne!(d.seed_indexed("s", a), d.seed_indexed("s", b));
    }
}
