//! Property proof that the bucketed and adaptive event-queue backends
//! are observationally identical to the `BinaryHeap` reference.
//!
//! Every simulator in this workspace depends on the queue's exact
//! `(time, payload)` stream — same-instant events must pop in schedule
//! order — so the bucketed and adaptive backends are exercised here
//! against the heap on randomized interleavings of schedules and pops,
//! including heavy ties, far-future overflow events, scheduling-at-now
//! edge cases, and (for adaptive) occupancy ramps crossing the
//! promotion threshold mid-program.

use jockey_simrt::event::{EventQueue, QueueBackend};
use jockey_simrt::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// One step of an interleaved workload. Schedule offsets are relative
/// to the queue's current "now" so generated programs never violate the
/// no-scheduling-into-the-past contract.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule an event `offset_ms` after the last popped time.
    Schedule { offset_ms: u64 },
    /// Pop the next event (a no-op on an empty queue).
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted mix decoded from a selector: mostly short offsets
    // (bucket window), some zero (same-instant ties), a few far-future
    // ones (overflow path, > 262 s window), and pops.
    (0_u8..9, 0_u64..5_000, 300_000_u64..3_000_000).prop_map(|(sel, short, far)| match sel {
        0..=3 => Op::Schedule { offset_ms: short },
        4 => Op::Schedule { offset_ms: 0 },
        5 => Op::Schedule { offset_ms: far },
        _ => Op::Pop,
    })
}

proptest! {
    /// Interleaved schedule/pop programs produce identical
    /// `(time, payload)` streams on both backends, and draining the
    /// remainder at the end agrees too.
    #[test]
    fn bucketed_matches_heap_on_interleaved_programs(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let mut bucketed = EventQueue::with_backend(QueueBackend::Bucketed);
        let mut adaptive = EventQueue::with_backend(QueueBackend::Adaptive);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut next_id: u32 = 0;
        for op in &ops {
            match *op {
                Op::Schedule { offset_ms } => {
                    let at = bucketed.now() + SimDuration::from_millis(offset_ms);
                    bucketed.schedule(at, next_id);
                    adaptive.schedule(at, next_id);
                    heap.schedule(at, next_id);
                    next_id += 1;
                }
                Op::Pop => {
                    let a = bucketed.pop();
                    let b = heap.pop();
                    let c = adaptive.pop();
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(c, b);
                }
            }
            prop_assert_eq!(bucketed.len(), heap.len());
            prop_assert_eq!(adaptive.len(), heap.len());
            prop_assert_eq!(bucketed.peek_time(), heap.peek_time());
            prop_assert_eq!(adaptive.peek_time(), heap.peek_time());
            prop_assert_eq!(bucketed.now(), heap.now());
            prop_assert_eq!(adaptive.now(), heap.now());
        }
        // Drain whatever is left: the tails must agree element-for-element.
        loop {
            let a = bucketed.pop();
            let b = heap.pop();
            let c = adaptive.pop();
            prop_assert_eq!(a, b);
            prop_assert_eq!(c, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Programs deep enough to force adaptive promotion mid-stream stay
    /// identical to the heap reference through the representation
    /// switch, and the switch itself is observed.
    #[test]
    fn adaptive_promotion_preserves_the_stream(
        depth in 150_usize..400,
        offsets in proptest::collection::vec(0_u64..30_000, 600..900),
    ) {
        let mut adaptive = EventQueue::with_backend(QueueBackend::Adaptive);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        for (i, &off) in offsets.iter().enumerate() {
            let at = adaptive.now() + SimDuration::from_millis(off);
            let id = i as u32;
            adaptive.schedule(at, id);
            heap.schedule(at, id);
            // Hold the queue near `depth` pending events.
            if i >= depth {
                prop_assert_eq!(adaptive.pop(), heap.pop());
            }
        }
        prop_assert!(adaptive.is_promoted());
        loop {
            let a = adaptive.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Bursts of same-instant events pop FIFO on the bucketed backend,
    /// even when interleaved with pops and re-schedules at the popped
    /// time.
    #[test]
    fn same_instant_bursts_pop_fifo(
        burst_sizes in proptest::collection::vec(1_usize..20, 1..20),
        gap_ms in 0_u64..2_000,
    ) {
        let mut q = EventQueue::with_backend(QueueBackend::Bucketed);
        let mut reference = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut id: u32 = 0;
        let mut t = SimTime::ZERO;
        for &n in &burst_sizes {
            for _ in 0..n {
                q.schedule(t, id);
                reference.schedule(t, id);
                id += 1;
            }
            t += SimDuration::from_millis(gap_ms);
        }
        let mut popped = 0_usize;
        while let Some((at, e)) = q.pop() {
            prop_assert_eq!(Some((at, e)), reference.pop());
            // FIFO across the whole program: ids were assigned in
            // nondecreasing time order, so the stream is exactly 0..id.
            prop_assert_eq!(e, popped as u32);
            popped += 1;
        }
        prop_assert_eq!(popped, id as usize);
    }

    /// Both backends reject scheduling before the last popped time, and
    /// accept scheduling exactly at it.
    #[test]
    fn past_rejection_matches_on_both_backends(
        first_ms in 1_u64..1_000_000,
        behind_ms in 1_u64..1_000,
    ) {
        for backend in [
            QueueBackend::Bucketed,
            QueueBackend::BinaryHeap,
            QueueBackend::Adaptive,
        ] {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime::from_millis(first_ms), 0_u8);
            q.pop();
            // Exactly at now: allowed.
            q.schedule(q.now(), 1);
            prop_assert_eq!(q.pop(), Some((SimTime::from_millis(first_ms), 1)));
            // Strictly before now: rejected by panic.
            let at = SimTime::from_millis(first_ms.saturating_sub(behind_ms));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                q.schedule(at, 2);
            }));
            prop_assert!(result.is_err(), "backend {backend:?} accepted a past event");
        }
    }
}
