//! Descriptive statistics used throughout the evaluation.
//!
//! The paper's measurement study is phrased in terms of percentiles,
//! coefficients of variation (CoV, Table 1) and CDFs (Figs. 1 and 5);
//! this module implements those estimators plus streaming moments
//! ([`OnlineStats`]) for use inside simulators.

use std::fmt;

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n − 1 denominator). Returns 0 for fewer
/// than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Coefficient of variation: `stddev / mean` (Table 1's statistic).
///
/// Returns 0 when the mean is zero.
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        stddev(xs) / m
    }
}

/// Percentile `q` (0–100) of an **ascending-sorted** slice with linear
/// interpolation between order statistics.
///
/// # Panics
///
/// Panics if the slice is empty or `q` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "slice must be sorted"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile of an unsorted slice (copies and sorts internally).
///
/// # Panics
///
/// Panics if the slice is empty or `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    percentile_sorted(&v, q)
}

/// An empirical cumulative distribution function.
///
/// # Examples
///
/// ```
/// use jockey_simrt::stats::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.eval(2.0), 0.5);
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(10.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF needs at least one sample");
        assert!(samples.iter().all(|x| !x.is_nan()), "ECDF sample is NaN");
        samples.sort_by(f64::total_cmp);
        Ecdf { sorted: samples }
    }

    /// Fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x on the sorted vec.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction requires at least one sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted samples (ascending).
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `(x, F(x))` pairs suitable for plotting the CDF as a step series.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }
}

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations (0 if none).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if none).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if none).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A five-number-plus summary of a sample, used in result tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarizes a sample.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn summarize(xs: &[f64]) -> Summary {
    assert!(!xs.is_empty(), "summarize of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    Summary {
        n: v.len(),
        mean: mean(&v),
        std: stddev(&v),
        min: v[0],
        p10: percentile_sorted(&v, 10.0),
        p50: percentile_sorted(&v, 50.0),
        p90: percentile_sorted(&v, 90.0),
        p99: percentile_sorted(&v, 99.0),
        max: v[v.len() - 1],
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} p10={:.3} p50={:.3} p90={:.3} p99={:.3}",
            self.n, self.mean, self.std, self.p10, self.p50, self.p90, self.p99
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn cov_matches_definition() {
        let xs = [10.0, 20.0, 30.0];
        assert!((cov(&xs) - stddev(&xs) / 20.0).abs() < 1e-12);
        assert_eq!(cov(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[42.0], 73.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn ecdf_eval_quantile() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.len(), 4);
        let pts = e.points();
        assert_eq!(pts[0], (1.0, 0.25));
        assert_eq!(pts[3], (4.0, 1.0));
    }

    #[test]
    fn online_matches_batch() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert_eq!(o.count(), 5);
        assert!((o.mean() - mean(&xs)).abs() < 1e-12);
        assert!((o.stddev() - stddev(&xs)).abs() < 1e-12);
        assert_eq!(o.min(), -4.0);
        assert_eq!(o.max(), 10.0);
    }

    #[test]
    fn online_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn summary_fields() {
        let s = summarize(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.5);
    }
}
