//! Run diagnostics: simulation observers and a ring-buffer journal.
//!
//! Simulators built on this crate emit a stream of diagnostic records —
//! event dispatches, clock advances, RNG stream forks, scheduling
//! decisions — through a [`SimObserver`]. The default observer,
//! [`NoopObserver`], compiles to nothing; attaching a [`RingJournal`]
//! (usually via the shareable [`SharedJournal`]) retains the last `N`
//! records so that a failing run can be reconstructed event by event.
//!
//! Call sites should use the [`observe!`](crate::observe!) macro, which
//! skips message formatting entirely when the observer is disabled:
//!
//! ```
//! use jockey_simrt::observe::{EntryKind, SharedJournal, SimObserver};
//! use jockey_simrt::time::SimTime;
//!
//! let mut journal = SharedJournal::new(64);
//! let mut obs = journal.clone();
//! let at = SimTime::from_secs(5);
//! jockey_simrt::observe!(obs, at, EntryKind::Event, "task {} done", 3);
//! assert_eq!(journal.len(), 1);
//! assert!(journal.dump().contains("task 3 done"));
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::time::SimTime;

/// Category of a journal entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EntryKind {
    /// An event was popped off the queue and dispatched.
    Event,
    /// The simulation clock advanced.
    Clock,
    /// A named RNG stream was forked from the root seed.
    RngFork,
    /// A control or scheduling decision was applied.
    Decision,
    /// A task lifecycle transition (start, completion, kill, eviction,
    /// recomputation).
    Task,
    /// An invariant checker's observation.
    Invariant,
}

impl fmt::Display for EntryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntryKind::Event => "event",
            EntryKind::Clock => "clock",
            EntryKind::RngFork => "rng",
            EntryKind::Decision => "decision",
            EntryKind::Task => "task",
            EntryKind::Invariant => "invariant",
        };
        f.write_str(s)
    }
}

/// One recorded diagnostic entry.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// Monotone sequence number (survives ring-buffer eviction, so gaps
    /// reveal how much history was dropped).
    pub seq: u64,
    /// Simulation time the entry was recorded at.
    pub at: SimTime,
    /// Entry category.
    pub kind: EntryKind,
    /// Rendered message.
    pub message: String,
}

impl fmt::Display for JournalEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<6} {:>10.3}s {:<9} {}",
            self.seq,
            self.at.as_secs_f64(),
            self.kind,
            self.message
        )
    }
}

/// Observer of simulation internals.
///
/// Implementations must be cheap to call: `record` runs on the
/// simulator's hot path. The [`observe!`](crate::observe!) macro
/// consults [`SimObserver::enabled`] first so disabled observers never
/// even format their message.
pub trait SimObserver {
    /// Whether this observer wants records at all. Call sites use this
    /// to skip message formatting; the default is `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one diagnostic entry.
    fn record(&mut self, at: SimTime, kind: EntryKind, message: fmt::Arguments<'_>);

    /// Renders the most recent `n` entries (oldest first), or `None` if
    /// this observer keeps no history.
    fn tail(&self, n: usize) -> Option<String> {
        let _ = n;
        None
    }
}

impl<O: SimObserver + ?Sized> SimObserver for Box<O> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn record(&mut self, at: SimTime, kind: EntryKind, message: fmt::Arguments<'_>) {
        (**self).record(at, kind, message);
    }
    fn tail(&self, n: usize) -> Option<String> {
        (**self).tail(n)
    }
}

/// Receives in-flight progress samples from a simulation run.
///
/// This is the borrowed, allocation-free seam for harvesting per-tick
/// job progress: the simulator calls [`ProgressSink::sample`] each time
/// it consults a job's controller, lending the per-stage completion
/// fractions instead of requiring callers to smuggle an
/// `Arc<Mutex<Vec<_>>>` into a recording controller. Implementations
/// own whatever accumulation they need; the borrow ends per call.
pub trait ProgressSink {
    /// One sample: the job's index within the run, seconds since the
    /// job started, and the completed fraction of each stage.
    fn sample(&mut self, job: usize, elapsed_secs: f64, stage_fraction: &[f64]);
}

impl<S: ProgressSink + ?Sized> ProgressSink for &mut S {
    fn sample(&mut self, job: usize, elapsed_secs: f64, stage_fraction: &[f64]) {
        (**self).sample(job, elapsed_secs, stage_fraction);
    }
}

/// The zero-cost default observer: records nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _at: SimTime, _kind: EntryKind, _message: fmt::Arguments<'_>) {}
}

/// A fixed-capacity ring buffer of [`JournalEntry`] records: the most
/// recent `capacity` entries are retained, older ones are dropped.
#[derive(Clone, Debug)]
pub struct RingJournal {
    capacity: usize,
    next_seq: u64,
    entries: VecDeque<JournalEntry>,
}

impl RingJournal {
    /// Creates a journal retaining at most `capacity` entries
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        RingJournal {
            capacity: capacity.max(1),
            next_seq: 0,
            entries: VecDeque::new(),
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of entries ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter()
    }

    /// Renders the last `n` retained entries, oldest first.
    pub fn tail_string(&self, n: usize) -> String {
        let skip = self.entries.len().saturating_sub(n);
        let mut out = String::new();
        for e in self.entries.iter().skip(skip) {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

impl SimObserver for RingJournal {
    fn record(&mut self, at: SimTime, kind: EntryKind, message: fmt::Arguments<'_>) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(JournalEntry {
            seq: self.next_seq,
            at,
            kind,
            message: message.to_string(),
        });
        self.next_seq += 1;
    }

    fn tail(&self, n: usize) -> Option<String> {
        Some(self.tail_string(n))
    }
}

/// A [`RingJournal`] behind `Arc<Mutex>`: clone one handle into the
/// simulator as its observer and keep another to inspect the journal
/// after (or during) the run.
#[derive(Clone, Debug)]
pub struct SharedJournal(Arc<Mutex<RingJournal>>);

impl SharedJournal {
    /// Creates a shared journal retaining `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        SharedJournal(Arc::new(Mutex::new(RingJournal::new(capacity))))
    }

    /// Runs `f` with the locked journal.
    pub fn with<R>(&self, f: impl FnOnce(&RingJournal) -> R) -> R {
        f(&self.0.lock().expect("journal lock poisoned"))
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.with(RingJournal::len)
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.with(RingJournal::is_empty)
    }

    /// Renders every retained entry, oldest first — the thing to
    /// `eprintln!` from a failing test.
    pub fn dump(&self) -> String {
        self.with(|j| j.tail_string(usize::MAX))
    }
}

impl SimObserver for SharedJournal {
    fn record(&mut self, at: SimTime, kind: EntryKind, message: fmt::Arguments<'_>) {
        self.0
            .lock()
            .expect("journal lock poisoned")
            .record(at, kind, message);
    }

    fn tail(&self, n: usize) -> Option<String> {
        Some(self.with(|j| j.tail_string(n)))
    }
}

/// Records a diagnostic entry through a [`SimObserver`], skipping
/// message formatting entirely when the observer is disabled.
///
/// `observe!(obs, at, kind, "fmt", args...)` — `obs` must implement
/// [`SimObserver`]; `at` is a [`SimTime`]; `kind` an [`EntryKind`].
#[macro_export]
macro_rules! observe {
    ($obs:expr, $at:expr, $kind:expr, $($fmt:tt)+) => {
        if $crate::observe::SimObserver::enabled(&$obs) {
            $crate::observe::SimObserver::record(
                &mut $obs,
                $at,
                $kind,
                ::core::format_args!($($fmt)+),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(j: &mut impl SimObserver, secs: u64, msg: &str) {
        j.record(
            SimTime::from_secs(secs),
            EntryKind::Event,
            format_args!("{msg}"),
        );
    }

    #[test]
    fn noop_observer_is_disabled_and_keeps_nothing() {
        let mut o = NoopObserver;
        assert!(!o.enabled());
        entry(&mut o, 1, "dropped");
        assert_eq!(o.tail(10), None);
    }

    #[test]
    fn ring_journal_retains_only_capacity() {
        let mut j = RingJournal::new(3);
        for i in 0..5 {
            entry(&mut j, i, &format!("e{i}"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.recorded(), 5);
        let seqs: Vec<u64> = j.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        let tail = j.tail_string(2);
        assert!(tail.contains("e3") && tail.contains("e4") && !tail.contains("e2"));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut j = RingJournal::new(0);
        entry(&mut j, 1, "kept");
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn shared_journal_sees_observer_records() {
        let journal = SharedJournal::new(16);
        let mut obs: Box<dyn SimObserver> = Box::new(journal.clone());
        entry(&mut obs, 2, "through the box");
        assert_eq!(journal.len(), 1);
        assert!(journal.dump().contains("through the box"));
        assert!(obs.tail(5).unwrap().contains("through the box"));
    }

    #[test]
    fn observe_macro_skips_formatting_when_disabled() {
        struct Panicky;
        impl fmt::Display for Panicky {
            fn fmt(&self, _: &mut fmt::Formatter<'_>) -> fmt::Result {
                panic!("message was formatted for a disabled observer");
            }
        }
        let mut obs = NoopObserver;
        crate::observe!(obs, SimTime::ZERO, EntryKind::Clock, "{}", Panicky);
        let mut journal = SharedJournal::new(4);
        crate::observe!(journal, SimTime::ZERO, EntryKind::Clock, "tick {}", 1);
        assert!(journal.dump().contains("tick 1"));
    }

    #[test]
    fn entries_render_with_time_and_kind() {
        let mut j = RingJournal::new(4);
        j.record(
            SimTime::from_millis(1_500),
            EntryKind::Decision,
            format_args!("guarantee=4"),
        );
        let line = j.tail_string(1);
        assert!(line.contains("1.500s"), "{line}");
        assert!(line.contains("decision"), "{line}");
        assert!(line.contains("guarantee=4"), "{line}");
    }
}
